"""The serving mesh: sharded relay hubs behind one publisher.

PR 5's :class:`~repro.serve.hub.FrameHub` fans every publish out to
every session inline on the publisher thread — fine for a workstation
viewer, hopeless at internet scale.  The mesh splits serving into two
tiers:

- the **publisher tier**: :meth:`ServeMesh.publish` stores the frame
  once (origin :class:`~repro.serve.framestore.FrameStore`, same
  interning/dedup as the flat hub) and pushes it to each of K
  :class:`RelayHub`\\ s — an O(K) loop of O(1) inbox appends,
  independent of client count, so 100k clients cost the simulation
  exactly what 10 did;
- the **relay tier**: each relay runs one
  :class:`~repro.serve.pump.SessionPump` thread that fans its shard of
  sessions out, plus a content-addressed
  :class:`~repro.serve.framestore.EdgeCache` that serves replays and
  late joiners without touching the publisher.

Clients are placed on relays with the consistent-hash
:class:`~repro.fleet.ring.HashRing` (stable placement keys → sticky
relays, bounded movement on join/leave).  Relay liveness rides the
:class:`~repro.fleet.membership.FleetMembership` heartbeat leases: a
relay whose pump thread dies simply stops heartbeating, the next
:meth:`ServeMesh.check` declares it dead, removes its arc from the
ring, and reattaches its sessions — with their queues, deferred slots
and delivery cursors intact — to the surviving relays, which backfill
missed frames from their edge caches.  No committed (delivered) step
is ever lost or repeated across a handoff.

``repro.perf`` naive mode (snapshotted at construction) routes
everything through an internal flat ``FrameHub`` so the equivalence
tests can prove the mesh delivers byte-identical frames.
"""

from __future__ import annotations

import threading
import time as _time

from repro.fleet.membership import FleetMembership
from repro.fleet.ring import HashRing
from repro.observe.session import active, get_telemetry
from repro.perf import config as perf_config
from repro.serve.framestore import EdgeCache, Frame, FrameStore
from repro.serve.hub import FrameHub, HubFull
from repro.serve.pump import MeshSession, SessionPump

__all__ = ["RelayHub", "ServeMesh"]


class RelayHub:
    """One relay: a pump thread, an edge cache, a heartbeat lease."""

    def __init__(
        self,
        rid: int,
        membership: FleetMembership,
        clock=_time.perf_counter,
        cache_capacity: int = 128,
        history: int = 32,
        poll_interval_s: float = 0.002,
        telemetry=None,
    ):
        self.rid = rid
        self.membership = membership
        self.pump = SessionPump(
            rid, clock=clock, cache=EdgeCache(cache_capacity), history=history
        )
        self.poll_interval_s = poll_interval_s
        self._tel = telemetry
        self._stop = False
        self._thread: threading.Thread | None = None
        self.steer_forwarded = 0
        self.origin_fetches = 0
        # last values mirrored into telemetry counters (deltas only)
        self._mirrored_hits = 0
        self._mirrored_misses = 0

    def start(self) -> None:
        self.membership.register(self.rid)
        self._thread = threading.Thread(
            target=self._run, name=f"relay-{self.rid}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        tel = self._tel if self._tel is not None else get_telemetry()
        # telemetry is thread-local; adopt the mesh's session so cache
        # counters and relay gauges land in the publisher's registry
        with active(tel):
            while not self._stop:
                self._heartbeat()
                # heartbeat rides the fan-out too: a pass over a big
                # shard must not outlive the relay's own lease
                serviced = self.pump.pump_once(on_frame=self._heartbeat)
                self._mirror_metrics(tel)
                if not serviced and not self._stop:
                    self.pump.wait_for_work(self.poll_interval_s)

    def _heartbeat(self) -> None:
        try:
            self.membership.heartbeat(self.rid)
        except KeyError:
            pass

    def _mirror_metrics(self, tel) -> None:
        if not tel.enabled:
            return
        cache = self.pump.cache
        dh = cache.hits - self._mirrored_hits
        dm = cache.misses - self._mirrored_misses
        if dh:
            tel.metrics.counter(
                "repro_serve_cache_hits_total",
                "Edge-cache hits across relay hubs",
            ).inc(dh)
            self._mirrored_hits = cache.hits
        if dm:
            tel.metrics.counter(
                "repro_serve_cache_misses_total",
                "Edge-cache misses across relay hubs",
            ).inc(dm)
            self._mirrored_misses = cache.misses
        tel.metrics.gauge(
            "repro_serve_relay_clients",
            "Clients attached to a relay hub",
            agg="max",
            const_labels={"relay": str(self.rid)},
        ).set(len(self.pump.sessions))
        tel.memory.observe(
            f"serve.edgecache.{self.rid}", cache.payload_bytes
        )

    def stop(self) -> None:
        """Stop the pump thread (planned departure or teardown)."""
        self._stop = True
        with self.pump.cond:
            self.pump.cond.notify_all()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=2.0)

    def kill(self) -> None:
        """Simulate an unplanned crash: the thread dies, the lease does
        not get renewed, and nobody tells the mesh — detection must come
        from lease expiry in :meth:`ServeMesh.check`."""
        self.stop()

    @property
    def alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def stats(self) -> dict:
        out = self.pump.stats()
        out["steer_forwarded"] = self.steer_forwarded
        out["origin_fetches"] = self.origin_fetches
        out["alive"] = self.alive
        return out


class ServeMesh:
    """Two-tier fan-out: publisher -> K relays -> sharded sessions.

    Duck-type compatible with :class:`~repro.serve.hub.FrameHub`
    (``store``, ``publish``, ``connect``, ``disconnect``, ``stats``,
    ``close``, ``clients``, ``closed``) so the Catalyst service layer
    and the HTTP transport work against either unchanged.
    """

    def __init__(
        self,
        relays: int = 4,
        history: int = 32,
        default_depth: int = 2,
        max_clients: int | None = None,
        clock=_time.perf_counter,
        stall_threshold_s: float = 0.25,
        lease_timeout_s: float = 0.25,
        cache_capacity: int = 128,
        vnodes: int = 64,
        seed: int = 0,
        poll_interval_s: float = 0.002,
        telemetry=None,
        start: bool = True,
    ):
        if relays < 1:
            raise ValueError("relays must be >= 1")
        # snapshot once: a mesh constructed under naive_mode() stays the
        # flat reference hub for its whole life (equivalence tests)
        self.naive = not perf_config.enabled()
        self.default_depth = default_depth
        self.max_clients = max_clients
        self._clock = clock
        self.stall_threshold_s = stall_threshold_s
        self.bus = None
        if self.naive:
            self._flat = FrameHub(
                history=history,
                default_depth=default_depth,
                max_clients=max_clients,
                clock=clock,
                stall_threshold_s=stall_threshold_s,
            )
            return
        self._flat = None
        self.store = FrameStore(history)
        self._tel = telemetry if telemetry is not None else get_telemetry()
        self.membership = FleetMembership(
            lease_timeout=lease_timeout_s, clock=_time.monotonic
        )
        self.ring = HashRing(vnodes=vnodes, seed=seed)
        self._relays: dict[int, RelayHub] = {}
        self._lost: list[int] = []
        self._history = history
        self._cache_capacity = cache_capacity
        self._poll_interval_s = poll_interval_s
        self._lock = threading.Lock()
        self._sessions: dict[int, MeshSession] = {}
        self._by_label: dict[str, MeshSession] = {}
        self._seq = 0
        self._next_sid = 0
        self._next_rid = 0
        self.closed = False
        self.stalls = 0
        self.max_publish_s = 0.0
        self.frames_published = 0
        self.peak_clients = 0
        self.migrations: list[dict] = []
        for _ in range(relays):
            self.add_relay(start=start)

    # -- relay lifecycle ---------------------------------------------------
    def add_relay(self, start: bool = True) -> int:
        """Bring one relay online; rebalances only the moved arc.

        Sessions whose placement key now hashes onto the new relay are
        detached from their old relay and reattached with backfill —
        the consistent-hash ring guarantees nothing else moves.
        """
        with self._lock:
            rid = self._next_rid
            self._next_rid += 1
        relay = RelayHub(
            rid,
            self.membership,
            clock=self._clock,
            cache_capacity=self._cache_capacity,
            history=self._history,
            poll_interval_s=self._poll_interval_s,
            telemetry=self._tel,
        )
        with self._lock:
            sessions = list(self._sessions.values())
            before = self.ring.assignment(s.key for s in sessions)
        self.ring.add(rid)
        self._relays[rid] = relay
        if start:
            relay.start()
        else:
            self.membership.register(rid)
        moved = 0
        for session in sessions:
            if self.ring.assign(session.key) == before[session.key]:
                continue
            old = self._relays.get(before[session.key])
            if old is not None:
                old.pump.detach(session)
            relay.pump.attach(session, backfill=True)
            moved += 1
        if moved:
            self.migrations.append(
                {"relay": rid, "kind": "join", "sessions_moved": moved}
            )
        return rid

    def remove_relay(self, rid: int) -> dict:
        """Planned departure: stop heartbeating, hand sessions off."""
        self.membership.leave(rid)
        return self._migrate_relay(rid, planned=True)

    def kill_relay(self, rid: int) -> None:
        """Crash a relay without telling the mesh (fault injection)."""
        self._relays[rid].kill()

    def _migrate_relay(self, rid: int, planned: bool) -> dict:
        t0 = self._clock()
        relay = self._relays.pop(rid, None)
        self.ring.remove(rid)
        if relay is None:
            return {"relay": rid, "kind": "noop", "sessions_moved": 0}
        relay.stop()
        sessions = relay.pump.drain_sessions()
        moved = 0
        for session in sessions:
            if session.closed:
                continue
            if not self.ring.members:
                session.close()     # no live relay left to carry it
                continue
            target = self._relays[self.ring.assign(session.key)]
            # state (queue, deferred slot, seq cursor) travels with the
            # object; backfill replays only what the cursor hasn't seen
            target.pump.attach(session, backfill=True)
            moved += 1
        record = {
            "relay": rid,
            "kind": "leave" if planned else "crash",
            "sessions_moved": moved,
            "seconds": self._clock() - t0,
        }
        self._lost.append(rid)
        self.migrations.append(record)
        tel = self._tel
        if tel.enabled:
            tel.metrics.counter(
                "repro_serve_relay_migrations_total",
                "Relay departures that moved sessions",
            ).inc()
            tel.tracer.instant(
                "serve.migrate", relay=rid, moved=moved, planned=planned
            )
        return record

    def check(self, now: float | None = None) -> list[dict]:
        """Lease sweep: expire dead relays and migrate their sessions."""
        if self.naive:
            return []
        records = []
        for rid in self.membership.expire(now):
            if rid in self._relays:
                records.append(self._migrate_relay(rid, planned=False))
        return records

    # -- client lifecycle --------------------------------------------------
    def connect(
        self,
        streams: tuple[str, ...] | None = None,
        depth: int | None = None,
        max_fps: float | None = None,
        label: str = "",
        key: str | None = None,
        backfill: bool = False,
    ):
        """Place a new session on its ring-assigned relay."""
        if self.naive:
            return self._flat.connect(
                streams=streams, depth=depth, max_fps=max_fps, label=label
            )
        with self._lock:
            if self.closed:
                raise HubFull("mesh is closed")
            if (
                self.max_clients is not None
                and len(self._sessions) >= self.max_clients
            ):
                raise HubFull(
                    f"mesh at max_clients={self.max_clients}; connection refused"
                )
            sid = self._next_sid
            self._next_sid += 1
            session = MeshSession(
                sid,
                key=key,
                streams=streams,
                depth=depth if depth is not None else self.default_depth,
                max_fps=max_fps,
                label=label,
                clock=self._clock,
                on_delivered=self._on_delivered,
                on_close=self._reap,
            )
            self._sessions[sid] = session
            self._by_label[session.label] = session
            count = len(self._sessions)
            self.peak_clients = max(self.peak_clients, count)
        if not self.ring.members:
            with self._lock:
                self._sessions.pop(sid, None)
                self._by_label.pop(session.label, None)
            raise HubFull("no live relays")
        self._relays[self.ring.assign(session.key)].pump.attach(
            session, backfill=backfill
        )
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge(
                "repro_serve_clients", "Connected serving clients", agg="max"
            ).set(count)
        return session

    def disconnect(self, session) -> None:
        if self.naive:
            self._flat.disconnect(session)
            return
        session.close()     # fires _reap, which releases the slot

    def _reap(self, session: MeshSession) -> None:
        """Immediate budget release on close, mirroring the flat hub."""
        pump = session._pump
        if pump is not None:
            pump.detach(session)
        with self._lock:
            self._sessions.pop(session.sid, None)
            if self._by_label.get(session.label) is session:
                del self._by_label[session.label]
            count = len(self._sessions)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.gauge(
                "repro_serve_clients", "Connected serving clients", agg="max"
            ).set(count)

    def _on_delivered(self, frame: Frame) -> None:
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "repro_serve_frames_sent_total", "Frames delivered to clients"
            ).inc()
            tel.metrics.counter(
                "repro_serve_bytes_out_total", "Frame payload bytes delivered"
            ).inc(frame.nbytes)

    # -- publishing --------------------------------------------------------
    def publish(self, stream: str, step: int, time: float, data: bytes,
                encoding: str = "png", raw_nbytes: int = 0) -> Frame:
        """Store once, push to K relays.  O(relays), never O(clients)."""
        if self.naive:
            return self._flat.publish(
                stream, step, time, data,
                encoding=encoding, raw_nbytes=raw_nbytes,
            )
        tel = get_telemetry()
        t0 = self._clock()
        with tel.tracer.span("serve.publish", stream=stream, step=step):
            with self._lock:
                seq = self._seq
                self._seq += 1
            frame = self.store.put(
                stream, step, time, data, seq, published_at=t0,
                encoding=encoding, raw_nbytes=raw_nbytes,
            )
            for relay in list(self._relays.values()):
                relay.pump.ingest(frame)
        elapsed = self._clock() - t0
        self.max_publish_s = max(self.max_publish_s, elapsed)
        if elapsed > self.stall_threshold_s:
            self.stalls += 1
            tel.live.event("publish_stall")
        self.frames_published += 1
        if tel.live.enabled:
            tel.live.note_frame(stream, step, t0)
        if tel.enabled:
            tel.metrics.counter(
                "repro_serve_frames_published_total",
                "Frames published to the hub",
            ).inc()
        # fold the lease sweep into the publish cadence: whoever
        # publishes next detects a dead relay (no monitor thread)
        self.check()
        return frame

    # -- edge reads (HTTP transport) ---------------------------------------
    def relay_for(self, key: str) -> RelayHub | None:
        if self.naive or not self.ring.members:
            return None
        return self._relays[self.ring.assign(key)]

    def relay_latest(self, stream: str, key: str = "edge") -> Frame | None:
        """Latest frame via the edge tier; origin only on a cold cache."""
        if self.naive:
            return self._flat.store.latest(stream)
        relay = self.relay_for(key)
        if relay is not None:
            frame = relay.pump.latest(stream)
            if frame is not None:
                return frame
            frame = self.store.latest(stream)
            if frame is not None:
                relay.origin_fetches += 1
            return frame
        return self.store.latest(stream)

    def relay_replay(self, stream: str, key: str = "edge") -> list[Frame]:
        """Replay window via the edge tier, falling back to origin."""
        if self.naive:
            return self._flat.store.frames(stream)
        relay = self.relay_for(key)
        if relay is not None:
            frames = relay.pump.replay(stream)
            if frames:
                return frames
            frames = self.store.frames(stream)
            if frames:
                relay.origin_fetches += 1
            return frames
        return self.store.frames(stream)

    # -- steering ----------------------------------------------------------
    def attach_bus(self, bus) -> None:
        self.bus = bus
        if self.naive:
            self._flat.bus = bus    # parity for introspection

    def route_steer(self, command):
        """Submit a steering command through the client's relay."""
        if self.bus is None:
            raise RuntimeError("no steering bus attached")
        if self.naive:
            self.bus.submit(command)
            return "hub"
        session = self._by_label.get(getattr(command, "client", ""))
        if session is not None and session._pump is not None:
            rid = session._pump.rid
        elif self.ring.members:
            rid = self.ring.assign(getattr(command, "client", "edge"))
        else:
            rid = None
        if rid is not None and rid in self._relays:
            self._relays[rid].steer_forwarded += 1
        self.bus.submit(command)
        return rid

    # -- queries -----------------------------------------------------------
    def __getattr__(self, name):
        # naive mode delegates the flat hub's surface (store, closed, ...)
        if name in ("_flat", "naive"):
            raise AttributeError(name)
        flat = self.__dict__.get("_flat")
        if self.__dict__.get("naive") and flat is not None:
            return getattr(flat, name)
        raise AttributeError(name)

    @property
    def clients(self) -> int:
        if self.naive:
            return self._flat.clients
        with self._lock:
            return len(self._sessions)

    def sessions(self) -> list:
        if self.naive:
            return self._flat.sessions()
        with self._lock:
            return list(self._sessions.values())

    def shard_map(self) -> dict:
        """relay id -> client count + lease state (the /status shard map)."""
        if self.naive:
            return {}
        out = {}
        for rid, relay in sorted(self._relays.items()):
            state = self.membership.state(rid)
            out[str(rid)] = {
                "clients": relay.pump.clients,
                "state": state.value if state is not None else "unknown",
                "alive": relay.alive,
            }
        return out

    def stats(self) -> dict:
        if self.naive:
            out = self._flat.stats()
            out["naive"] = True
            return out
        with self._lock:
            client_count = len(self._sessions)
        caches = [r.pump.cache for r in self._relays.values()]
        hits = sum(c.hits for c in caches)
        misses = sum(c.misses for c in caches)
        return {
            "clients": client_count,
            "peak_clients": self.peak_clients,
            "frames_published": self.frames_published,
            "stalls": self.stalls,
            "max_publish_ms": self.max_publish_s * 1e3,
            "store": self.store.stats(),
            "relays": {
                str(rid): relay.stats()
                for rid, relay in sorted(self._relays.items())
            },
            "shard_map": self.shard_map(),
            "ring": {
                "members": list(self.ring.members),
                "vnodes": self.ring.vnodes,
            },
            "membership": self.membership.snapshot(),
            "cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            },
            "migrations": list(self.migrations),
            "lost_relays": list(self._lost),
        }

    def close(self) -> None:
        if self.naive:
            self._flat.close()
            return
        with self._lock:
            self.closed = True
            sessions = list(self._sessions.values())
            self._sessions.clear()
            self._by_label.clear()
        for relay in self._relays.values():
            relay.stop()
        for session in sessions:
            session.close()
