"""The multiplexed session pump: one thread per relay, not per client.

PR 5's serving layer pairs every client with its own lock + condition
and every blocking consumer with a thread; publish walks every session
inline.  That shape tops out around 500 loopback clients.  The mesh
replaces it with an epoll-style multiplexer:

- :class:`MeshSession` — the same observable semantics as
  :class:`~repro.serve.session.Session` (drop-to-latest bounded queue,
  ``max_fps`` with a single newest-wins deferred slot, strictly
  increasing delivered steps) but *externally synchronized*: the
  session carries no lock of its own.  All publisher-side state is
  touched only under the owning pump's condition, which is what makes
  a session cheap enough to have 100k of and trivially migratable
  between relays (its queue, deferred slot and cursor are plain
  fields that move with the object).
- :class:`SessionPump` — one condition + one service loop per relay.
  ``ingest`` is the publisher-facing edge: an O(1) inbox append and a
  single ``notify_all``, independent of how many sessions the relay
  carries (the ``notifies`` counter is the "O(1) wakeups per publish"
  invariant the mesh tests pin).  The pump's service pass drains the
  inbox and fans each frame out to its sessions — on the *relay's*
  thread, never the publisher's.

A global publish sequence number (``Frame.seq``) doubles as the
cross-relay dedup cursor: every relay sees every frame, so after a
relay handoff the new relay may replay frames the session already
consumed — ``MeshSession`` skips anything at or below its cursor,
keeping delivered steps strictly increasing across migrations.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque

from repro.serve.framestore import EdgeCache, Frame
from repro.serve.session import SessionStats

__all__ = ["MeshSession", "SessionPump"]


class MeshSession:
    """One mesh client: session state synchronized by its relay's pump."""

    __slots__ = (
        "sid", "key", "streams", "depth", "label", "closed", "stats",
        "_min_interval", "_clock", "_pending", "_deferred",
        "_last_enqueue", "_last_seq", "_on_delivered", "_on_close",
        "_pump", "_plain",
    )

    def __init__(
        self,
        sid: int,
        key: str | None = None,
        streams: tuple[str, ...] | None = None,
        depth: int = 2,
        max_fps: float | None = None,
        label: str = "",
        clock=_time.perf_counter,
        on_delivered=None,
        on_close=None,
    ):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if max_fps is not None and max_fps <= 0:
            raise ValueError("max_fps must be positive")
        self.sid = sid
        self.label = label or f"client-{sid}"
        #: consistent-hash placement key (stable across reconnects of
        #: the same viewer, so a client lands on the same relay)
        self.key = key if key is not None else self.label
        self.streams = tuple(streams) if streams else None
        self.depth = depth
        self._min_interval = (1.0 / max_fps) if max_fps else 0.0
        self._clock = clock
        self._pending: deque[Frame] = deque()
        self._deferred: Frame | None = None
        self._last_enqueue = -float("inf")
        #: highest publish seq this session has observed — the dedup
        #: cursor that makes post-migration re-offers harmless
        self._last_seq = -1
        self._on_delivered = on_delivered
        self._on_close = on_close
        self._pump: "SessionPump | None" = None
        #: eligible for the pump's inlined fan-out path
        self._plain = self.streams is None and not self._min_interval
        self.closed = False
        self.stats = SessionStats()

    # -- publisher side (pump cond held) -----------------------------------
    def wants(self, stream: str) -> bool:
        return self.streams is None or stream in self.streams

    def _offer_locked(self, frame: Frame, now: float) -> bool:
        """Offer under the owning pump's condition; False once closed."""
        if self.closed:
            return False
        if not self.wants(frame.stream):
            return True
        if frame.seq <= self._last_seq:
            return True       # already seen (relay handoff replay)
        self._last_seq = frame.seq
        self.stats.offered += 1
        if self._min_interval and (
            now - self._last_enqueue < self._min_interval
        ):
            if self._deferred is not None:
                self.stats.rate_limited += 1
            self._deferred = frame          # newest wins
            return True
        self._enqueue_locked(frame, now)
        return True

    def _enqueue_locked(self, frame: Frame, now: float) -> None:
        if self._deferred is not None:
            self.stats.rate_limited += 1    # superseded by this enqueue
            self._deferred = None
        while len(self._pending) >= self.depth:
            self._pending.popleft()         # drop-to-latest: oldest goes
            self.stats.dropped += 1
        self._pending.append(frame)
        self._last_enqueue = now

    def _promote_deferred_locked(self) -> None:
        if self._deferred is None:
            return
        now = self._clock()
        if now - self._last_enqueue >= self._min_interval:
            frame, self._deferred = self._deferred, None
            self._enqueue_locked(frame, now)

    # -- client side --------------------------------------------------------
    def take(self, timeout: float | None = None, block: bool = True) -> Frame | None:
        """Next pending frame, oldest first; None on timeout/close.

        Re-reads the owning pump each wait slice, so a blocked take
        survives a mid-wait relay migration: it simply resumes waiting
        on the new relay's condition.
        """
        deadline = None
        if block and timeout is not None:
            deadline = self._clock() + timeout
        while True:
            pump = self._pump
            if pump is None:
                return None                 # never attached / torn down
            frame = None
            with pump.cond:
                self._promote_deferred_locked()
                if self._pending:
                    frame = self._pending.popleft()
                    self.stats.delivered += 1
                    self.stats.bytes_out += frame.nbytes
                    self.stats.steps.append(frame.step)
                elif self.closed or not block:
                    return None
                elif self._pump is pump:
                    if deadline is None:
                        pump.cond.wait(0.1)
                    else:
                        remaining = deadline - self._clock()
                        if remaining <= 0:
                            return None
                        # short slices: promote deferred frames on time
                        # and notice migrations to another pump
                        pump.cond.wait(min(remaining, 0.05))
            if frame is not None:
                if self._on_delivered is not None:
                    self._on_delivered(frame)
                return frame

    def drain(self) -> list[Frame]:
        """Take every immediately available frame (non-blocking)."""
        out = []
        while True:
            frame = self.take(block=False)
            if frame is None:
                return out
            out.append(frame)

    @property
    def backlog(self) -> int:
        pump = self._pump
        if pump is None:
            return len(self._pending)
        with pump.cond:
            return len(self._pending)

    def close(self) -> None:
        pump = self._pump
        if pump is None:
            already, self.closed = self.closed, True
        else:
            with pump.cond:
                already, self.closed = self.closed, True
                pump.cond.notify_all()
        if not already and self._on_close is not None:
            self._on_close(self)


class SessionPump:
    """Per-relay frame multiplexer: one condition, one service loop.

    The publisher calls :meth:`ingest` (O(1): inbox append + one
    notify); the relay's thread calls :meth:`pump_once` to fan the
    inbox out to sessions, feed the edge cache, and maintain the
    recent-frame ring used to backfill migrated or late-joining
    sessions without touching the publisher.
    """

    def __init__(
        self,
        rid: int,
        clock=_time.perf_counter,
        cache: EdgeCache | None = None,
        history: int = 32,
    ):
        self.rid = rid
        self.cond = threading.Condition()
        self.cache = cache if cache is not None else EdgeCache()
        self.history = history
        self._clock = clock
        self.sessions: dict[int, MeshSession] = {}
        self._inbox: deque[Frame] = deque()
        self._recent: dict[str, deque[Frame]] = {}
        self._latest: dict[str, Frame] = {}
        #: publisher-side wakeups issued (one per ingest, independent
        #: of session count — the O(1)-per-publish invariant)
        self.notifies = 0
        self.frames_ingested = 0
        self.offers = 0
        self.service_passes = 0

    # -- publisher edge ------------------------------------------------------
    def ingest(self, frame: Frame) -> None:
        """Accept one frame from the publisher; never blocks on clients.

        The append is a bare deque op (atomic under the GIL) and the
        wakeup is *opportunistic*: if the condition is free the pump
        may be asleep, so notify; if it is held, the pump is mid-pass
        and will re-check the inbox anyway — blocking the publisher
        behind a 12k-session fan-out would be a stall by construction.
        """
        self._inbox.append(frame)
        self.notifies += 1
        if self.cond.acquire(blocking=False):
            try:
                self.cond.notify_all()
            finally:
                self.cond.release()

    # -- relay service loop --------------------------------------------------
    def pump_once(self, on_frame=None) -> int:
        """Fan the inbox out to every session; returns frames processed.

        `on_frame` fires once per frame *inside* the pass — the relay
        threads its membership heartbeat through it, so a long fan-out
        over a big shard can never outlive its own lease.
        """
        inbox = self._inbox
        frames = []
        while True:                 # popleft is GIL-atomic, like append
            try:
                frames.append(inbox.popleft())
            except IndexError:
                break
        if not frames:
            return 0
        with self.cond:
            now = self._clock()
            for frame in frames:
                self.frames_ingested += 1
                self.cache.put(frame)
                ring = self._recent.get(frame.stream)
                if ring is None:
                    ring = self._recent[frame.stream] = deque()
                ring.append(frame)
                if len(ring) > self.history:
                    ring.popleft()
                self._latest[frame.stream] = frame
                seq = frame.seq
                sessions = self.sessions.values()
                self.offers += len(sessions)
                for session in sessions:
                    # inlined fast path: a plain session (no stream
                    # filter, no max_fps) is the 100k-client common
                    # case, and a method call per session per frame is
                    # the difference between keeping up with the
                    # publisher and falling behind it
                    if (
                        session._plain
                        and not session.closed
                        and seq > session._last_seq
                    ):
                        session._last_seq = seq
                        stats = session.stats
                        stats.offered += 1
                        pending = session._pending
                        if len(pending) >= session.depth:
                            pending.popleft()
                            stats.dropped += 1
                        pending.append(frame)
                        session._last_enqueue = now
                    else:
                        session._offer_locked(frame, now)
                if on_frame is not None:
                    on_frame()
            self.service_passes += 1
            self.cond.notify_all()          # wake blocked takers
        return len(frames)

    def wait_for_work(self, timeout: float) -> None:
        with self.cond:
            if not self._inbox:
                self.cond.wait(timeout)

    # -- session management --------------------------------------------------
    def attach(self, session: MeshSession, backfill: bool = False) -> None:
        """Adopt a session; optionally replay retained frames it missed.

        Backfill serves the relay's recent ring through the session's
        normal offer path — the seq cursor drops anything it already
        consumed, so a migrated session resumes exactly where it left
        off and a late joiner paints from the edge cache without a
        publisher round-trip.
        """
        with self.cond:
            self.sessions[session.sid] = session
            session._pump = self
            if backfill:
                now = self._clock()
                frames = sorted(
                    (f for ring in self._recent.values() for f in ring),
                    key=lambda f: f.seq,
                )
                for frame in frames:
                    if frame.seq > session._last_seq:
                        self.cache.get(frame.digest)   # served from edge
                        session._offer_locked(frame, now)
            self.cond.notify_all()

    def detach(self, session: MeshSession) -> None:
        with self.cond:
            self.sessions.pop(session.sid, None)

    def drain_sessions(self) -> list[MeshSession]:
        """Remove and return every session (relay loss / rebalance)."""
        with self.cond:
            sessions = list(self.sessions.values())
            self.sessions.clear()
            return sessions

    # -- edge reads ----------------------------------------------------------
    def latest(self, stream: str) -> Frame | None:
        """Latest frame for `stream` from the edge cache (counts hit/miss)."""
        with self.cond:
            frame = self._latest.get(stream)
            if frame is None:
                self.cache.misses += 1
                return None
            return self.cache.get(frame.digest) or frame

    def replay(self, stream: str) -> list[Frame]:
        """The retained ring for `stream`, oldest first, cache-counted."""
        with self.cond:
            frames = list(self._recent.get(stream, ()))
            for frame in frames:
                self.cache.get(frame.digest)
            return frames

    @property
    def clients(self) -> int:
        with self.cond:
            return len(self.sessions)

    def stats(self) -> dict:
        with self.cond:
            return {
                "clients": len(self.sessions),
                "frames_ingested": self.frames_ingested,
                "notifies": self.notifies,
                "offers": self.offers,
                "service_passes": self.service_passes,
                "inbox_depth": len(self._inbox),
                "cache": self.cache.stats(),
            }
