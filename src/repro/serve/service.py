"""Wiring: attach the serving layer to a configured SENSEI analysis.

``attach_serving`` is the one-call integration point the CLI and the
tests use: given a rank's :class:`ConfigurableAnalysis`, it

1. sets the hub's ``publish`` as the ``publisher`` hook on every
   Catalyst adaptor (rank 0 is the only rank whose render returns
   outputs, so only rank 0 actually publishes), and
2. prepends a :class:`SteeringEndpoint` bound to the shared bus and
   this rank's live pipelines, so client commands apply at the *next*
   step boundary — before that step's render, on every rank.

Every rank of an SPMD run must call it with the *same* hub and bus
objects (they are shared-memory singletons under the threaded
runtime, exactly like the SST broker).
"""

from __future__ import annotations

from repro.sensei.analyses.catalyst_adaptor import CatalystAnalysisAdaptor
from repro.sensei.configurable import AnalysisSpec, ConfigurableAnalysis
from repro.serve.hub import FrameHub
from repro.serve.steering import SteeringBus, SteeringEndpoint

__all__ = ["attach_serving"]

_STEERING_SPEC = AnalysisSpec(
    type="steering", frequency=1, enabled=True, attributes={}
)


def attach_serving(
    analysis: ConfigurableAnalysis,
    hub: FrameHub,
    bus: SteeringBus | None = None,
    comm=None,
) -> SteeringEndpoint | None:
    """Wire `hub` (and optionally `bus`) into a configured analysis.

    `hub` is anything with the FrameHub surface — the flat
    :class:`~repro.serve.hub.FrameHub` or a
    :class:`~repro.serve.mesh.ServeMesh`; a mesh additionally learns
    the bus so steering can route through the client's relay.

    Returns the rank's :class:`SteeringEndpoint` (None when no bus).
    """
    catalysts = [
        adaptor
        for _spec, adaptor in analysis.adaptors
        if isinstance(adaptor, CatalystAnalysisAdaptor)
    ]
    for adaptor in catalysts:
        adaptor.publisher = hub.publish
    if bus is None:
        return None
    if hasattr(hub, "attach_bus"):
        hub.attach_bus(bus)
    endpoint = SteeringEndpoint(
        comm if comm is not None else analysis.comm,
        bus,
        pipelines=[a.pipeline for a in catalysts if a.pipeline is not None],
    )
    # steering runs first so commands shape the same step's render
    analysis.adaptors.insert(0, (_STEERING_SPEC, endpoint))
    return endpoint
