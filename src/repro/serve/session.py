"""Client sessions: rate limiting and drop-to-latest backpressure.

A :class:`Session` is one connected client's view of the hub,
transport-agnostic: the in-process loopback, the HTTP stream handler,
and the load generator all consume the same object.

Backpressure is *drop-to-latest*, mirroring ADIOS2 SST's ``Discard``
queue policy on the consumer side: the publisher never blocks on a
client.  Each session owns a small bounded queue; when a new frame
arrives and the queue is full, the **oldest** pending frame is dropped,
so a slow client always converges on the most recent state and sees a
strictly increasing subsequence of steps — it skips frames, it never
stalls the hub or receives them out of order.

Per-client rate limiting (``max_fps``) gates *enqueue*: frames arriving
faster than the budget are parked in a single deferred slot (newest
wins) and promoted once the interval elapses, so a throttled client
still tracks the latest state at its own pace.
"""

from __future__ import annotations

import threading
import time as _time
from collections import deque
from dataclasses import dataclass, field

from repro.serve.framestore import Frame

__all__ = ["Session", "SessionStats"]


@dataclass
class SessionStats:
    """Delivery accounting for one client."""

    offered: int = 0            # frames the hub presented to this session
    delivered: int = 0          # frames the client actually took
    dropped: int = 0            # evicted by backpressure (queue full)
    rate_limited: int = 0       # superseded while parked in the deferred slot
    bytes_out: int = 0          # payload bytes delivered
    steps: list = field(default_factory=list)   # steps delivered, in order

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "rate_limited": self.rate_limited,
            "bytes_out": self.bytes_out,
        }


class Session:
    """One client's bounded frame queue with drop-to-latest semantics."""

    def __init__(
        self,
        sid: int,
        streams: tuple[str, ...] | None = None,
        depth: int = 2,
        max_fps: float | None = None,
        label: str = "",
        clock=_time.perf_counter,
        on_delivered=None,
        on_close=None,
    ):
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if max_fps is not None and max_fps <= 0:
            raise ValueError("max_fps must be positive")
        self.sid = sid
        self.streams = tuple(streams) if streams else None
        self.depth = depth
        self.label = label or f"client-{sid}"
        self._min_interval = (1.0 / max_fps) if max_fps else 0.0
        self._clock = clock
        self._pending: deque[Frame] = deque()
        self._deferred: Frame | None = None
        self._last_enqueue = -float("inf")
        self._cond = threading.Condition()
        self._on_delivered = on_delivered
        #: fires exactly once, the moment the session closes — the hub
        #: uses it to release this client's budget slot immediately
        #: instead of waiting for the next publish sweep
        self._on_close = on_close
        self.closed = False
        self.stats = SessionStats()

    # -- publisher side ----------------------------------------------------
    def wants(self, stream: str) -> bool:
        return self.streams is None or stream in self.streams

    def offer(self, frame: Frame) -> bool:
        """Present a frame; never blocks.  Returns False once closed."""
        with self._cond:
            if self.closed:
                return False
            if not self.wants(frame.stream):
                return True
            self.stats.offered += 1
            now = self._clock()
            if self._min_interval and (
                now - self._last_enqueue < self._min_interval
            ):
                if self._deferred is not None:
                    self.stats.rate_limited += 1
                self._deferred = frame     # newest wins
                return True
            self._enqueue(frame, now)
            self._cond.notify_all()
            return True

    def _enqueue(self, frame: Frame, now: float) -> None:
        if self._deferred is not None:
            # superseded by the frame being enqueued right now
            self.stats.rate_limited += 1
            self._deferred = None
        while len(self._pending) >= self.depth:
            self._pending.popleft()       # drop-to-latest: oldest goes
            self.stats.dropped += 1
        self._pending.append(frame)
        self._last_enqueue = now

    # -- client side -------------------------------------------------------
    def _promote_deferred_locked(self) -> None:
        if self._deferred is None:
            return
        now = self._clock()
        if now - self._last_enqueue >= self._min_interval:
            frame, self._deferred = self._deferred, None
            self._enqueue(frame, now)

    def take(self, timeout: float | None = None, block: bool = True) -> Frame | None:
        """Next pending frame, oldest first; None on timeout/close."""
        deadline = None
        if block and timeout is not None:
            deadline = self._clock() + timeout
        with self._cond:
            while True:
                self._promote_deferred_locked()
                if self._pending:
                    frame = self._pending.popleft()
                    break
                if self.closed or not block:
                    return None
                if deadline is None:
                    self._cond.wait(0.1)
                else:
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        return None
                    # wake early enough to promote a deferred frame
                    self._cond.wait(min(remaining, 0.05))
            self.stats.delivered += 1
            self.stats.bytes_out += frame.nbytes
            self.stats.steps.append(frame.step)
        if self._on_delivered is not None:
            self._on_delivered(frame)
        return frame

    def drain(self) -> list[Frame]:
        """Take every immediately available frame (non-blocking)."""
        out = []
        while True:
            frame = self.take(block=False)
            if frame is None:
                return out
            out.append(frame)

    @property
    def backlog(self) -> int:
        with self._cond:
            return len(self._pending)

    def close(self) -> None:
        with self._cond:
            already = self.closed
            self.closed = True
            self._cond.notify_all()
        if not already and self._on_close is not None:
            self._on_close(self)
