"""The steering bus: client commands back into the running simulation.

Clients (HTTP ``POST /steer``, the loopback transport, tests) submit
:class:`SteerCommand` objects onto a thread-safe :class:`SteeringBus`.
A :class:`SteeringEndpoint` — a stock SENSEI ``AnalysisAdaptor``
registered *first* in the analysis chain — drains the bus at every
step boundary on rank 0, broadcasts the batch to all ranks, and applies
it identically everywhere:

- ``stop`` rides the existing SENSEI stop protocol (``execute``
  returning ``False``, the same contract ``DivergenceGuard`` uses);
- ``pause``/``resume`` hold *all* ranks at the step boundary — rank 0
  polls the bus while paused and broadcasts each batch, so the group
  stays collectively synchronized until a ``resume`` or ``stop``;
- ``isovalue``/``colormap``/``camera_orbit`` mutate the Catalyst
  pipeline's parameters through its declarative specs, so the *next*
  rendered frame reflects the command on every rank (sort-last
  compositing requires identical spec state on all ranks).

Commands apply between steps, never mid-render — the simulation is the
only writer of its own state; steering only ever touches analysis
parameters and the run/stop decision.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, replace

from repro.observe.session import get_telemetry
from repro.parallel.comm import Communicator
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.data_adaptor import DataAdaptor

__all__ = ["SteerCommand", "SteeringBus", "SteeringEndpoint", "STEER_KINDS"]

STEER_KINDS = (
    "pause", "resume", "stop", "isovalue", "colormap", "camera_orbit",
    "advisory",
)


@dataclass(frozen=True)
class SteerCommand:
    """One client command.  `value` is kind-specific:

    - ``isovalue``: float, the new contour value;
    - ``colormap``: str, the new colormap name for every spec;
    - ``camera_orbit``: float, degrees to rotate the view direction
      about the vertical (z) axis;
    - ``pause``/``resume``/``stop``: value unused;
    - ``advisory``: str, operator guidance (e.g. an SLO watchdog
      alert) — recorded and surfaced to clients, mutates nothing.
    """

    kind: str
    value: float | str | None = None
    client: str = ""

    def __post_init__(self):
        if self.kind not in STEER_KINDS:
            raise ValueError(
                f"steer kind must be one of {STEER_KINDS}, got {self.kind!r}"
            )


class SteeringBus:
    """Thread-safe command queue between transports and the endpoint."""

    def __init__(self):
        self._pending: list[SteerCommand] = []
        self._cond = threading.Condition()
        self.submitted = 0
        self.applied: list[SteerCommand] = []

    def submit(self, command: SteerCommand) -> None:
        with self._cond:
            self._pending.append(command)
            self.submitted += 1
            self._cond.notify_all()

    def drain(self) -> list[SteerCommand]:
        """Take every pending command (non-blocking)."""
        with self._cond:
            out, self._pending = self._pending, []
            return out

    def wait(self, timeout: float) -> list[SteerCommand]:
        """Block up to `timeout` for at least one command, then drain."""
        with self._cond:
            if not self._pending:
                self._cond.wait(timeout)
            out, self._pending = self._pending, []
            return out

    def record_applied(self, commands) -> None:
        with self._cond:
            self.applied.extend(commands)

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._pending)


def orbit_direction(direction, degrees: float):
    """Rotate a view direction about the +z axis by `degrees`."""
    x, y, z = (float(c) for c in direction)
    a = math.radians(degrees)
    ca, sa = math.cos(a), math.sin(a)
    return (x * ca - y * sa, x * sa + y * ca, z)


class SteeringEndpoint(AnalysisAdaptor):
    """AnalysisAdaptor applying bus commands at step boundaries.

    `pipelines` are the live ``RenderPipeline`` objects of this rank's
    Catalyst adaptors (may be empty — stop/pause still work).  All
    ranks must share one `bus` object under the threaded SPMD runtime;
    only rank 0 reads it, and every batch is broadcast before applying.
    """

    def __init__(
        self,
        comm: Communicator,
        bus: SteeringBus,
        pipelines=(),
        poll_interval: float = 0.05,
    ):
        self.comm = comm
        self.bus = bus
        self.pipelines = list(pipelines)
        self.poll_interval = poll_interval
        self.paused = False
        self.stopped_at: int | None = None
        self.commands_applied = 0

    # -- the SENSEI hook ---------------------------------------------------
    def execute(self, data: DataAdaptor) -> bool:
        step = data.get_data_time_step()
        keep_going = self._apply_batch(self._exchange(block=False), step)
        # hold the whole group at this boundary while paused
        while keep_going and self.paused:
            keep_going = self._apply_batch(self._exchange(block=True), step)
        return keep_going

    def _exchange(self, block: bool) -> list[SteerCommand]:
        if self.comm.rank == 0:
            cmds = self.bus.wait(self.poll_interval) if block else self.bus.drain()
        else:
            cmds = None
        if self.comm.size > 1:
            cmds = self.comm.bcast(cmds)
        return cmds or []

    def _apply_batch(self, commands, step: int) -> bool:
        keep_going = True
        tel = get_telemetry()
        for cmd in commands:
            self._apply(cmd)
            self.commands_applied += 1
            if tel.enabled:
                tel.tracer.instant(
                    "steering.command", kind=cmd.kind, step=step,
                    client=cmd.client,
                )
                if self.comm.rank == 0:
                    tel.metrics.counter(
                        "repro_serve_steer_commands_total",
                        "Steering commands applied at step boundaries",
                    ).inc()
            if cmd.kind == "stop":
                self.stopped_at = step
                keep_going = False
        if self.comm.rank == 0 and commands:
            self.bus.record_applied(commands)
        return keep_going

    def _apply(self, cmd: SteerCommand) -> None:
        if cmd.kind == "pause":
            self.paused = True
        elif cmd.kind in ("resume", "stop"):
            self.paused = False
        elif cmd.kind == "isovalue":
            value = float(cmd.value)
            for pipe in self.pipelines:
                pipe.specs = [
                    replace(s, isovalue=value) if s.kind == "contour" else s
                    for s in pipe.specs
                ]
        elif cmd.kind == "colormap":
            for pipe in self.pipelines:
                pipe.specs = [replace(s, colormap=str(cmd.value)) for s in pipe.specs]
        elif cmd.kind == "camera_orbit":
            for pipe in self.pipelines:
                pipe.view_direction = orbit_direction(
                    pipe.view_direction, float(cmd.value)
                )
        # "advisory" intentionally falls through: it is operator
        # guidance riding the bus, visible in `applied`, never a mutation
