"""Transports: in-process loopback and the asyncio HTTP frame server.

Two transports share the :class:`~repro.serve.session.Session` layer:

- :class:`LoopbackClient` — a deterministic in-process client for
  tests, the CLI smoke path, and the load generator.  No sockets, no
  event loop; pulls are explicit, so tests control interleaving.
- :class:`HttpFrameServer` — a real ``asyncio`` TCP server (own event
  loop on a daemon thread, so it coexists with the threaded SPMD
  simulation).  Dependency-free HTTP/1.1:

  - ``GET /status`` — JSON hub/session/steering stats (plus whatever
    the injected ``status_provider`` reports, e.g. the merged
    ``MetricsRegistry``);
  - ``GET /frame/<stream>`` — the latest PNG;
  - ``GET /stream/<stream>`` — an MJPEG-style
    ``multipart/x-mixed-replace`` PNG stream (drop-to-latest
    backpressure per client; ``?max_fps=&depth=`` knobs);
  - ``GET /replay/<stream>`` — the history ring as a self-playing APNG
    (streamed through :class:`repro.util.apng.ApngWriter`, no
    re-encode);
  - ``POST /steer`` — submit a :class:`~repro.serve.steering.SteerCommand`
    as JSON ``{"kind": ..., "value": ...}``;
  - ``GET /metrics`` / ``/healthz`` / ``/slo`` / ``/timeline?step=N``
    — the live telemetry plane (Prometheus text, liveness, SLO burn,
    reconstructed step timelines) when a
    :class:`~repro.observe.live.plane.LivePlane` is attached.
    ``/healthz`` answers without one; the rest 404.

Every server registers in a module-level set so the test suite's
teardown guard (``tests/conftest.py``) can prove no event loop outlives
its test.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading
import weakref
from urllib.parse import parse_qsl, urlsplit

from repro.serve.framestore import Frame
from repro.serve.hub import FrameHub, HubFull
from repro.serve.steering import SteerCommand, SteeringBus
from repro.util.logging import get_logger

__all__ = ["LoopbackClient", "HttpFrameServer", "shutdown_all"]

#: live servers, for the conftest leak guard
_ACTIVE: "weakref.WeakSet[HttpFrameServer]" = weakref.WeakSet()


def shutdown_all(timeout: float = 5.0) -> list[str]:
    """Stop every live server; returns names of any that would not die."""
    leaked = []
    for server in list(_ACTIVE):
        if not server.stop(timeout=timeout):
            leaked.append(str(server))
    return leaked


class LoopbackClient:
    """Deterministic in-process client over a hub session."""

    def __init__(self, hub: FrameHub, bus: SteeringBus | None = None, **session_kw):
        self.hub = hub
        self.bus = bus
        self.session = hub.connect(**session_kw)
        self.frames: list[Frame] = []

    def poll(self, timeout: float = 0.0) -> Frame | None:
        """Take one frame (non-blocking when timeout == 0)."""
        frame = (
            self.session.take(block=False)
            if timeout == 0.0
            else self.session.take(timeout=timeout)
        )
        if frame is not None:
            self.frames.append(frame)
        return frame

    def drain(self) -> list[Frame]:
        got = self.session.drain()
        self.frames.extend(got)
        return got

    def steer(self, kind: str, value=None) -> None:
        if self.bus is None:
            raise RuntimeError("loopback client has no steering bus")
        self.bus.submit(SteerCommand(kind=kind, value=value,
                                     client=self.session.label))

    @property
    def steps(self) -> list[int]:
        return [f.step for f in self.frames]

    def close(self) -> None:
        self.hub.disconnect(self.session)


# ---------------------------------------------------------------------------
# HTTP transport
# ---------------------------------------------------------------------------

_BOUNDARY = b"repro-frame"


class HttpFrameServer:
    """Asyncio TCP/HTTP server streaming hub frames to many clients."""

    def __init__(
        self,
        hub: FrameHub,
        bus: SteeringBus | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        status_provider=None,
        frame_poll_s: float = 0.25,
        replay_delay_ms: int = 100,
        live=None,
        router=None,
    ):
        self.hub = hub
        self.bus = bus
        if bus is not None and getattr(hub, "bus", None) is None:
            # a mesh learns the bus so /steer can route via the
            # client's relay (no-op attribute on the flat hub)
            attach = getattr(hub, "attach_bus", None)
            if attach is not None:
                attach(bus)
        #: attached :class:`~repro.observe.live.plane.LivePlane`; serves
        #: /metrics, /slo and /timeline (``/healthz`` works without one)
        self.live = live
        #: attached :class:`~repro.insitu.router.HybridRouter`; serves
        #: the ``GET /routes`` debug view of recent routing decisions
        self.router = router
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.status_provider = status_provider
        self.frame_poll_s = frame_poll_s
        self.replay_delay_ms = replay_delay_ms
        self.requests = 0
        self._log = get_logger("repro.serve.http")
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._start_error: BaseException | None = None
        self._tasks: set[asyncio.Task] = set()

    def __str__(self) -> str:
        return f"HttpFrameServer({self.host}:{self.port or self._requested_port})"

    # -- lifecycle ---------------------------------------------------------
    def start(self, timeout: float = 10.0) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise TimeoutError("HTTP frame server failed to start in time")
        if self._start_error is not None:
            raise self._start_error
        _ACTIVE.add(self)
        return self.port

    def _run(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - surfaced to start()
            self._start_error = exc
            self._started.set()
        finally:
            self._stopped.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)

    def stop(self, timeout: float = 5.0) -> bool:
        """Signal shutdown and join the server thread; True on success."""
        if self._thread is None:
            return True
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)
        alive = self._thread.is_alive()
        if not alive:
            _ACTIVE.discard(self)
        return not alive

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling --------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._tasks.add(task)
        try:
            await self._handle(reader, writer)
        except (asyncio.CancelledError, ConnectionError, BrokenPipeError):
            pass
        finally:
            self._tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _handle(self, reader, writer) -> None:
        request = await reader.readline()
        if not request:
            return
        try:
            method, target, _version = request.decode("latin-1").split()
        except ValueError:
            await self._respond(writer, 400, {"error": "malformed request line"})
            return
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length:
            body = await reader.readexactly(length)
        self.requests += 1

        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = dict(parse_qsl(split.query))
        if method == "GET" and path == "/status":
            await self._respond(writer, 200, self._status())
        elif method == "GET" and path == "/healthz":
            await self._serve_healthz(writer)
        elif method == "GET" and path == "/metrics":
            await self._serve_metrics(writer)
        elif method == "GET" and path == "/slo":
            await self._serve_slo(writer)
        elif method == "GET" and path == "/timeline":
            await self._serve_timeline(writer, query)
        elif method == "GET" and path == "/routes":
            await self._serve_routes(writer)
        elif method == "GET" and path.startswith("/frame/"):
            await self._serve_latest(writer, path.removeprefix("/frame/"))
        elif method == "GET" and path.startswith("/stream/"):
            await self._serve_stream(writer, path.removeprefix("/stream/"), query)
        elif method == "GET" and path.startswith("/replay/"):
            await self._serve_replay(writer, path.removeprefix("/replay/"), query)
        elif method == "POST" and path == "/steer":
            await self._serve_steer(writer, body)
        else:
            await self._respond(
                writer, 404, {"error": f"no route for {method} {path}"}
            )

    def _status(self) -> dict:
        status = {"hub": self.hub.stats(), "requests": self.requests}
        if self.bus is not None:
            status["steering"] = {
                "submitted": self.bus.submitted,
                "pending": self.bus.pending,
                "applied": len(self.bus.applied),
            }
        if self.status_provider is not None:
            status.update(self.status_provider())
        return status

    def _latest(self, stream: str) -> Frame | None:
        """Latest frame — via the mesh's edge tier when serving one."""
        relay_latest = getattr(self.hub, "relay_latest", None)
        if relay_latest is not None:
            return relay_latest(stream, key=f"http-{stream}")
        return self.hub.store.latest(stream)

    async def _serve_latest(self, writer, stream: str) -> None:
        frame = self._latest(stream)
        if frame is None:
            await self._respond(writer, 404, {"error": f"no frames for {stream!r}"})
            return
        await self._respond_bytes(writer, frame.data, "image/png",
                                  extra={"X-Step": str(frame.step)})

    async def _serve_replay(self, writer, stream: str, query: dict) -> None:
        from repro.util.apng import ApngWriter

        relay_replay = getattr(self.hub, "relay_replay", None)
        frames = (
            relay_replay(stream, key=f"http-{stream}")
            if relay_replay is not None
            else self.hub.store.frames(stream)
        )
        if not frames:
            await self._respond(writer, 404, {"error": f"no frames for {stream!r}"})
            return
        delay = int(query.get("delay_ms", self.replay_delay_ms))
        buf = io.BytesIO()
        apng = ApngWriter(buf, delay_ms=delay)
        for frame in frames:
            apng.add_encoded(frame.data)
        apng.close()
        await self._respond_bytes(writer, buf.getvalue(), "image/apng",
                                  extra={"X-Frames": str(len(frames))})

    async def _serve_stream(self, writer, stream: str, query: dict) -> None:
        try:
            session = self.hub.connect(
                streams=(stream,),
                depth=int(query["depth"]) if "depth" in query else None,
                max_fps=float(query["max_fps"]) if "max_fps" in query else None,
                label=f"http-{stream}",
            )
        except HubFull as exc:
            await self._respond(writer, 503, {"error": str(exc)})
            return
        loop = asyncio.get_running_loop()
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: multipart/x-mixed-replace; "
                b"boundary=" + _BOUNDARY + b"\r\n"
                b"Cache-Control: no-store\r\n\r\n"
            )
            await writer.drain()
            # seed with the latest frame so a new client paints at once
            latest = self._latest(stream)
            if latest is not None:
                await self._write_part(writer, latest)
            while not (self.hub.closed or session.closed or self._shutdown.is_set()):
                frame = await loop.run_in_executor(
                    None, session.take, self.frame_poll_s
                )
                if frame is None:
                    continue
                await self._write_part(writer, frame)
        finally:
            self.hub.disconnect(session)

    async def _write_part(self, writer, frame: Frame) -> None:
        head = (
            b"--" + _BOUNDARY + b"\r\n"
            b"Content-Type: image/png\r\n"
            + f"Content-Length: {frame.nbytes}\r\n".encode()
            + f"X-Step: {frame.step}\r\n".encode()
            + f"X-Time: {frame.time:.9g}\r\n\r\n".encode()
        )
        writer.write(head + frame.data + b"\r\n")
        await writer.drain()

    async def _serve_steer(self, writer, body: bytes) -> None:
        if self.bus is None:
            await self._respond(writer, 404, {"error": "steering not enabled"})
            return
        try:
            payload = json.loads(body.decode() or "{}")
            command = SteerCommand(
                kind=payload["kind"],
                value=payload.get("value"),
                client=str(payload.get("client", "http")),
            )
        except (ValueError, KeyError) as exc:
            await self._respond(writer, 400, {"error": f"bad steer payload: {exc}"})
            return
        route_steer = getattr(self.hub, "route_steer", None)
        relay = None
        if route_steer is not None and getattr(self.hub, "bus", None) is not None:
            relay = route_steer(command)
        else:
            self.bus.submit(command)
        reply = {"ok": True, "pending": self.bus.pending}
        if relay is not None:
            reply["relay"] = relay
        await self._respond(writer, 200, reply)

    # -- live telemetry routes ---------------------------------------------
    async def _serve_healthz(self, writer) -> None:
        if self.live is None:
            # liveness without a plane: the server answering IS the signal
            await self._respond(
                writer, 200, {"status": "ok", "run_id": None, "live": False}
            )
            return
        from repro.observe.live.export import healthz_payload

        await self._respond(writer, 200, healthz_payload(self.live))

    async def _serve_metrics(self, writer) -> None:
        if self.live is None:
            await self._respond(writer, 404, {"error": "no live plane attached"})
            return
        from repro.observe.live.export import prometheus_text

        await self._respond_bytes(
            writer, prometheus_text(self.live).encode(),
            "text/plain; version=0.0.4",
        )

    async def _serve_slo(self, writer) -> None:
        if self.live is None:
            await self._respond(writer, 404, {"error": "no live plane attached"})
            return
        from repro.observe.live.export import slo_payload

        await self._respond(writer, 200, slo_payload(self.live))

    async def _serve_routes(self, writer) -> None:
        if self.router is None:
            await self._respond(writer, 404, {"error": "no router attached"})
            return
        await self._respond(writer, 200, self.router.stats())

    async def _serve_timeline(self, writer, query: dict) -> None:
        if self.live is None:
            await self._respond(writer, 404, {"error": "no live plane attached"})
            return
        from repro.observe.live.export import timeline_payload

        try:
            step = int(query["step"]) if "step" in query else None
        except ValueError:
            await self._respond(
                writer, 400, {"error": f"bad step {query['step']!r}"}
            )
            return
        code, payload = timeline_payload(self.live, step)
        await self._respond(writer, code, payload)

    # -- plumbing ----------------------------------------------------------
    _REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
                503: "Service Unavailable"}

    async def _respond(self, writer, code: int, obj: dict) -> None:
        data = json.dumps(obj, sort_keys=True).encode()
        await self._respond_bytes(writer, data, "application/json", code=code)

    async def _respond_bytes(
        self, writer, data: bytes, ctype: str, code: int = 200, extra=None,
    ) -> None:
        head = [
            f"HTTP/1.1 {code} {self._REASONS.get(code, 'OK')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        for name, value in (extra or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + data)
        await writer.drain()
