"""Shared utilities used across the repro stack."""

from repro.util.sizes import (
    KIB,
    MIB,
    GIB,
    TIB,
    format_bytes,
    parse_bytes,
)
from repro.util.timing import StopWatch, TimingStats, Timer
from repro.util.tables import Table
from repro.util.rng import make_rng

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "format_bytes",
    "parse_bytes",
    "StopWatch",
    "TimingStats",
    "Timer",
    "Table",
    "make_rng",
]
