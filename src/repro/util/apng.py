"""Animated PNG (APNG) assembly.

In situ rendering produces frame sequences; APNG packs them into a
single self-playing file every browser renders — no video codec, no
dependency, just three extra chunk types on top of PNG:

- ``acTL``: animation control (frame count, loop count),
- ``fcTL``: one frame-control chunk per frame (dimensions, delay),
- ``fdAT``: frame data (an IDAT with a sequence number prefix) for
  every frame after the first.

All frames must share dimensions; the first frame doubles as the
still image shown by non-animated decoders.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.util.png import _chunk, encode_png

_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _split_chunks(png: bytes):
    """Yield (tag, payload) for each chunk of a PNG byte string."""
    pos = 8
    while pos < len(png):
        (length,) = struct.unpack(">I", png[pos : pos + 4])
        tag = png[pos + 4 : pos + 8]
        payload = png[pos + 8 : pos + 8 + length]
        yield tag, payload
        pos += 12 + length


def assemble_apng(
    frames: list[np.ndarray],
    delay_ms: int = 100,
    loops: int = 0,
    compress_level: int = 6,
) -> bytes:
    """Assemble uint8 RGB(A)/gray frames into one APNG byte string.

    `loops` = 0 means repeat forever.  Frames must share shape/dtype.
    """
    if not frames:
        raise ValueError("need at least one frame")
    shapes = {f.shape for f in frames}
    if len(shapes) != 1:
        raise ValueError(f"frames must share a shape, got {shapes}")
    if delay_ms < 1:
        raise ValueError("delay_ms must be >= 1")

    encoded = [encode_png(f, compress_level) for f in frames]
    first_chunks = dict(_split_chunks(encoded[0]))
    ihdr = first_chunks[b"IHDR"]
    width, height = struct.unpack(">II", ihdr[:8])

    out = [_SIGNATURE, _chunk(b"IHDR", ihdr)]
    out.append(_chunk(b"acTL", struct.pack(">II", len(frames), loops)))

    seq = 0

    def fctl() -> bytes:
        nonlocal seq
        payload = struct.pack(
            ">IIIIIHHBB",
            seq, width, height, 0, 0,      # full-frame replace at (0, 0)
            delay_ms, 1000,                # delay as a fraction of a second
            0,                             # dispose: none
            0,                             # blend: source
        )
        seq += 1
        return _chunk(b"fcTL", payload)

    # first frame: fcTL + the default-image IDAT
    out.append(fctl())
    for tag, payload in _split_chunks(encoded[0]):
        if tag == b"IDAT":
            out.append(_chunk(b"IDAT", payload))

    # remaining frames: fcTL + fdAT (sequence-numbered IDAT payloads)
    for png in encoded[1:]:
        out.append(fctl())
        for tag, payload in _split_chunks(png):
            if tag == b"IDAT":
                out.append(
                    _chunk(b"fdAT", struct.pack(">I", seq) + payload)
                )
                seq += 1

    out.append(_chunk(b"IEND", b""))
    return b"".join(out)


def write_apng(path, frames: list[np.ndarray], **kwargs) -> int:
    """Write an APNG file; returns bytes written."""
    data = assemble_apng(frames, **kwargs)
    with open(path, "wb") as f:
        f.write(data)
    return len(data)


def apng_info(data: bytes) -> dict:
    """Parse an APNG's animation structure (for tests/tools).

    Returns {frames, loops, width, height, fctl_count, fdat_count}.
    """
    if data[:8] != _SIGNATURE:
        raise ValueError("not a PNG/APNG")
    info = {"fctl_count": 0, "fdat_count": 0}
    for tag, payload in _split_chunks(data):
        if tag == b"IHDR":
            info["width"], info["height"] = struct.unpack(">II", payload[:8])
        elif tag == b"acTL":
            info["frames"], info["loops"] = struct.unpack(">II", payload)
        elif tag == b"fcTL":
            info["fctl_count"] += 1
        elif tag == b"fdAT":
            info["fdat_count"] += 1
    if "frames" not in info:
        raise ValueError("no acTL chunk: not an animated PNG")
    return info
