"""Animated PNG (APNG) assembly — incremental and one-shot.

In situ rendering produces frame sequences; APNG packs them into a
single self-playing file every browser renders — no video codec, no
dependency, just three extra chunk types on top of PNG:

- ``acTL``: animation control (frame count, loop count),
- ``fcTL``: one frame-control chunk per frame (dimensions, delay),
- ``fdAT``: frame data (an IDAT with a sequence number prefix) for
  every frame after the first.

All frames must share dimensions; the first frame doubles as the
still image shown by non-animated decoders.

:class:`ApngWriter` is the streaming form (open → ``add_frame`` /
``add_encoded`` → ``close``): frames are written as they arrive — the
serving transport's history replay and ``posthoc.movie`` never hold
the whole animation in memory — and the frame count is patched into
the reserved ``acTL`` slot at close (one seek; any ``BytesIO`` or real
file qualifies).  ``add_encoded`` splices already-encoded PNG bytes
chunk-by-chunk with no re-encode, which is how the frame hub's
PNG-deduped history becomes an APNG for free.
:func:`assemble_apng` is a thin one-shot wrapper over the writer.
"""

from __future__ import annotations

import io
import struct

import numpy as np

from repro.util.png import _chunk, encode_png

_SIGNATURE = b"\x89PNG\r\n\x1a\n"


def _split_chunks(png: bytes):
    """Yield (tag, payload) for each chunk of a PNG byte string."""
    pos = 8
    while pos < len(png):
        (length,) = struct.unpack(">I", png[pos : pos + 4])
        tag = png[pos + 4 : pos + 8]
        payload = png[pos + 8 : pos + 8 + length]
        yield tag, payload
        pos += 12 + length


class ApngWriter:
    """Incrementally write an APNG to a seekable binary stream or path.

    Usage::

        with ApngWriter(path, delay_ms=80) as w:
            for frame in frames:        # uint8 arrays ...
                w.add_frame(frame)
            # ... or already-encoded PNG bytes: w.add_encoded(png)

    The header (signature, IHDR, ``acTL``) is emitted on the first
    frame; ``close`` appends ``IEND`` and patches the real frame count
    into the ``acTL`` reservation, so the stream must be seekable (a
    file opened ``"wb"`` or a ``BytesIO`` — not a socket; transports
    assemble into a buffer first).
    """

    def __init__(self, fp, delay_ms: int = 100, loops: int = 0,
                 compress_level: int = 6):
        if delay_ms < 1:
            raise ValueError("delay_ms must be >= 1")
        if isinstance(fp, (str, bytes)) or hasattr(fp, "__fspath__"):
            self._fp = open(fp, "wb")
            self._owns_fp = True
        else:
            self._fp = fp
            self._owns_fp = False
        self.delay_ms = delay_ms
        self.loops = loops
        self.compress_level = compress_level
        self.frames = 0
        self._seq = 0
        self._ihdr: bytes | None = None
        self._actl_pos: int | None = None
        self._bytes_written = 0
        self._closed = False

    # -- adding frames -----------------------------------------------------
    def add_frame(self, frame: np.ndarray) -> None:
        """Encode and append one uint8 RGB(A)/grayscale frame."""
        self.add_encoded(encode_png(frame, self.compress_level))

    def add_encoded(self, png: bytes) -> None:
        """Append one frame from already-encoded PNG bytes (no re-encode).

        The PNG's IHDR must match the first frame's exactly (same
        dimensions, bit depth, and color type).
        """
        if self._closed:
            raise ValueError("writer is closed")
        if png[:8] != _SIGNATURE:
            raise ValueError("add_encoded expects PNG bytes")
        chunks = list(_split_chunks(png))
        ihdr = next((p for t, p in chunks if t == b"IHDR"), None)
        if ihdr is None:
            raise ValueError("PNG has no IHDR chunk")
        if self._ihdr is None:
            self._ihdr = ihdr
            self._write(_SIGNATURE)
            self._write(_chunk(b"IHDR", ihdr))
            self._actl_pos = self._tell()
            self._write(_chunk(b"acTL", struct.pack(">II", 0, self.loops)))
        elif ihdr != self._ihdr:
            raise ValueError(
                "frames must share a shape (IHDR mismatch: "
                f"{struct.unpack('>II', ihdr[:8])} vs "
                f"{struct.unpack('>II', self._ihdr[:8])})"
            )
        self._write(self._fctl())
        first = self.frames == 0
        for tag, payload in chunks:
            if tag != b"IDAT":
                continue
            if first:
                self._write(_chunk(b"IDAT", payload))
            else:
                self._write(
                    _chunk(b"fdAT", struct.pack(">I", self._seq) + payload)
                )
                self._seq += 1
        self.frames += 1

    def _fctl(self) -> bytes:
        width, height = struct.unpack(">II", self._ihdr[:8])
        payload = struct.pack(
            ">IIIIIHHBB",
            self._seq, width, height, 0, 0,    # full-frame replace at (0, 0)
            self.delay_ms, 1000,               # delay as a fraction of a second
            0,                                 # dispose: none
            0,                                 # blend: source
        )
        self._seq += 1
        return _chunk(b"fcTL", payload)

    # -- finishing ---------------------------------------------------------
    def close(self) -> int:
        """Write IEND, patch the frame count, return total bytes written."""
        if self._closed:
            return self._bytes_written
        self._closed = True
        if self.frames == 0:
            if self._owns_fp:
                self._fp.close()
            raise ValueError("need at least one frame")
        self._write(_chunk(b"IEND", b""))
        end = self._tell()
        self._fp.seek(self._actl_pos)
        self._fp.write(_chunk(b"acTL", struct.pack(">II", self.frames, self.loops)))
        self._fp.seek(end)
        if self._owns_fp:
            self._fp.close()
        return self._bytes_written

    def __enter__(self) -> "ApngWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.close()
        elif self._owns_fp:
            self._fp.close()
        return False

    # -- plumbing ----------------------------------------------------------
    def _write(self, data: bytes) -> None:
        self._fp.write(data)
        self._bytes_written += len(data)

    def _tell(self) -> int:
        return self._fp.tell()


def assemble_apng(
    frames: list[np.ndarray],
    delay_ms: int = 100,
    loops: int = 0,
    compress_level: int = 6,
) -> bytes:
    """Assemble uint8 RGB(A)/gray frames into one APNG byte string.

    `loops` = 0 means repeat forever.  Frames must share shape/dtype.
    One-shot wrapper over :class:`ApngWriter`.
    """
    if not frames:
        raise ValueError("need at least one frame")
    shapes = {f.shape for f in frames}
    if len(shapes) != 1:
        raise ValueError(f"frames must share a shape, got {shapes}")
    buf = io.BytesIO()
    writer = ApngWriter(buf, delay_ms=delay_ms, loops=loops,
                        compress_level=compress_level)
    for frame in frames:
        writer.add_frame(frame)
    writer.close()
    return buf.getvalue()


def write_apng(path, frames: list[np.ndarray], **kwargs) -> int:
    """Write an APNG file; returns bytes written."""
    data = assemble_apng(frames, **kwargs)
    with open(path, "wb") as f:
        f.write(data)
    return len(data)


def apng_info(data: bytes) -> dict:
    """Parse an APNG's animation structure (for tests/tools).

    Returns {frames, loops, width, height, fctl_count, fdat_count,
    fdat_sequences}.
    """
    if data[:8] != _SIGNATURE:
        raise ValueError("not a PNG/APNG")
    info = {"fctl_count": 0, "fdat_count": 0, "fdat_sequences": []}
    for tag, payload in _split_chunks(data):
        if tag == b"IHDR":
            info["width"], info["height"] = struct.unpack(">II", payload[:8])
        elif tag == b"acTL":
            info["frames"], info["loops"] = struct.unpack(">II", payload)
        elif tag == b"fcTL":
            info["fctl_count"] += 1
        elif tag == b"fdAT":
            info["fdat_count"] += 1
            info["fdat_sequences"].append(struct.unpack(">I", payload[:4])[0])
    if "frames" not in info:
        raise ValueError("no acTL chunk: not an animated PNG")
    return info
