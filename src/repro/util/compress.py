"""Error-bounded lossy field compression ("SZ-lite").

The paper frames the I/O crisis as a fidelity-versus-volume choice:
full checkpoints (19 GB) or images (6.5 MB).  Error-bounded lossy
compression is the standard middle point on that curve (SZ/ZFP in
production), so this module provides a small, honest implementation to
benchmark against:

- uniform quantization to a caller-specified **absolute error bound**
  (each value is representable within ±bound by construction),
- delta encoding along the fastest axis (smooth fields quantize to
  near-constant deltas),
- zlib entropy coding of the integer stream.

Values that don't fit the 32-bit quantizer range fall back to a
lossless float path for the whole block (a rare, degenerate case).
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

_MAGIC = b"SZL1"
_MODE_QUANT = 0
_MODE_LOSSLESS = 1


def compress_field(array: np.ndarray, error_bound: float, level: int = 6) -> bytes:
    """Compress a float array to within ±`error_bound` of every value."""
    if error_bound <= 0:
        raise ValueError("error_bound must be positive")
    arr = np.ascontiguousarray(array, dtype=np.float64)
    if not np.isfinite(arr).all():
        raise ValueError("cannot compress non-finite values")
    # quantize: q = round(v / (2*bound)); |v - q*2*bound| <= bound
    step = 2.0 * error_bound
    scaled = arr.ravel() / step
    deltas = None
    if scaled.size and np.abs(scaled).max() <= 2**31 - 2:
        q = np.rint(scaled).astype(np.int64)
        deltas = np.empty_like(q)
        deltas[0] = q[0]
        np.subtract(q[1:], q[:-1], out=deltas[1:])
        # deltas span up to twice the value range: re-check before i4
        if deltas.size and np.abs(deltas).max() > 2**31 - 2:
            deltas = None
    if deltas is None:
        mode = _MODE_LOSSLESS
        payload = zlib.compress(arr.tobytes(), level)
    else:
        mode = _MODE_QUANT
        payload = zlib.compress(deltas.astype("<i4").tobytes(), level)
    header = _MAGIC + struct.pack(
        "<Bd B", mode, error_bound, len(arr.shape)
    ) + struct.pack(f"<{arr.ndim}q", *arr.shape)
    return header + payload


def decompress_field(data: bytes) -> tuple[np.ndarray, float]:
    """Inverse of :func:`compress_field`; returns (array, error_bound)."""
    if data[:4] != _MAGIC:
        raise ValueError("not an SZ-lite payload")
    off = 4
    mode, error_bound, ndim = struct.unpack_from("<BdB", data, off)
    off += struct.calcsize("<BdB")
    shape = struct.unpack_from(f"<{ndim}q", data, off)
    off += 8 * ndim
    raw = zlib.decompress(data[off:])
    if mode == _MODE_LOSSLESS:
        return np.frombuffer(raw, dtype=np.float64).reshape(shape).copy(), error_bound
    deltas = np.frombuffer(raw, dtype="<i4").astype(np.int64)
    q = np.cumsum(deltas)
    step = 2.0 * error_bound
    return (q * step).reshape(shape), error_bound


def compression_ratio(array: np.ndarray, error_bound: float) -> float:
    """raw bytes / compressed bytes for one field."""
    compressed = len(compress_field(array, error_bound))
    return array.nbytes / compressed if compressed else float("inf")
