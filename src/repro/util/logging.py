"""Rank-aware logging.

Leadership-scale runs cannot have every rank printing: the convention
(followed by Nek, SENSEI, and ADIOS alike) is rank-0-only logging by
default, with an environment switch (``REPRO_LOG_ALL_RANKS=1``) to
unmute everyone when debugging a rank-dependent problem.  Messages are
prefixed ``[name rank/size]`` so interleaved multi-rank output stays
attributable.
"""

from __future__ import annotations

import logging
import os
import sys

import threading

from repro.parallel.comm import Communicator

_FORMAT = "%(asctime)s %(prefix)s %(levelname)s %(message)s"

#: guards handler setup: get_logger is called from concurrent
#: ThreadCommunicator rank threads, and logging.Logger.addHandler is
#: not atomic with our inspect-then-replace logic
_setup_lock = threading.Lock()


class _RankFilter(logging.Filter):
    def __init__(self, prefix: str, emit: bool):
        super().__init__()
        self.prefix = prefix
        self.emit = emit

    def filter(self, record: logging.LogRecord) -> bool:
        record.prefix = self.prefix
        return self.emit


class _RankHandler(logging.StreamHandler):
    """StreamHandler tagged with its configuration, for idempotence."""

    def __init__(self, stream, prefix: str, emit: bool):
        super().__init__(stream)
        self.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        self.addFilter(_RankFilter(prefix, emit))
        self._config = (id(stream), prefix, emit)


def get_logger(
    name: str,
    comm: Communicator | None = None,
    level: int | str | None = None,
    stream=None,
) -> logging.Logger:
    """Create/fetch a rank-aware logger — idempotently.

    Only rank 0 emits unless ``REPRO_LOG_ALL_RANKS`` is set (or the
    communicator is None/size 1).  Level defaults to ``REPRO_LOG_LEVEL``
    or INFO.

    Calling this twice for the same name is a no-op when the requested
    configuration matches the installed handler: a logger handed out
    earlier keeps working (no handler churn), and concurrent calls from
    ThreadCommunicator rank threads cannot interleave a clear with a
    peer's emit.
    """
    rank = comm.rank if comm is not None else 0
    size = comm.size if comm is not None else 1
    logger = logging.getLogger(f"repro.{name}.r{rank}")

    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "INFO")

    all_ranks = os.environ.get("REPRO_LOG_ALL_RANKS", "") not in ("", "0", "no")
    emit = rank == 0 or all_ranks or size == 1
    target = stream or sys.stderr
    config = (id(target), f"[{name} {rank}/{size}]", emit)

    with _setup_lock:
        logger.propagate = False
        logger.setLevel(level)
        installed = [
            h for h in logger.handlers
            if isinstance(h, _RankHandler) and h._config == config
        ]
        if not installed:
            logger.handlers.clear()
            logger.addHandler(_RankHandler(target, config[1], emit))
    return logger
