"""Rank-aware logging.

Leadership-scale runs cannot have every rank printing: the convention
(followed by Nek, SENSEI, and ADIOS alike) is rank-0-only logging by
default, with an environment switch (``REPRO_LOG_ALL_RANKS=1``) to
unmute everyone when debugging a rank-dependent problem.  Messages are
prefixed ``[name rank/size]`` so interleaved multi-rank output stays
attributable.
"""

from __future__ import annotations

import logging
import os
import sys

from repro.parallel.comm import Communicator

_FORMAT = "%(asctime)s %(prefix)s %(levelname)s %(message)s"


class _RankFilter(logging.Filter):
    def __init__(self, prefix: str, emit: bool):
        super().__init__()
        self.prefix = prefix
        self.emit = emit

    def filter(self, record: logging.LogRecord) -> bool:
        record.prefix = self.prefix
        return self.emit


def get_logger(
    name: str,
    comm: Communicator | None = None,
    level: int | str | None = None,
    stream=None,
) -> logging.Logger:
    """Create/fetch a rank-aware logger.

    Only rank 0 emits unless ``REPRO_LOG_ALL_RANKS`` is set (or the
    communicator is None/size 1).  Level defaults to ``REPRO_LOG_LEVEL``
    or INFO.
    """
    rank = comm.rank if comm is not None else 0
    size = comm.size if comm is not None else 1
    logger = logging.getLogger(f"repro.{name}.r{rank}")
    logger.handlers.clear()
    logger.propagate = False

    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL", "INFO")
    logger.setLevel(level)

    all_ranks = os.environ.get("REPRO_LOG_ALL_RANKS", "") not in ("", "0", "no")
    emit = rank == 0 or all_ranks or size == 1
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
    handler.addFilter(_RankFilter(f"[{name} {rank}/{size}]", emit))
    logger.addHandler(handler)
    return logger
