"""Minimal dependency-free PNG encoder/decoder.

The Catalyst analysis adaptor writes real image files so the storage
economy experiment (6.5 MB of images vs 19 GB of checkpoints) measures
genuine bytes on disk.  Only what the renderer needs is implemented:
8-bit RGB / RGBA / grayscale, non-interlaced, zlib-compressed, with the
per-scanline filters required for decent compression of smooth renders.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

_SIGNATURE = b"\x89PNG\r\n\x1a\n"

# PNG color types for the sample counts we support.
_COLOR_TYPE = {1: 0, 3: 2, 4: 6}
_CHANNELS = {0: 1, 2: 3, 6: 4}


def _chunk(tag: bytes, payload: bytes) -> bytes:
    return (
        struct.pack(">I", len(payload))
        + tag
        + payload
        + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
    )


def encode_png(image: np.ndarray, compress_level: int = 6) -> bytes:
    """Encode an ``(H, W)`` or ``(H, W, C)`` uint8 array as PNG bytes.

    C may be 1 (grayscale), 3 (RGB) or 4 (RGBA).  Each scanline is
    preceded by filter type 1 ("Sub"), which captures the horizontal
    smoothness typical of rendered imagery and compresses far better
    than filter 0 on pseudocolored output.
    """
    img = np.asarray(image)
    if img.dtype != np.uint8:
        raise TypeError(f"PNG encoder expects uint8 pixels, got {img.dtype}")
    if img.ndim == 2:
        img = img[:, :, None]
    if img.ndim != 3 or img.shape[2] not in _COLOR_TYPE:
        raise ValueError(f"unsupported image shape {image.shape}")
    h, w, c = img.shape
    if h == 0 or w == 0:
        raise ValueError("image must have nonzero dimensions")
    color_type = _COLOR_TYPE[c]

    # Filter type 1 (Sub): each byte minus the byte `c` samples to its left.
    left = np.zeros_like(img)
    left[:, 1:, :] = img[:, :-1, :]
    filtered = (img.astype(np.int16) - left.astype(np.int16)) % 256
    raw = np.empty((h, 1 + w * c), dtype=np.uint8)
    raw[:, 0] = 1
    raw[:, 1:] = filtered.astype(np.uint8).reshape(h, w * c)

    ihdr = struct.pack(">IIBBBBB", w, h, 8, color_type, 0, 0, 0)
    idat = zlib.compress(raw.tobytes(), compress_level)
    return b"".join(
        [
            _SIGNATURE,
            _chunk(b"IHDR", ihdr),
            _chunk(b"IDAT", idat),
            _chunk(b"IEND", b""),
        ]
    )


def write_png(path, image: np.ndarray, compress_level: int = 6) -> int:
    """Write *image* to *path*; returns the number of bytes written."""
    data = encode_png(image, compress_level)
    with open(path, "wb") as f:
        f.write(data)
    return len(data)


def _unfilter(raw: np.ndarray, h: int, w: int, c: int) -> np.ndarray:
    """Reverse PNG scanline filters (types 0-4)."""
    stride = w * c
    out = np.zeros((h, stride), dtype=np.uint8)
    for y in range(h):
        ftype = raw[y, 0]
        line = raw[y, 1:].astype(np.int32)
        prev = out[y - 1].astype(np.int32) if y > 0 else np.zeros(stride, np.int32)
        cur = np.zeros(stride, dtype=np.int32)
        if ftype == 0:
            cur = line
        elif ftype == 2:  # Up
            cur = (line + prev) % 256
        elif ftype in (1, 3, 4):  # Sub / Average / Paeth need a left scan
            for x in range(stride):
                a = cur[x - c] if x >= c else 0
                b = prev[x]
                if ftype == 1:
                    cur[x] = (line[x] + a) % 256
                elif ftype == 3:
                    cur[x] = (line[x] + (a + b) // 2) % 256
                else:
                    cc = prev[x - c] if x >= c else 0
                    p = a + b - cc
                    pa, pb, pc = abs(p - a), abs(p - b), abs(p - cc)
                    if pa <= pb and pa <= pc:
                        pred = a
                    elif pb <= pc:
                        pred = b
                    else:
                        pred = cc
                    cur[x] = (line[x] + pred) % 256
        else:
            raise ValueError(f"unsupported PNG filter type {ftype}")
        out[y] = cur.astype(np.uint8)
    return out


def decode_png(data: bytes) -> np.ndarray:
    """Decode PNG bytes produced by :func:`encode_png` (8-bit, no interlace).

    Returns an ``(H, W)`` array for grayscale or ``(H, W, C)`` otherwise.
    Used by tests to round-trip rendered imagery.
    """
    if data[:8] != _SIGNATURE:
        raise ValueError("not a PNG file")
    pos = 8
    width = height = None
    color_type = None
    idat = b""
    while pos < len(data):
        (length,) = struct.unpack(">I", data[pos : pos + 4])
        tag = data[pos + 4 : pos + 8]
        payload = data[pos + 8 : pos + 8 + length]
        pos += 12 + length
        if tag == b"IHDR":
            width, height, depth, color_type, _, _, interlace = struct.unpack(
                ">IIBBBBB", payload
            )
            if depth != 8 or interlace != 0:
                raise ValueError("decoder supports 8-bit non-interlaced PNG only")
            if color_type not in _CHANNELS:
                raise ValueError(f"unsupported color type {color_type}")
        elif tag == b"IDAT":
            idat += payload
        elif tag == b"IEND":
            break
    if width is None or color_type is None:
        raise ValueError("missing IHDR chunk")
    c = _CHANNELS[color_type]
    raw = np.frombuffer(zlib.decompress(idat), dtype=np.uint8)
    raw = raw.reshape(height, 1 + width * c)
    out = _unfilter(raw, height, width, c).reshape(height, width, c)
    return out[:, :, 0] if c == 1 else out
