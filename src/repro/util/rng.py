"""Deterministic random-number plumbing.

All stochastic pieces of the stack (initial perturbations, synthetic
workloads) draw from generators created here so runs are reproducible
bit-for-bit given a seed, independent of rank execution order.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int, *streams: int) -> np.random.Generator:
    """Create a generator for a (seed, stream...) tuple.

    Each logical consumer (e.g. a rank, a case, a workload) passes its
    own stream indices, so concurrent consumers never share a stream:

    >>> a = make_rng(7, 0); b = make_rng(7, 1)
    >>> float(a.random()) != float(b.random())
    True
    """
    if seed < 0:
        raise ValueError("seed must be non-negative")
    return np.random.default_rng(
        np.random.SeedSequence(entropy=seed, spawn_key=tuple(streams))
    )
