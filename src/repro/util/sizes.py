"""Byte-size constants, formatting and parsing.

Storage accounting is central to the paper's evaluation (6.5 MB of
Catalyst images vs 19 GB of checkpoints), so the whole stack reports
byte counts through these helpers for consistent, lossless formatting.
"""

from __future__ import annotations

import re

KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

_UNITS = [
    ("TiB", TIB),
    ("GiB", GIB),
    ("MiB", MIB),
    ("KiB", KIB),
    ("B", 1),
]

_PARSE_UNITS = {
    "b": 1,
    "": 1,
    "kb": 1000,
    "mb": 1000**2,
    "gb": 1000**3,
    "tb": 1000**4,
    "kib": KIB,
    "mib": MIB,
    "gib": GIB,
    "tib": TIB,
    "k": KIB,
    "m": MIB,
    "g": GIB,
    "t": TIB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def format_bytes(n: float, precision: int = 2) -> str:
    """Format a byte count using binary units.

    >>> format_bytes(6.5 * MIB)
    '6.50 MiB'
    >>> format_bytes(0)
    '0 B'
    """
    if n < 0:
        raise ValueError(f"byte count must be non-negative, got {n}")
    if n == 0:
        return "0 B"
    for unit, factor in _UNITS:
        if n >= factor:
            value = n / factor
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.{precision}f} {unit}"
    return f"{n:.{precision}f} B"


def parse_bytes(text: str) -> int:
    """Parse a human byte-size string (``"19 GB"``, ``"6.5MiB"``, ``"512"``).

    Decimal units (kB/MB/GB) are powers of 1000; binary units
    (KiB/MiB/GiB) are powers of 1024, matching common storage-system
    conventions.
    """
    m = _SIZE_RE.match(text)
    if m is None:
        raise ValueError(f"cannot parse byte size: {text!r}")
    value = float(m.group(1))
    unit = m.group(2).lower()
    if unit not in _PARSE_UNITS:
        raise ValueError(f"unknown byte-size unit {m.group(2)!r} in {text!r}")
    return int(round(value * _PARSE_UNITS[unit]))
