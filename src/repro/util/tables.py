"""Plain-text table rendering for benchmark reports.

Every figure/table driver in ``repro.bench`` prints its series through
``Table`` so the regenerated rows are easy to diff against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A fixed-column ASCII table.

    >>> t = Table(["ranks", "time [s]"], title="Fig. 2")
    >>> t.add_row([280, 123.4])
    >>> print(t.render())  # doctest: +ELLIPSIS
    Fig. 2
    ...
    """

    columns: list[str]
    title: str | None = None
    rows: list[list] = field(default_factory=list)
    float_format: str = "{:.3f}"

    def add_row(self, row: list) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def _fmt(self, cell) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    def render(self) -> str:
        cells = [[self._fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(header)
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]
