"""Wall-clock timing helpers.

The evaluation reports total elapsed time (Fig. 2) and mean time per
timestep (Fig. 5).  ``StopWatch`` accumulates named phases so a run can
report solver / in situ / checkpoint breakdowns, and ``TimingStats``
summarizes repeated samples (mean/min/max/std) the way the in transit
experiment reports per-timestep means.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class TimingStats:
    """Streaming summary statistics over time samples (Welford)."""

    count: int = 0
    total: float = 0.0
    _min: float = math.inf
    _max: float = -math.inf
    _mean: float = 0.0
    _m2: float = 0.0

    def add(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        self._min = min(self._min, sample)
        self._max = max(self._max, sample)
        delta = sample - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (sample - self._mean)

    @property
    def min(self) -> float:
        """Smallest sample; 0.0 when empty (never the inf sentinel)."""
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        """Largest sample; 0.0 when empty (never the -inf sentinel)."""
        return self._max if self.count else 0.0

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "TimingStats") -> "TimingStats":
        """Combine two summaries (parallel Welford merge)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self._min = other._min
            self._max = other._max
            self._mean = other._mean
            self._m2 = other._m2
            return self
        n = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / n
        self._mean = (self.count * self._mean + other.count * other._mean) / n
        self.count = n
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "std": self.std,
        }


class Timer:
    """A single start/stop wall timer."""

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed = 0.0

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError("timer already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("timer not running")
        self.elapsed += time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0


@dataclass
class StopWatch:
    """Accumulates wall time into named phases.

    >>> sw = StopWatch()
    >>> with sw.phase("solve"):
    ...     pass
    >>> sw.stats("solve").count
    1
    """

    phases: dict[str, TimingStats] = field(default_factory=dict)

    @contextmanager
    def phase(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_sample(name, time.perf_counter() - t0)

    def add_sample(self, name: str, seconds: float) -> None:
        self.phases.setdefault(name, TimingStats()).add(seconds)

    def stats(self, name: str) -> TimingStats:
        return self.phases.setdefault(name, TimingStats())

    def total(self, name: str) -> float:
        stats = self.phases.get(name)
        return stats.total if stats else 0.0

    def as_dict(self) -> dict:
        return {name: stats.as_dict() for name, stats in self.phases.items()}

    def merge(self, other: "StopWatch") -> "StopWatch":
        for name, stats in other.phases.items():
            self.stats(name).merge(stats)
        return self
