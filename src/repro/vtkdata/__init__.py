"""VTK-like data model and XML file writers.

SENSEI relays simulation data "aligned with the VTK data model"; the
Catalyst endpoint's Checkpointing mode writes VTU files.  This package
implements the pieces of that model the workflow touches:

- :class:`DataArray` — a named, typed tuple-component array,
- :class:`UnstructuredGrid` — points + hexahedral cells with point and
  cell data (what the SEM mesh maps to),
- :class:`ImageData` — uniform grids (what resampled render input maps
  to),
- :class:`MultiBlockDataSet` — one block per rank, SENSEI's standard
  distributed layout,

plus standards-conformant writers for ``.vtu``, ``.vti`` and ``.vtm``
XML files (ASCII or appended raw binary encodings readable by
ParaView).
"""

from repro.vtkdata.arrays import DataArray
from repro.vtkdata.dataset import ImageData, UnstructuredGrid, MultiBlockDataSet
from repro.vtkdata.writers import write_vtu, write_vti, write_vtm
from repro.vtkdata.readers import read_vtu, read_vti, read_vtm, VTKReadError

__all__ = [
    "DataArray",
    "ImageData",
    "UnstructuredGrid",
    "MultiBlockDataSet",
    "write_vtu",
    "write_vti",
    "write_vtm",
    "read_vtu",
    "read_vti",
    "read_vtm",
    "VTKReadError",
]
