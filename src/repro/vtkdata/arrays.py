"""Named, typed data arrays (the vtkDataArray analog)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: association of an array with mesh entities
POINT = "point"
CELL = "cell"


@dataclass
class DataArray:
    """A named array of per-point or per-cell tuples.

    `values` is ``(N,)`` for scalars or ``(N, C)`` for C-component
    tuples (e.g. velocity is ``(N, 3)``).
    """

    name: str
    values: np.ndarray
    association: str = POINT

    def __post_init__(self):
        if self.association not in (POINT, CELL):
            raise ValueError(f"association must be point|cell, got {self.association}")
        self.values = np.asarray(self.values)
        if self.values.ndim not in (1, 2):
            raise ValueError(
                f"array {self.name!r} must be 1-D or 2-D, got {self.values.ndim}-D"
            )

    @property
    def num_tuples(self) -> int:
        return self.values.shape[0]

    @property
    def num_components(self) -> int:
        return 1 if self.values.ndim == 1 else self.values.shape[1]

    @property
    def nbytes(self) -> int:
        return self.values.nbytes

    def range(self) -> tuple[float, float]:
        """(min, max) over the magnitude for vectors, values for scalars."""
        if self.values.size == 0:
            return (0.0, 0.0)
        if self.values.ndim == 2:
            mag = np.linalg.norm(self.values, axis=1)
            return float(mag.min()), float(mag.max())
        return float(self.values.min()), float(self.values.max())
