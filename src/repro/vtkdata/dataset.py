"""Dataset objects: unstructured grids, image data, multiblock trees."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.vtkdata.arrays import CELL, POINT, DataArray

#: VTK cell type id for linear hexahedra
VTK_HEXAHEDRON = 12


class UnstructuredGrid:
    """Points + hexahedral cells + point/cell data.

    `points` is ``(P, 3)``; `cells` is ``(C, 8)`` point indices in VTK
    hexahedron corner order (bottom quad CCW, then top quad CCW).
    """

    def __init__(self, points: np.ndarray, cells: np.ndarray):
        points = np.asarray(points, dtype=float)
        cells = np.asarray(cells, dtype=np.int64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must be (P, 3), got {points.shape}")
        if cells.ndim != 2 or cells.shape[1] != 8:
            raise ValueError(f"cells must be (C, 8) hexahedra, got {cells.shape}")
        if cells.size and (cells.min() < 0 or cells.max() >= len(points)):
            raise ValueError("cell connectivity references nonexistent points")
        self.points = points
        self.cells = cells
        self.point_data: dict[str, DataArray] = {}
        self.cell_data: dict[str, DataArray] = {}

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def add_array(self, array: DataArray) -> None:
        target = self.point_data if array.association == POINT else self.cell_data
        expected = self.num_points if array.association == POINT else self.num_cells
        if array.num_tuples != expected:
            raise ValueError(
                f"array {array.name!r} has {array.num_tuples} tuples, "
                f"expected {expected} ({array.association}s)"
            )
        target[array.name] = array

    def bounds(self) -> np.ndarray:
        """((xmin, xmax), (ymin, ymax), (zmin, zmax))."""
        if self.num_points == 0:
            return np.zeros((3, 2))
        return np.stack([self.points.min(axis=0), self.points.max(axis=0)], axis=1)

    @property
    def nbytes(self) -> int:
        total = self.points.nbytes + self.cells.nbytes
        total += sum(a.nbytes for a in self.point_data.values())
        total += sum(a.nbytes for a in self.cell_data.values())
        return total


class ImageData:
    """A uniform grid: origin + spacing + dims, with point data.

    `dims` counts points per axis (VTK convention); point data arrays
    are flat, x varying fastest.
    """

    def __init__(
        self,
        dims: tuple[int, int, int],
        origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
        spacing: tuple[float, float, float] = (1.0, 1.0, 1.0),
    ):
        if min(dims) < 1:
            raise ValueError(f"dims must be >= 1, got {dims}")
        if min(spacing) <= 0:
            raise ValueError(f"spacing must be positive, got {spacing}")
        self.dims = tuple(int(d) for d in dims)
        self.origin = tuple(float(o) for o in origin)
        self.spacing = tuple(float(s) for s in spacing)
        self.point_data: dict[str, DataArray] = {}

    @property
    def num_points(self) -> int:
        nx, ny, nz = self.dims
        return nx * ny * nz

    @property
    def num_cells(self) -> int:
        nx, ny, nz = self.dims
        return max(nx - 1, 1) * max(ny - 1, 1) * max(nz - 1, 1)

    def add_array(self, array: DataArray) -> None:
        if array.association != POINT:
            raise ValueError("ImageData here carries point data only")
        if array.num_tuples != self.num_points:
            raise ValueError(
                f"array {array.name!r} has {array.num_tuples} tuples, "
                f"expected {self.num_points}"
            )
        self.point_data[array.name] = array

    def as_volume(self, name: str) -> np.ndarray:
        """Return a point array reshaped (nz, ny, nx)."""
        arr = self.point_data[name]
        nx, ny, nz = self.dims
        return arr.values.reshape(nz, ny, nx)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self.point_data.values())


@dataclass
class MultiBlockDataSet:
    """A flat list of blocks, one per producing rank (SENSEI's layout).

    Blocks owned by other ranks are ``None`` locally.
    """

    blocks: list = field(default_factory=list)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def set_block(self, index: int, block) -> None:
        while len(self.blocks) <= index:
            self.blocks.append(None)
        self.blocks[index] = block

    def get_block(self, index: int):
        return self.blocks[index]

    def local_blocks(self) -> list:
        return [b for b in self.blocks if b is not None]

    @property
    def nbytes(self) -> int:
        return sum(b.nbytes for b in self.local_blocks())
