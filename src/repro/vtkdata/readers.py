"""Readers for the VTK XML files this stack writes.

The endpoint's VTU/VTI output is only trustworthy if it parses back;
these readers load the subset of the VTK XML formats the writers emit
(ascii and appended-raw encodings, linear hexahedra, point/cell data)
so tests — and posthoc tooling — can round-trip every artifact.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

import numpy as np

from repro.vtkdata.arrays import CELL, POINT, DataArray
from repro.vtkdata.dataset import ImageData, UnstructuredGrid

_NP_TYPES = {
    "Float64": np.float64,
    "Float32": np.float32,
    "Int64": np.int64,
    "Int32": np.int32,
    "UInt8": np.uint8,
}


class VTKReadError(ValueError):
    """Malformed or unsupported VTK XML content."""


def _split_document(raw: bytes) -> tuple[ET.Element, bytes | None]:
    """Parse the XML part; return (root, appended raw bytes or None).

    Appended-raw sections are not valid XML, so the document is split
    at the AppendedData marker before parsing.
    """
    marker = raw.find(b'<AppendedData encoding="raw">')
    if marker < 0:
        return ET.fromstring(raw), None
    underscore = raw.index(b"_", marker)
    end = raw.rindex(b"</AppendedData>")
    appended = raw[underscore + 1 : end].rstrip(b"\n")
    xml_text = raw[:marker] + b"</VTKFile>"
    return ET.fromstring(xml_text), appended


def _read_data_array(
    elem: ET.Element, appended: bytes | None
) -> tuple[str, np.ndarray]:
    name = elem.get("Name", "")
    dtype = _NP_TYPES.get(elem.get("type", ""))
    if dtype is None:
        raise VTKReadError(f"unsupported DataArray type {elem.get('type')!r}")
    ncomp = int(elem.get("NumberOfComponents", "1"))
    fmt = elem.get("format", "ascii")
    if fmt == "ascii":
        text = elem.text or ""
        flat = np.array(text.split(), dtype=dtype)
    elif fmt == "appended":
        if appended is None:
            raise VTKReadError("appended DataArray but no AppendedData section")
        offset = int(elem.get("offset", "0"))
        (nbytes,) = np.frombuffer(appended[offset : offset + 4], dtype=np.uint32)
        start = offset + 4
        flat = np.frombuffer(appended[start : start + int(nbytes)], dtype=dtype).copy()
    else:
        raise VTKReadError(f"unsupported DataArray format {fmt!r}")
    if ncomp > 1:
        flat = flat.reshape(-1, ncomp)
    return name, flat


def _attach_field_data(piece: ET.Element, target, appended: bytes | None) -> None:
    for section, assoc in (("PointData", POINT), ("CellData", CELL)):
        sec = piece.find(section)
        if sec is None:
            continue
        for da in sec.findall("DataArray"):
            name, values = _read_data_array(da, appended)
            target.add_array(DataArray(name, values, association=assoc))


def read_vtu(path) -> UnstructuredGrid:
    """Read a .vtu written by :func:`repro.vtkdata.writers.write_vtu`."""
    raw = Path(path).read_bytes()
    root, appended = _split_document(raw)
    if root.get("type") != "UnstructuredGrid":
        raise VTKReadError(f"not an UnstructuredGrid file: {path}")
    piece = root.find("UnstructuredGrid/Piece")
    if piece is None:
        raise VTKReadError("missing <Piece>")
    points_elem = piece.find("Points/DataArray")
    _, points = _read_data_array(points_elem, appended)
    cells = {}
    for da in piece.find("Cells").findall("DataArray"):
        name, values = _read_data_array(da, appended)
        cells[name] = values
    if not (cells["types"] == 12).all():
        raise VTKReadError("reader supports linear hexahedra only")
    connectivity = cells["connectivity"].reshape(-1, 8)
    grid = UnstructuredGrid(points.reshape(-1, 3), connectivity)
    _attach_field_data(piece, grid, appended)
    expected_pts = int(piece.get("NumberOfPoints", grid.num_points))
    if grid.num_points != expected_pts:
        raise VTKReadError(
            f"point count mismatch: header {expected_pts}, data {grid.num_points}"
        )
    return grid


def read_vti(path) -> ImageData:
    """Read a .vti written by :func:`repro.vtkdata.writers.write_vti`."""
    raw = Path(path).read_bytes()
    root, appended = _split_document(raw)
    if root.get("type") != "ImageData":
        raise VTKReadError(f"not an ImageData file: {path}")
    img_elem = root.find("ImageData")
    extent = [int(v) for v in img_elem.get("WholeExtent", "").split()]
    dims = (extent[1] - extent[0] + 1, extent[3] - extent[2] + 1,
            extent[5] - extent[4] + 1)
    origin = tuple(float(v) for v in img_elem.get("Origin", "0 0 0").split())
    spacing = tuple(float(v) for v in img_elem.get("Spacing", "1 1 1").split())
    image = ImageData(dims, origin=origin, spacing=spacing)
    piece = img_elem.find("Piece")
    if piece is not None:
        _attach_field_data(piece, image, appended)
    return image


def read_vtm(path) -> list[str | None]:
    """Read a .vtm multiblock index: per-block file names (None = empty)."""
    root = ET.fromstring(Path(path).read_bytes())
    if root.get("type") != "vtkMultiBlockDataSet":
        raise VTKReadError(f"not a vtkMultiBlockDataSet file: {path}")
    entries: list[str | None] = []
    for ds in root.find("vtkMultiBlockDataSet").findall("DataSet"):
        index = int(ds.get("index"))
        while len(entries) <= index:
            entries.append(None)
        entries[index] = ds.get("file")
    return entries
