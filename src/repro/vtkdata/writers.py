"""VTK XML file writers (.vtu, .vti, .vtm).

The in transit endpoint's "Checkpointing" mode writes the received
fields as VTU files (Section 4.2), so these writers produce real bytes
on a real filesystem — which is what the storage/overhead accounting
measures.  Files follow the VTK XML formats: ``ascii`` encoding for
debuggability or ``appended`` raw binary (with the little-endian
UInt32 size headers ParaView expects) for realistic sizes.
"""

from __future__ import annotations

import io
from pathlib import Path
from xml.sax.saxutils import quoteattr

import numpy as np

from repro.vtkdata.arrays import DataArray
from repro.vtkdata.dataset import VTK_HEXAHEDRON, ImageData, UnstructuredGrid

_VTK_TYPES = {
    np.dtype(np.float64): "Float64",
    np.dtype(np.float32): "Float32",
    np.dtype(np.int64): "Int64",
    np.dtype(np.int32): "Int32",
    np.dtype(np.uint8): "UInt8",
}


def _vtk_type(arr: np.ndarray) -> str:
    try:
        return _VTK_TYPES[arr.dtype]
    except KeyError:
        raise TypeError(f"unsupported dtype for VTK output: {arr.dtype}") from None


class _Appended:
    """Accumulates appended-mode binary blocks and their offsets."""

    def __init__(self) -> None:
        self.buf = io.BytesIO()

    def add(self, arr: np.ndarray) -> int:
        offset = self.buf.tell()
        raw = np.ascontiguousarray(arr).tobytes()
        self.buf.write(np.uint32(len(raw)).tobytes())
        self.buf.write(raw)
        return offset


def _data_array_xml(
    name: str,
    arr: np.ndarray,
    encoding: str,
    appended: _Appended | None,
) -> str:
    ncomp = 1 if arr.ndim == 1 else arr.shape[1]
    attrs = f'type="{_vtk_type(arr)}" Name={quoteattr(name)}'
    if ncomp > 1:
        attrs += f' NumberOfComponents="{ncomp}"'
    if encoding == "ascii":
        flat = np.asarray(arr).ravel()
        if flat.dtype.kind == "f":
            body = " ".join(f"{v:.9g}" for v in flat)
        else:
            body = " ".join(str(v) for v in flat)
        return f'<DataArray {attrs} format="ascii">{body}</DataArray>'
    assert appended is not None
    offset = appended.add(arr)
    return f'<DataArray {attrs} format="appended" offset="{offset}"/>'


def _field_data_xml(
    point_data: dict[str, DataArray],
    cell_data: dict[str, DataArray],
    encoding: str,
    appended: _Appended | None,
) -> list[str]:
    parts = []
    parts.append("<PointData>")
    for name, array in point_data.items():
        parts.append(_data_array_xml(name, array.values, encoding, appended))
    parts.append("</PointData>")
    parts.append("<CellData>")
    for name, array in cell_data.items():
        parts.append(_data_array_xml(name, array.values, encoding, appended))
    parts.append("</CellData>")
    return parts


def _write_vtkfile(path: Path, file_type: str, body: list[str], appended: _Appended) -> int:
    parts = ['<?xml version="1.0"?>']
    parts.append(
        f'<VTKFile type="{file_type}" version="1.0" '
        'byte_order="LittleEndian" header_type="UInt32">'
    )
    parts.extend(body)
    raw = appended.buf.getvalue()
    footer = []
    if raw:
        footer.append('<AppendedData encoding="raw">')
    parts.extend(footer)
    head = "\n".join(parts).encode()
    tail = b"\n</AppendedData>\n</VTKFile>\n" if raw else b"\n</VTKFile>\n"
    payload = head + (b"\n_" + raw if raw else b"") + tail
    path.write_bytes(payload)
    return len(payload)


def write_vtu(path, grid: UnstructuredGrid, encoding: str = "appended") -> int:
    """Write an UnstructuredGrid as .vtu; returns bytes written."""
    if encoding not in ("ascii", "appended"):
        raise ValueError(f"encoding must be ascii|appended, got {encoding}")
    path = Path(path)
    appended = _Appended()
    n_pts, n_cells = grid.num_points, grid.num_cells
    connectivity = grid.cells.astype(np.int64)
    offsets = (np.arange(1, n_cells + 1, dtype=np.int64)) * 8
    types = np.full(n_cells, VTK_HEXAHEDRON, dtype=np.uint8)

    body = ["<UnstructuredGrid>"]
    body.append(f'<Piece NumberOfPoints="{n_pts}" NumberOfCells="{n_cells}">')
    body.extend(_field_data_xml(grid.point_data, grid.cell_data, encoding, appended))
    body.append("<Points>")
    body.append(_data_array_xml("Points", grid.points, encoding, appended))
    body.append("</Points>")
    body.append("<Cells>")
    body.append(_data_array_xml("connectivity", connectivity.ravel(), encoding, appended))
    body.append(_data_array_xml("offsets", offsets, encoding, appended))
    body.append(_data_array_xml("types", types, encoding, appended))
    body.append("</Cells>")
    body.append("</Piece>")
    body.append("</UnstructuredGrid>")
    return _write_vtkfile(path, "UnstructuredGrid", body, appended)


def write_vti(path, image: ImageData, encoding: str = "appended") -> int:
    """Write an ImageData as .vti; returns bytes written."""
    if encoding not in ("ascii", "appended"):
        raise ValueError(f"encoding must be ascii|appended, got {encoding}")
    path = Path(path)
    appended = _Appended()
    nx, ny, nz = image.dims
    extent = f"0 {nx - 1} 0 {ny - 1} 0 {nz - 1}"
    origin = " ".join(f"{v:.9g}" for v in image.origin)
    spacing = " ".join(f"{v:.9g}" for v in image.spacing)
    body = [
        f'<ImageData WholeExtent="{extent}" Origin="{origin}" Spacing="{spacing}">',
        f'<Piece Extent="{extent}">',
    ]
    body.extend(_field_data_xml(image.point_data, {}, encoding, appended))
    body.append("</Piece>")
    body.append("</ImageData>")
    return _write_vtkfile(path, "ImageData", body, appended)


def write_vtm(path, block_files: list[str | None]) -> int:
    """Write a .vtm multiblock index referencing per-block files.

    `block_files[i]` is the (relative) filename of block i or None for
    an empty block.
    """
    path = Path(path)
    parts = ['<?xml version="1.0"?>']
    parts.append(
        '<VTKFile type="vtkMultiBlockDataSet" version="1.0" '
        'byte_order="LittleEndian">'
    )
    parts.append("<vtkMultiBlockDataSet>")
    for i, name in enumerate(block_files):
        if name is None:
            parts.append(f'<DataSet index="{i}"/>')
        else:
            parts.append(f'<DataSet index="{i}" file={quoteattr(str(name))}/>')
    parts.append("</vtkMultiBlockDataSet>")
    parts.append("</VTKFile>")
    payload = "\n".join(parts).encode() + b"\n"
    path.write_bytes(payload)
    return len(payload)
