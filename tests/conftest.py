"""Shared fixtures for the test suite, plus a deadlock watchdog.

The fault-tolerance work injects stalls and crashes into the threaded
SPMD world; a regression there hangs rather than fails.  When
``pytest-timeout`` is installed it owns the per-test timeout; when it
is not (this container does not ship it), a ``faulthandler``-based
watchdog aborts the run with full thread tracebacks once a single test
exceeds its budget — failing fast instead of wedging tier-1.
Override per test with ``@pytest.mark.timeout(seconds)``.
"""

from __future__ import annotations

import faulthandler
import sys
import threading

import numpy as np
import pytest

from repro.parallel import SerialCommunicator
from repro.parallel.runtime import dump_thread_stacks

#: generous default so only genuine deadlocks trip it
_DEFAULT_TEST_TIMEOUT = 300.0


def pytest_collection_modifyitems(items):
    # every test in the device-render module carries the `device`
    # marker, so `-m device` selects the whole residency suite even if
    # a new test class forgets the module-level pytestmark
    for item in items:
        if "test_device_render" in str(item.fspath):
            item.add_marker(pytest.mark.device)
        # same deal for the relay-mesh suite: `-m mesh` selects every
        # test in the module, and the deadlock watchdog above covers the
        # threaded relay pumps like any other test
        if "test_serve_mesh" in str(item.fspath):
            item.add_marker(pytest.mark.mesh)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if item.config.pluginmanager.hasplugin("timeout"):
        yield  # pytest-timeout is installed and handles the marker
        return
    marker = item.get_closest_marker("timeout")
    seconds = _DEFAULT_TEST_TIMEOUT
    if marker is not None and marker.args:
        seconds = float(marker.args[0])

    # two-stage watchdog: at the budget, dump every thread's stack
    # (named spmd-rank-N threads make the stuck collective obvious);
    # shortly after, faulthandler hard-aborts the wedged run
    def _on_timeout():
        sys.stderr.write(
            f"\n[watchdog] test {item.nodeid!r} exceeded {seconds:g}s; "
            "dumping all thread stacks before abort\n"
        )
        dump_thread_stacks(sys.stderr)

    stack_timer = threading.Timer(seconds, _on_timeout)
    stack_timer.daemon = True
    stack_timer.start()
    faulthandler.dump_traceback_later(seconds + 5.0, exit=True)
    try:
        yield
    finally:
        stack_timer.cancel()
        faulthandler.cancel_dump_traceback_later()


@pytest.fixture(autouse=True)
def _serve_event_loop_guard():
    """No asyncio serving loop may outlive its test.

    The HTTP frame server runs its event loop on a daemon thread; a
    test that forgets to stop one would leak the loop (and its
    executor threads) into every later test.  Only consults the
    transport module when a test actually imported it, so the guard is
    free for the rest of the suite.
    """
    yield
    if "repro.serve.transport" in sys.modules:
        from repro.serve import transport

        leaked = transport.shutdown_all(timeout=5.0)
        assert not leaked, f"serving event loops leaked by test: {leaked}"


@pytest.fixture
def comm():
    """A single-rank communicator."""
    return SerialCommunicator()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def tiny_cavity_case():
    """The smallest meaningful solver case (fast enough for unit tests)."""
    from repro.nekrs.cases import lid_cavity_case

    return lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3, num_steps=3)


@pytest.fixture
def tiny_solver(tiny_cavity_case, comm):
    from repro.nekrs import NekRSSolver

    return NekRSSolver(tiny_cavity_case, comm)
