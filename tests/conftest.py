"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import SerialCommunicator


@pytest.fixture
def comm():
    """A single-rank communicator."""
    return SerialCommunicator()


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def tiny_cavity_case():
    """The smallest meaningful solver case (fast enough for unit tests)."""
    from repro.nekrs.cases import lid_cavity_case

    return lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3, num_steps=3)


@pytest.fixture
def tiny_solver(tiny_cavity_case, comm):
    from repro.nekrs import NekRSSolver

    return NekRSSolver(tiny_cavity_case, comm)
