"""Tests for BP marshaling, SST streaming, and BPFile engines."""

import threading

import numpy as np
import pytest

from repro.adios import (
    ADIOS,
    BPFileReaderEngine,
    BPFileWriterEngine,
    EndOfStream,
    SSTBroker,
    SSTReaderEngine,
    SSTWriterEngine,
    StepPayload,
    StepStatus,
    marshal_step,
    unmarshal_step,
)


class TestMarshal:
    def test_roundtrip(self, rng):
        payload = StepPayload(
            step=42, time=1.25, rank=3,
            variables={
                "u": rng.normal(size=(2, 3, 4)),
                "ids": np.arange(5, dtype=np.int64),
                "img": rng.integers(0, 255, size=(4, 4), dtype=np.uint8),
            },
            attributes={"mesh": "uniform", "extra": "{}"},
        )
        out = unmarshal_step(marshal_step(payload))
        assert out.step == 42 and out.time == 1.25 and out.rank == 3
        assert out.attributes == payload.attributes
        assert set(out.variables) == set(payload.variables)
        for k in payload.variables:
            np.testing.assert_array_equal(out.variables[k], payload.variables[k])
            assert out.variables[k].dtype == payload.variables[k].dtype

    def test_empty_variables(self):
        out = unmarshal_step(marshal_step(StepPayload(0, 0.0, 0)))
        assert out.variables == {}

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            unmarshal_step(b"nope" + b"\x00" * 40)

    def test_trailing_bytes_rejected(self):
        data = marshal_step(StepPayload(0, 0.0, 0))
        with pytest.raises(ValueError, match="trailing"):
            unmarshal_step(data + b"x")

    def test_unsupported_dtype(self):
        payload = StepPayload(0, 0.0, 0, {"c": np.zeros(2, dtype=complex)})
        with pytest.raises(TypeError):
            marshal_step(payload)

    def test_nbytes(self):
        p = StepPayload(0, 0.0, 0, {"u": np.zeros(10)})
        assert p.nbytes == 80


class TestSSTBroker:
    def test_put_get_order(self):
        broker = SSTBroker(num_writers=1, queue_limit=4)
        broker.put(0, b"step0")
        broker.put(0, b"step1")
        assert broker.get(0) == b"step0"
        assert broker.get(0) == b"step1"

    def test_end_of_stream(self):
        broker = SSTBroker(num_writers=1)
        broker.close_writer(0)
        with pytest.raises(EndOfStream):
            broker.get(0)

    def test_discard_policy_drops_oldest(self):
        broker = SSTBroker(num_writers=1, queue_limit=2, queue_full_policy="Discard")
        for i in range(5):
            broker.put(0, f"s{i}".encode())
        assert broker.stats.steps_discarded == 3
        assert broker.get(0) == b"s3"
        assert broker.get(0) == b"s4"

    def test_block_policy_backpressure(self):
        broker = SSTBroker(num_writers=1, queue_limit=1, timeout=5.0)
        broker.put(0, b"a")
        unblocked = threading.Event()

        def writer():
            broker.put(0, b"b")   # blocks until reader drains
            unblocked.set()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        assert not unblocked.wait(timeout=0.2)
        assert broker.get(0) == b"a"
        assert unblocked.wait(timeout=5.0)
        t.join()

    def test_stats_bytes(self):
        broker = SSTBroker(num_writers=2)
        broker.put(0, b"xxxx")
        broker.put(1, b"yy")
        broker.get(0)
        assert broker.stats.bytes_put == 6
        assert broker.stats.bytes_got == 4

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SSTBroker(0)
        with pytest.raises(ValueError):
            SSTBroker(1, queue_limit=0)
        with pytest.raises(ValueError):
            SSTBroker(1, queue_full_policy="Panic")


class TestSSTEngines:
    def test_writer_reader_roundtrip(self, rng):
        broker = SSTBroker(num_writers=2)
        writers = [SSTWriterEngine("s", broker, w) for w in range(2)]
        reader = SSTReaderEngine("s", broker, writer_ranks=[0, 1])

        data = {w: rng.normal(size=4) for w in range(2)}
        for w, eng in enumerate(writers):
            eng.set_step_info(1, 0.5)
            eng.begin_step()
            eng.put("field", data[w])
            eng.put_attribute("who", f"writer{w}")
            eng.end_step()

        assert reader.begin_step() is StepStatus.OK
        payloads = reader.payloads()
        assert set(payloads) == {0, 1}
        for w in range(2):
            np.testing.assert_array_equal(payloads[w].variables["field"], data[w])
            assert payloads[w].attributes["who"] == f"writer{w}"
            assert payloads[w].step == 1
        reader.end_step()

    def test_reader_sees_end_of_stream(self):
        broker = SSTBroker(num_writers=1)
        writer = SSTWriterEngine("s", broker, 0)
        reader = SSTReaderEngine("s", broker, [0])
        writer.begin_step()
        writer.put("x", np.zeros(1))
        writer.end_step()
        writer.close()
        assert reader.begin_step() is StepStatus.OK
        reader.end_step()
        assert reader.begin_step() is StepStatus.END_OF_STREAM

    def test_put_outside_step_raises(self):
        broker = SSTBroker(num_writers=1)
        writer = SSTWriterEngine("s", broker, 0)
        with pytest.raises(RuntimeError):
            writer.put("x", np.zeros(1))

    def test_double_begin_step_raises(self):
        broker = SSTBroker(num_writers=1)
        writer = SSTWriterEngine("s", broker, 0)
        writer.begin_step()
        with pytest.raises(RuntimeError):
            writer.begin_step()

    def test_closed_engine_rejects_steps(self):
        broker = SSTBroker(num_writers=1)
        writer = SSTWriterEngine("s", broker, 0)
        writer.close()
        with pytest.raises(RuntimeError):
            writer.begin_step()

    def test_get_specific_writer(self):
        broker = SSTBroker(num_writers=1)
        writer = SSTWriterEngine("s", broker, 0)
        reader = SSTReaderEngine("s", broker, [0])
        writer.begin_step()
        writer.put("x", np.arange(3.0))
        writer.end_step()
        reader.begin_step()
        np.testing.assert_array_equal(reader.get(0).variables["x"], [0, 1, 2])


class TestBPFileEngines:
    def test_file_roundtrip(self, tmp_path, rng):
        writer = BPFileWriterEngine("run", tmp_path, writer_rank=2)
        for step in (1, 2):
            writer.set_step_info(step, step * 0.1)
            writer.begin_step()
            writer.put("u", rng.normal(size=3))
            writer.end_step()
        assert writer.bytes_written > 0
        assert len(list(tmp_path.glob("*.bp"))) == 2

        reader = BPFileReaderEngine("run", tmp_path, writer_rank=2)
        assert reader.begin_step() is StepStatus.OK
        assert reader.get().step == 1
        reader.end_step()
        assert reader.begin_step() is StepStatus.OK
        assert reader.get().step == 2
        reader.end_step()
        assert reader.begin_step() is StepStatus.END_OF_STREAM

    def test_rank_separation(self, tmp_path):
        for rank in (0, 1):
            w = BPFileWriterEngine("run", tmp_path, writer_rank=rank)
            w.begin_step()
            w.put("r", np.array([float(rank)]))
            w.end_step()
        r1 = BPFileReaderEngine("run", tmp_path, writer_rank=1)
        r1.begin_step()
        np.testing.assert_array_equal(r1.get().variables["r"], [1.0])


class TestADIOSApi:
    def test_declare_and_open(self, tmp_path):
        adios = ADIOS()
        io = adios.declare_io("sim")
        io.set_engine("BPFile")
        io.set_parameters({"directory": str(tmp_path)})
        engine = io.open("out", "w")
        assert isinstance(engine, BPFileWriterEngine)
        assert adios.at_io("sim") is io

    def test_duplicate_io_raises(self):
        adios = ADIOS()
        adios.declare_io("x")
        with pytest.raises(ValueError):
            adios.declare_io("x")

    def test_sst_requires_broker(self):
        io = ADIOS().declare_io("s")
        with pytest.raises(ValueError, match="broker"):
            io.open("x", "w")

    def test_sst_open(self):
        io = ADIOS().declare_io("s")
        broker = SSTBroker(num_writers=1)
        w = io.open("x", "w", broker=broker, writer_rank=0)
        r = io.open("x", "r", broker=broker, writer_ranks=[0])
        assert isinstance(w, SSTWriterEngine)
        assert isinstance(r, SSTReaderEngine)

    def test_unknown_engine(self):
        io = ADIOS().declare_io("s")
        with pytest.raises(ValueError):
            io.set_engine("HDF5")

    def test_bad_mode(self):
        io = ADIOS().declare_io("s")
        with pytest.raises(ValueError):
            io.open("x", "a")
