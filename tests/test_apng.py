"""Tests for APNG assembly."""

import numpy as np
import pytest

from repro.util.apng import apng_info, assemble_apng, write_apng
from repro.util.png import decode_png


def _frames(n=3, h=8, w=8):
    frames = []
    for i in range(n):
        f = np.zeros((h, w, 3), dtype=np.uint8)
        f[:, :, 0] = i * 40
        frames.append(f)
    return frames


class TestAssemble:
    def test_structure(self):
        data = assemble_apng(_frames(3), delay_ms=50, loops=2)
        info = apng_info(data)
        assert info["frames"] == 3
        assert info["loops"] == 2
        assert info["fctl_count"] == 3
        assert info["fdat_count"] == 2     # all frames after the first
        assert info["width"] == 8 and info["height"] == 8

    def test_single_frame(self):
        data = assemble_apng(_frames(1))
        info = apng_info(data)
        assert info["frames"] == 1
        assert info["fdat_count"] == 0

    def test_default_image_decodes_as_first_frame(self):
        frames = _frames(3)
        data = assemble_apng(frames)
        np.testing.assert_array_equal(decode_png(data), frames[0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            assemble_apng([])

    def test_shape_mismatch_rejected(self):
        frames = _frames(2) + [np.zeros((4, 4, 3), dtype=np.uint8)]
        with pytest.raises(ValueError):
            assemble_apng(frames)

    def test_bad_delay(self):
        with pytest.raises(ValueError):
            assemble_apng(_frames(2), delay_ms=0)

    def test_grayscale_frames(self):
        frames = [np.full((6, 6), i * 60, dtype=np.uint8) for i in range(3)]
        info = apng_info(assemble_apng(frames))
        assert info["frames"] == 3

    def test_not_animated_detected(self):
        from repro.util.png import encode_png

        with pytest.raises(ValueError, match="acTL"):
            apng_info(encode_png(_frames(1)[0]))


class TestWrite:
    def test_write_returns_size(self, tmp_path):
        path = tmp_path / "movie.apng"
        n = write_apng(path, _frames(2))
        assert path.stat().st_size == n

    def test_movie_pipeline_emits_apng(self, tmp_path):
        """render_series with multiple dumps produces an .apng."""
        from repro.nekrs import NekRSSolver
        from repro.nekrs.cases import lid_cavity_case
        from repro.nekrs.checkpoint import write_checkpoint
        from repro.parallel import SerialCommunicator
        from repro.posthoc import FldSeries, render_series

        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        solver = NekRSSolver(case, SerialCommunicator())
        for _ in range(2):
            r = solver.step()
            write_checkpoint(
                tmp_path, case.name, r.step, r.time, 0, 1,
                {"velocity_x": solver.u, "pressure": solver.p},
            )
        series = FldSeries.discover(tmp_path)
        outputs = render_series(
            series, case, tmp_path / "frames",
            arrays=("velocity_x",), width=64, height=64,
        )
        apngs = [p for p in outputs if p.suffix == ".apng"]
        assert len(apngs) == 1
        info = apng_info(apngs[0].read_bytes())
        assert info["frames"] == 2
