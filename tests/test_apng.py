"""Tests for APNG assembly."""

import io

import numpy as np
import pytest

from repro.util.apng import ApngWriter, apng_info, assemble_apng, write_apng
from repro.util.png import decode_png, encode_png


def _frames(n=3, h=8, w=8):
    frames = []
    for i in range(n):
        f = np.zeros((h, w, 3), dtype=np.uint8)
        f[:, :, 0] = i * 40
        frames.append(f)
    return frames


class TestAssemble:
    def test_structure(self):
        data = assemble_apng(_frames(3), delay_ms=50, loops=2)
        info = apng_info(data)
        assert info["frames"] == 3
        assert info["loops"] == 2
        assert info["fctl_count"] == 3
        assert info["fdat_count"] == 2     # all frames after the first
        assert info["width"] == 8 and info["height"] == 8

    def test_single_frame(self):
        data = assemble_apng(_frames(1))
        info = apng_info(data)
        assert info["frames"] == 1
        assert info["fdat_count"] == 0

    def test_default_image_decodes_as_first_frame(self):
        frames = _frames(3)
        data = assemble_apng(frames)
        np.testing.assert_array_equal(decode_png(data), frames[0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            assemble_apng([])

    def test_shape_mismatch_rejected(self):
        frames = _frames(2) + [np.zeros((4, 4, 3), dtype=np.uint8)]
        with pytest.raises(ValueError):
            assemble_apng(frames)

    def test_bad_delay(self):
        with pytest.raises(ValueError):
            assemble_apng(_frames(2), delay_ms=0)

    def test_grayscale_frames(self):
        frames = [np.full((6, 6), i * 60, dtype=np.uint8) for i in range(3)]
        info = apng_info(assemble_apng(frames))
        assert info["frames"] == 3

    def test_not_animated_detected(self):
        with pytest.raises(ValueError, match="acTL"):
            apng_info(encode_png(_frames(1)[0]))


class TestWriter:
    """The incremental form: open -> add_frame/add_encoded -> close."""

    def test_matches_one_shot_assembly(self):
        frames = _frames(4)
        buf = io.BytesIO()
        with ApngWriter(buf, delay_ms=50, loops=2) as w:
            for f in frames:
                w.add_frame(f)
        assert buf.getvalue() == assemble_apng(frames, delay_ms=50, loops=2)

    def test_add_encoded_splices_without_reencoding(self):
        frames = _frames(3)
        buf = io.BytesIO()
        with ApngWriter(buf) as w:
            for f in frames:
                w.add_encoded(encode_png(f))
        assert buf.getvalue() == assemble_apng(frames)

    def test_frame_count_patched_on_close(self):
        buf = io.BytesIO()
        w = ApngWriter(buf)
        for f in _frames(5):
            w.add_frame(f)
        w.close()
        assert apng_info(buf.getvalue())["frames"] == 5

    def test_writes_to_path(self, tmp_path):
        path = tmp_path / "w.apng"
        with ApngWriter(path) as w:
            for f in _frames(2):
                w.add_frame(f)
        info = apng_info(path.read_bytes())
        assert info["frames"] == 2

    def test_close_returns_bytes_written(self, tmp_path):
        path = tmp_path / "w.apng"
        w = ApngWriter(path)
        w.add_frame(_frames(1)[0])
        n = w.close()
        assert path.stat().st_size == n

    def test_no_frames_rejected(self):
        w = ApngWriter(io.BytesIO())
        with pytest.raises(ValueError, match="at least one frame"):
            w.close()

    def test_add_after_close_rejected(self):
        w = ApngWriter(io.BytesIO())
        w.add_frame(_frames(1)[0])
        w.close()
        with pytest.raises(ValueError, match="closed"):
            w.add_frame(_frames(1)[0])

    def test_shape_mismatch_rejected(self):
        w = ApngWriter(io.BytesIO())
        w.add_frame(np.zeros((8, 8, 3), dtype=np.uint8))
        with pytest.raises(ValueError, match="IHDR mismatch"):
            w.add_frame(np.zeros((4, 4, 3), dtype=np.uint8))

    def test_non_png_bytes_rejected(self):
        w = ApngWriter(io.BytesIO())
        with pytest.raises(ValueError, match="PNG bytes"):
            w.add_encoded(b"not a png at all")


class TestAwkwardGeometries:
    """Degenerate and odd shapes that stress stride/filter handling."""

    @pytest.mark.parametrize(
        "shape",
        [(1, 1), (1, 7), (7, 1), (3, 5), (1, 1, 3), (1, 9, 3),
         (9, 1, 3), (5, 13, 3), (1, 1, 4), (3, 7, 4)],
        ids=str,
    )
    def test_png_roundtrip(self, shape):
        rng = np.random.default_rng(sum(shape))
        img = rng.integers(0, 256, size=shape, dtype=np.uint8)
        out = decode_png(encode_png(img))
        np.testing.assert_array_equal(out, img.reshape(out.shape))

    @pytest.mark.parametrize("shape", [(1, 1, 3), (1, 5, 3), (5, 1, 3)], ids=str)
    def test_apng_structure(self, shape):
        frames = [
            np.full(shape, i * 30, dtype=np.uint8) for i in range(4)
        ]
        info = apng_info(assemble_apng(frames))
        assert info["frames"] == 4
        assert (info["width"], info["height"]) == (shape[1], shape[0])

    def test_fdat_sequence_numbers_exceed_a_byte(self):
        """>255 frames: fdAT sequence numbers must be real 32-bit ints.

        With N frames there are N fcTL + (N-1) fdAT chunks sharing one
        sequence-number space, so the last fdAT carries 2N - 2.
        """
        n = 260
        frames = [
            np.array([[[i % 256, 0, 0]]], dtype=np.uint8) for i in range(n)
        ]
        info = apng_info(assemble_apng(frames, delay_ms=1))
        assert info["frames"] == n
        assert info["fdat_count"] == n - 1
        seqs = info["fdat_sequences"]
        assert seqs == sorted(seqs)
        assert seqs[-1] == 2 * n - 2
        assert seqs[-1] > 255


class TestWrite:
    def test_write_returns_size(self, tmp_path):
        path = tmp_path / "movie.apng"
        n = write_apng(path, _frames(2))
        assert path.stat().st_size == n

    def test_movie_pipeline_emits_apng(self, tmp_path):
        """render_series with multiple dumps produces an .apng."""
        from repro.nekrs import NekRSSolver
        from repro.nekrs.cases import lid_cavity_case
        from repro.nekrs.checkpoint import write_checkpoint
        from repro.parallel import SerialCommunicator
        from repro.posthoc import FldSeries, render_series

        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        solver = NekRSSolver(case, SerialCommunicator())
        for _ in range(2):
            r = solver.step()
            write_checkpoint(
                tmp_path, case.name, r.step, r.time, 0, 1,
                {"velocity_x": solver.u, "pressure": solver.p},
            )
        series = FldSeries.discover(tmp_path)
        outputs = render_series(
            series, case, tmp_path / "frames",
            arrays=("velocity_x",), width=64, height=64,
        )
        apngs = [p for p in outputs if p.suffix == ".apng"]
        assert len(apngs) == 1
        info = apng_info(apngs[0].read_bytes())
        assert info["frames"] == 2
