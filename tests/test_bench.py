"""Tests for the measure/replay benchmark harness."""

import math

import pytest

from repro.bench.measure import measure_insitu_profile, measure_intransit_profiles
from repro.bench.replay import (
    PredictedRun,
    ReplayConfig,
    predict_insitu_run,
    predict_intransit_step,
)
from repro.bench.workloads import measurement_pebble_case
from repro.insitu.instrumentation import MemoryModel, RunProfile
from repro.machine import JUWELS_BOOSTER, POLARIS
from repro.nekrs.cases import weak_scaled_rbc_case


@pytest.fixture(scope="module")
def tiny_case():
    return measurement_pebble_case(num_pebbles=2, elements_per_unit=2, order=2,
                                   num_steps=2)


@pytest.fixture(scope="module")
def profiles(tiny_case):
    return {
        mode: measure_insitu_profile(
            tiny_case, mode, ranks=2, steps=2, interval=1, image_size=64,
        )
        for mode in ("original", "checkpoint", "catalyst")
    }


class TestMeasure:
    def test_profile_basics(self, profiles, tiny_case):
        for mode, p in profiles.items():
            assert p.mode == mode
            assert p.ranks == 2
            assert p.steps == 2
            assert p.gridpoints_per_rank > 0
            assert p.solver_seconds_per_step > 0
            assert p.solver_memory_bytes_per_rank > 0

    def test_checkpoint_profile_has_dump_bytes(self, profiles):
        p = profiles["checkpoint"]
        assert p.checkpoint_bytes_per_dump_per_rank > 0
        assert profiles["original"].checkpoint_bytes_per_dump_per_rank == 0

    def test_catalyst_profile_has_render_and_d2h(self, profiles):
        p = profiles["catalyst"]
        assert p.d2h_bytes_per_invocation_per_rank > 0
        assert p.image_bytes_per_invocation > 0
        assert p.render_seconds_per_invocation > 0
        assert p.staging_memory_bytes_per_rank > 0

    def test_invocations(self, profiles):
        assert profiles["catalyst"].invocations == 2

    def test_bad_mode_rejected(self, tiny_case):
        with pytest.raises(ValueError):
            measure_insitu_profile(tiny_case, "psychic", ranks=1, steps=1, interval=1)

    def test_steps_multiple_of_interval(self, tiny_case):
        with pytest.raises(ValueError):
            measure_insitu_profile(tiny_case, "original", ranks=1, steps=3, interval=2)


class TestPredictInsitu:
    def test_ordering_original_checkpoint_catalyst(self, profiles):
        preds = {
            m: predict_insitu_run(profiles[m], POLARIS, 280, 19.8e6)
            for m in profiles
        }
        assert (
            preds["original"].total_seconds
            < preds["checkpoint"].total_seconds
            <= preds["catalyst"].total_seconds * 1.05
        )

    def test_strong_scaling_reduces_time(self, profiles):
        t280 = predict_insitu_run(profiles["original"], POLARIS, 280, 19.8e6)
        t1120 = predict_insitu_run(profiles["original"], POLARIS, 1120, 19.8e6)
        assert t1120.total_seconds < t280.total_seconds

    def test_checkpoint_storage_matches_arithmetic(self, profiles):
        pred = predict_insitu_run(
            profiles["checkpoint"], POLARIS, 280, 19.8e6,
            steps=3000, interval=100, num_checkpoint_fields=4,
        )
        assert pred.storage_bytes == pytest.approx(30 * 4 * 19.8e6 * 8, rel=1e-6)

    def test_storage_economy_three_orders(self, profiles):
        ck = predict_insitu_run(profiles["checkpoint"], POLARIS, 280, 19.8e6)
        cat = predict_insitu_run(profiles["catalyst"], POLARIS, 280, 19.8e6)
        assert cat.storage_bytes > 0
        orders = math.log10(ck.storage_bytes / cat.storage_bytes)
        assert orders > 2.5

    def test_memory_gap_roughly_25_percent(self, profiles):
        ck = predict_insitu_run(profiles["checkpoint"], POLARIS, 280, 19.8e6)
        cat = predict_insitu_run(profiles["catalyst"], POLARIS, 280, 19.8e6)
        ratio = cat.memory_aggregate_bytes / ck.memory_aggregate_bytes
        assert 1.1 < ratio < 1.4

    def test_aggregate_memory_scales_with_ranks(self, profiles):
        p = profiles["catalyst"]
        m280 = predict_insitu_run(p, POLARIS, 280, 19.8e6).memory_aggregate_bytes
        m560 = predict_insitu_run(p, POLARIS, 560, 19.8e6).memory_aggregate_bytes
        assert m560 > 1.8 * m280

    def test_seconds_breakdown_labels(self, profiles):
        pred = predict_insitu_run(profiles["catalyst"], POLARIS, 280, 19.8e6)
        assert {"solve", "collectives", "d2h", "render"} <= set(pred.seconds)

    def test_unknown_mode_raises(self, profiles):
        bad = RunProfile(
            case="x", mode="psychic", ranks=1, steps=1, insitu_interval=1,
            gridpoints_per_rank=10, num_fields=4,
        )
        with pytest.raises(ValueError):
            predict_insitu_run(bad, POLARIS, 8, 1e4)


class TestDeviceResidentReplay:
    @pytest.fixture(scope="class")
    def device_profile(self, tiny_case):
        return measure_insitu_profile(
            tiny_case, "catalyst_device", ranks=2, steps=2, interval=1,
            image_size=64,
        )

    def test_no_staging_term(self, device_profile):
        pred = predict_insitu_run(device_profile, POLARIS, 280, 19.8e6)
        assert "staging" not in pred.seconds
        assert {"solve", "collectives", "d2h", "render", "compositing"} <= set(
            pred.seconds
        )

    def test_d2h_constant_under_strong_scaling(self, device_profile):
        """The tile transfer is the same at every rank count — it is
        not a function of gridpoints per rank."""
        d280 = predict_insitu_run(device_profile, POLARIS, 280, 19.8e6)
        d1120 = predict_insitu_run(device_profile, POLARIS, 1120, 19.8e6)
        assert d280.seconds["d2h"] == d1120.seconds["d2h"]

    def test_overhead_below_host_catalyst(self, profiles, device_profile):
        base = predict_insitu_run(profiles["original"], POLARIS, 1120, 19.8e6)
        cat = predict_insitu_run(profiles["catalyst"], POLARIS, 1120, 19.8e6)
        dev = predict_insitu_run(device_profile, POLARIS, 1120, 19.8e6)
        host_over = cat.total_seconds - base.total_seconds
        dev_over = dev.total_seconds - base.total_seconds
        assert 0 < dev_over < host_over

    def test_memory_drops_host_staging(self, profiles, device_profile):
        cat = predict_insitu_run(profiles["catalyst"], POLARIS, 280, 19.8e6)
        dev = predict_insitu_run(device_profile, POLARIS, 280, 19.8e6)
        assert dev.memory_per_rank_bytes < cat.memory_per_rank_bytes


class TestPredictInTransit:
    @pytest.fixture(scope="class")
    def it_profiles(self):
        def builder(nsim):
            c = weak_scaled_rbc_case(nsim, elements_per_rank=4, order=2, dt=1e-3)
            return c.with_overrides(num_steps=2)

        return {
            mode: measure_intransit_profiles(
                builder, mode, total_ranks=3, steps=2, ratio=2, image_size=48,
            )
            for mode in ("none", "checkpoint", "catalyst")
        }

    def test_weak_scaling_flat(self, it_profiles):
        p = it_profiles["catalyst"]["simulation"]
        t16 = predict_intransit_step(p, JUWELS_BOOSTER, 16).seconds_per_step
        t1024 = predict_intransit_step(p, JUWELS_BOOSTER, 1024).seconds_per_step
        assert t1024 < 1.1 * t16  # flat to within 10%

    def test_transport_modes_cost_more_than_none(self, it_profiles):
        t = {
            m: predict_intransit_step(
                it_profiles[m]["simulation"], JUWELS_BOOSTER, 64
            ).seconds_per_step
            for m in it_profiles
        }
        assert t["none"] < t["checkpoint"]
        assert t["none"] < t["catalyst"]

    def test_memory_none_close_to_catalyst(self, it_profiles):
        m = {
            mode: predict_intransit_step(
                it_profiles[mode]["simulation"], JUWELS_BOOSTER, 64
            ).memory_per_node_bytes(4)
            for mode in it_profiles
        }
        assert m["none"] < m["catalyst"] < m["checkpoint"]
        assert m["catalyst"] < 1.5 * m["none"]

    def test_endpoint_stats_present(self, it_profiles):
        end = it_profiles["catalyst"]["endpoint"]
        assert end["images"] > 0
        assert end["steps"] == 2


class TestMemoryModel:
    def test_total_and_aggregation(self):
        m = MemoryModel(solver=100, staging=20, transport=5, render=10)
        assert m.total == 135
        assert m.per_node(4) == 540
        assert m.aggregate(280) == 135 * 280


class TestPredictedRun:
    def test_totals(self):
        pred = PredictedRun(
            mode="original", cluster="Polaris", ranks=8, nodes=2,
            steps=10, interval=5,
            seconds={"solve": 1.0, "collectives": 0.5},
            memory_per_rank_bytes=100,
        )
        assert pred.total_seconds == 1.5
        assert pred.seconds_per_step == 0.15
        assert pred.memory_aggregate_bytes == 800
        assert pred.memory_per_node_bytes(4) == 400
