"""Tests for the fleet bench (time-to-recover + elastic weak scaling)."""

from __future__ import annotations

import pytest

from repro.bench import fleet as bench_fleet
from repro.perf.config import naive_mode

pytestmark = pytest.mark.fleet


class TestRecoveryScenario:
    def test_fleet_path_recovers_every_step(self):
        out = bench_fleet._run_fleet_recovery()
        assert out["committed"] == out["expected"]
        assert out["degraded"] == 0
        assert out["crashes_detected"] == 1
        assert out["streams_moved"] >= 1
        assert out["recovery_seconds"] >= 0.0

    def test_static_path_degrades_orphaned_streams(self):
        out = bench_fleet._run_static_recovery()
        # the survivor's half commits; the dead member's half degrades
        assert out["committed"] < 2 * out["expected"]
        assert out["degraded"] > 0

    def test_measure_recovery_dispatches_on_perf_config(self):
        fleet_s = bench_fleet.measure_recovery()
        assert isinstance(fleet_s, float) and fleet_s > 0
        with naive_mode():
            static_s = bench_fleet.measure_recovery()
        # the gated margin: reroute+replay beats retry-exhaustion
        assert static_s > fleet_s

    def test_recovery_slo_table_renders(self):
        table = bench_fleet.recovery_slo()
        text = table.render()
        assert "fleet (reroute + replay)" in text
        assert "static split (retry + degrade)" in text
        rows = table.as_dicts()
        assert len(rows) == 2
        assert rows[0]["steps committed"] == "8/8"


class TestWeakScaling:
    @pytest.mark.timeout(240)
    def test_per_rank_cpu_stays_flat_under_autoscaling(self):
        table = bench_fleet.weak_scaling(totals=(3, 6))
        rows = table.as_dicts()
        assert len(rows) == 2
        assert rows[0]["ranks (sim+end)"] == "2+1"
        assert rows[1]["ranks (sim+end)"] == "4+2"
        # flat weak scaling: per-rank CPU per step within 1.75x of the
        # base point even though the rank count doubled
        rel = float(rows[1]["sim CPU/step [s/rank]"].split("(")[1].rstrip("x)"))
        assert rel < 1.75

    def test_run_renders_both_sections(self):
        out = bench_fleet.run()
        text = out.render()
        assert "Endpoint-loss recovery" in text
        assert "Weak scaling, elastic fleet" in text
