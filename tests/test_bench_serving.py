"""Serving load-generator acceptance: many clients, zero hub stalls.

The headline acceptance row: the hub sustains >= 500 concurrent
loopback clients (mixed fast/slow, seeded churn) without a single
publish stall, and the bench reports latency percentiles and fairness.
"""

import pytest

from repro.bench.serving import (
    check_mesh_gate,
    mesh_serving_table,
    run_mesh_load,
    run_serving_load,
    serving_table,
    synthetic_frames,
)

pytestmark = pytest.mark.timeout(180)


class TestSyntheticFrames:
    def test_distinct_valid_pngs(self):
        frames = synthetic_frames(count=4, size=16)
        assert len(frames) == 4
        assert len({f for f in frames}) == 4
        assert all(f.startswith(b"\x89PNG\r\n\x1a\n") for f in frames)

    def test_deterministic(self):
        assert synthetic_frames(count=3, size=8, seed=5) == \
            synthetic_frames(count=3, size=8, seed=5)


class TestServingLoad:
    def test_small_run_accounting(self):
        out = run_serving_load(clients=16, frames=12, workers=4, seed=3)
        assert out["clients"] == 16
        assert out["frames_published"] == 12
        assert out["stalls"] == 0
        # every frame reached at least the fast clients
        assert out["fast_delivered_min"] == 12
        assert out["delivered"] > 0
        assert out["latency_p99_ms"] >= out["latency_p50_ms"] >= 0.0

    def test_slow_clients_drop_frames(self):
        out = run_serving_load(clients=20, frames=30, workers=4,
                               slow_fraction=0.5, seed=3)
        assert out["dropped"] > 0           # backpressure engaged
        assert out["stalls"] == 0           # ... without stalling publish

    def test_churn_is_seeded_and_counted(self):
        kw = dict(clients=32, frames=20, workers=4,
                  churn_probability=0.05, seed=9)
        a = run_serving_load(**kw)
        b = run_serving_load(**kw)
        assert a["churn_events"] > 0
        assert a["churn_events"] == b["churn_events"]

    def test_sustains_500_clients_with_zero_stalls(self):
        """The acceptance criterion, verbatim: >= 500 concurrent
        loopback clients, zero hub stalls, p99 latency reported."""
        out = run_serving_load(clients=500, frames=40, workers=8, seed=11)
        assert out["clients"] == 500
        assert out["peak_clients"] >= 500
        assert out["stalls"] == 0
        assert out["max_publish_ms"] < 250.0
        assert out["frames_published"] == 40
        assert out["latency_p99_ms"] > 0.0
        # fast clients must not be starved by slow/churning ones
        assert out["fairness"] > 0.5
        assert out["fast_delivered_min"] > 0

    def test_table_renders(self):
        table = serving_table(clients=24, frames=10, workers=4)
        text = str(table)
        assert "stalls" in text
        assert "p99" in text


@pytest.mark.mesh
class TestMeshLoad:
    def test_small_run_accounting_and_gates(self):
        out = run_mesh_load(
            clients=120, frames=16, relays=3, workers=4,
            probe_clients=16, seed=3,
        )
        assert out["clients"] == 120
        assert out["frames_published"] == 16
        assert out["stalls"] == 0
        assert out["delivered"] > 0
        assert out["monotonic_violations"] == 0
        # O(relays) publisher wakeups: one ingest per relay per frame
        assert out["notifies"] == 16 * 3
        assert check_mesh_gate(out) == []

    def test_churn_schedule_is_deterministic(self):
        kw = dict(clients=200, frames=16, relays=3, workers=4,
                  probe_clients=8, churn_probability=0.01, seed=9)
        a = run_mesh_load(**kw)
        b = run_mesh_load(**kw)
        assert a["churn_events"] > 0
        assert a["churn_events"] == b["churn_events"]

    def test_fires_grid_matches_per_call_draws(self):
        # the vectorized churn grid must be deterministic and honor
        # scheduled entries — it need not match fires() draw-for-draw
        # (different stream), but the schedule is seed-stable
        from repro.faults import FaultInjector

        kw = dict(seed=7, probabilities={"endpoint_crash": 0.05})
        a = FaultInjector(**kw).fires_grid(
            "endpoint_crash", "site", range(50), range(20)
        )
        b = FaultInjector(**kw).fires_grid(
            "endpoint_crash", "site", range(50), range(20)
        )
        assert a == b
        assert any(a.values())             # 0.05 x 1000 cells: fires

    def test_relay_loss_migrates_without_losing_steps(self):
        out = run_mesh_load(
            clients=150, frames=20, relays=3, workers=4,
            probe_clients=8, churn_probability=0.0, seed=5,
            kill_relay_at_frame=8, lease_timeout_s=0.2,
        )
        assert out["killed_relay"] is not None
        crash = [m for m in out["migrations"] if m["kind"] == "crash"]
        assert len(crash) == 1
        assert crash[0]["sessions_moved"] == out["migrated_clients"] > 0
        assert out["monotonic_violations"] == 0
        assert out["stalls"] == 0
        assert check_mesh_gate(out) == []

    def test_mesh_table_renders(self):
        text = str(mesh_serving_table(
            clients=80, frames=10, relays=2, workers=4, probe_clients=8,
        ))
        assert "relay fan-out" in text
        assert "edge cache" in text
        assert "acceptance gates" in text
