"""Tests for annotations, thresholds, and annotated pipelines."""

import numpy as np
import pytest

from repro.catalyst import (
    RenderPipeline,
    RenderSpec,
    clip_box,
    draw_colorbar,
    draw_step_label,
    draw_text,
    threshold,
    threshold_by,
)
from repro.catalyst.annotations import text_extent
from repro.vtkdata import DataArray, ImageData


def blank(h=64, w=64):
    return np.zeros((h, w, 3), dtype=np.uint8)


class TestDrawText:
    def test_draws_pixels(self):
        img = blank()
        draw_text(img, 2, 2, "123")
        assert img.sum() > 0

    def test_color(self):
        img = blank()
        draw_text(img, 2, 2, "8", color=(255, 0, 0))
        assert img[:, :, 0].max() == 255
        assert img[:, :, 1].max() == 0

    def test_clipping_at_edges_no_crash(self):
        img = blank(10, 10)
        draw_text(img, -3, -3, "999")
        draw_text(img, 8, 8, "999")

    def test_unknown_chars_blank(self):
        img = blank()
        draw_text(img, 2, 2, "@#$")
        assert img.sum() == 0

    def test_scale(self):
        small, big = blank(), blank()
        draw_text(small, 0, 0, "1", scale=1)
        draw_text(big, 0, 0, "1", scale=3)
        assert (big > 0).sum() == 9 * (small > 0).sum()

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            draw_text(blank(), 0, 0, "1", scale=0)

    def test_extent(self):
        w, h = text_extent("abc", scale=2)
        assert w == 3 * 6 * 2
        assert h == 14


class TestColorbarAndLabel:
    def test_colorbar_draws_on_right(self):
        img = blank(80, 80)
        draw_colorbar(img, 0.0, 1.0)
        right = img[:, 60:]
        left = img[:, :30]
        assert right.sum() > left.sum()

    def test_too_narrow_raises(self):
        with pytest.raises(ValueError):
            draw_colorbar(blank(64, 8), 0, 1)

    def test_step_label(self):
        img = blank()
        draw_step_label(img, 42, 0.125)
        assert img.sum() > 0


class TestThreshold:
    def _vol(self):
        return np.arange(27, dtype=float).reshape(3, 3, 3)

    def test_band_kept(self):
        out = threshold(self._vol(), vmin=10, vmax=20)
        assert np.isnan(out[0, 0, 0])
        assert out[1, 1, 1] == 13.0
        assert np.isnan(out[2, 2, 2])

    def test_empty_range_raises(self):
        with pytest.raises(ValueError):
            threshold(self._vol(), vmin=5, vmax=1)

    def test_original_untouched(self):
        vol = self._vol()
        threshold(vol, vmin=10, vmax=20)
        assert not np.isnan(vol).any()

    def test_threshold_by_selector(self):
        vol = self._vol()
        sel = np.zeros_like(vol)
        sel[1] = 5.0
        out = threshold_by(vol, sel, vmin=1.0)
        assert np.isnan(out[0]).all()
        np.testing.assert_array_equal(out[1], vol[1])

    def test_threshold_by_shape_mismatch(self):
        with pytest.raises(ValueError):
            threshold_by(self._vol(), np.zeros((2, 2, 2)))

    def test_clip_box(self):
        vol = np.ones((4, 4, 4))
        out = clip_box(
            vol, origin=(0, 0, 0), spacing=(1, 1, 1),
            box_lo=(0, 0, 0), box_hi=(1.5, 10, 10),
        )
        assert not np.isnan(out[:, :, :2]).any()   # x = 0, 1 kept
        assert np.isnan(out[:, :, 2:]).all()       # x = 2, 3 clipped


class TestAnnotatedPipeline:
    def _image(self):
        n = 6
        img = ImageData((n, n, n), spacing=(1 / (n - 1),) * 3)
        g = np.linspace(0, 1, n)
        Z, _, _ = np.meshgrid(g, g, g, indexing="ij")
        img.add_array(DataArray("t", Z.ravel()))
        return img

    def test_annotations_on_by_default(self):
        pipe = RenderPipeline(
            specs=[RenderSpec(kind="slice", array="t", axis="y")],
            width=96, height=96,
        )
        (_, with_anno), = pipe.render(self._image(), 7, 0.5)
        pipe.annotate = False
        (_, without), = pipe.render(self._image(), 7, 0.5)
        assert with_anno.sum() != without.sum()

    def test_small_frames_skip_colorbar(self):
        pipe = RenderPipeline(
            specs=[RenderSpec(kind="slice", array="t", axis="y")],
            width=48, height=48,
        )
        # must not raise even though the frame is narrow
        pipe.render(self._image(), 1, 0.0)
