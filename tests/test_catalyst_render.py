"""Tests for the rendering stack: colormaps, camera, rasterizer, contour,
slices, and pipelines."""

import numpy as np
import pytest

from repro.catalyst import (
    Camera,
    Rasterizer,
    RenderPipeline,
    RenderSpec,
    apply_colormap,
    axis_slice,
    colormap_names,
    load_pipeline_script,
    marching_tetrahedra,
    plane_sample,
)
from repro.catalyst.slicefilter import trilinear_sample
from repro.vtkdata import DataArray, ImageData


class TestColormaps:
    def test_names(self):
        assert "viridis" in colormap_names()
        assert "coolwarm" in colormap_names()

    def test_output_shape_dtype(self):
        rgb = apply_colormap(np.linspace(0, 1, 10))
        assert rgb.shape == (10, 3)
        assert rgb.dtype == np.uint8

    def test_endpoints(self):
        rgb = apply_colormap(np.array([0.0, 1.0]), vmin=0, vmax=1, name="grayscale")
        np.testing.assert_array_equal(rgb[0], [0, 0, 0])
        np.testing.assert_array_equal(rgb[1], [255, 255, 255])

    def test_clipping(self):
        rgb = apply_colormap(np.array([-5.0, 5.0]), vmin=0, vmax=1, name="grayscale")
        np.testing.assert_array_equal(rgb[0], [0, 0, 0])
        np.testing.assert_array_equal(rgb[1], [255, 255, 255])

    def test_nan_maps_to_gray(self):
        rgb = apply_colormap(np.array([np.nan, 0.5]), vmin=0, vmax=1)
        np.testing.assert_array_equal(rgb[0], [128, 128, 128])

    def test_constant_field_no_error(self):
        rgb = apply_colormap(np.full(4, 3.0))
        assert (rgb == rgb[0]).all()

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            apply_colormap(np.zeros(2), name="jet3000")

    def test_preserves_shape_2d(self):
        rgb = apply_colormap(np.zeros((4, 5)))
        assert rgb.shape == (4, 5, 3)


class TestCamera:
    def test_center_projects_to_image_center(self):
        cam = Camera(position=(0, -5, 0), look_at=(0, 0, 0), width=100, height=80)
        px = cam.project(np.array([[0.0, 0.0, 0.0]]))
        assert px[0, 0] == pytest.approx(50.0)
        assert px[0, 1] == pytest.approx(40.0)

    def test_depth_increases_away(self):
        cam = Camera(position=(0, -5, 0), look_at=(0, 0, 0))
        near = cam.project(np.array([[0.0, -1.0, 0.0]]))[0, 2]
        far = cam.project(np.array([[0.0, 3.0, 0.0]]))[0, 2]
        assert far > near

    def test_behind_camera_infinite(self):
        cam = Camera(position=(0, -5, 0), look_at=(0, 0, 0))
        p = cam.project(np.array([[0.0, -10.0, 0.0]]))
        assert not np.isfinite(p[0, 0])

    def test_up_is_up(self):
        cam = Camera(position=(0, -5, 0), look_at=(0, 0, 0), up=(0, 0, 1))
        above = cam.project(np.array([[0.0, 0.0, 1.0]]))
        below = cam.project(np.array([[0.0, 0.0, -1.0]]))
        assert above[0, 1] < below[0, 1]  # screen y grows downward

    def test_fit_bounds_frames_everything(self):
        bounds = np.array([[0, 2], [0, 2], [0, 2]], dtype=float)
        cam = Camera.fit_bounds(bounds, width=64, height=64)
        corners = np.array(
            [[x, y, z] for x in (0, 2) for y in (0, 2) for z in (0, 2)], dtype=float
        )
        px = cam.project(corners)
        assert (px[:, 0] >= 0).all() and (px[:, 0] < 64).all()
        assert (px[:, 1] >= 0).all() and (px[:, 1] < 64).all()

    def test_orthographic(self):
        cam = Camera(
            position=(0, -5, 0), look_at=(0, 0, 0),
            orthographic=True, ortho_scale=2.0, width=100, height=100,
        )
        # parallel projection: doubling distance does not change position
        a = cam.project(np.array([[1.0, 0.0, 0.0]]))
        cam2 = Camera(
            position=(0, -10, 0), look_at=(0, 0, 0),
            orthographic=True, ortho_scale=2.0, width=100, height=100,
        )
        b = cam2.project(np.array([[1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(a[0, :2], b[0, :2])

    def test_invalid_fov(self):
        with pytest.raises(ValueError):
            Camera(position=(0, -1, 0), look_at=(0, 0, 0), fov_degrees=200)


class TestRasterizer:
    def _tri(self):
        verts = np.array([[0.0, 0.0, 1.0], [2.0, 0.0, 1.0], [0.0, 2.0, 1.0]])
        faces = np.array([[0, 1, 2]])
        colors = np.full((3, 3), 255, dtype=np.uint8)
        return verts, faces, colors

    def test_draws_triangle(self):
        cam = Camera(position=(1, 1, -5), look_at=(1, 1, 0), up=(0, 1, 0),
                     width=64, height=64)
        r = Rasterizer(64, 64, background=(0, 0, 0))
        verts, faces, colors = self._tri()
        drawn = r.draw_mesh(cam, verts, faces, colors)
        assert drawn == 1
        assert r.image().max() > 0
        assert np.isfinite(r.depth).sum() > 10

    def test_depth_test_front_wins(self):
        cam = Camera(position=(1, 1, -5), look_at=(1, 1, 0), up=(0, 1, 0),
                     width=32, height=32)
        r = Rasterizer(32, 32, background=(0, 0, 0))
        verts, faces, _ = self._tri()
        red = np.zeros((3, 3), dtype=np.uint8); red[:, 0] = 255
        blue = np.zeros((3, 3), dtype=np.uint8); blue[:, 2] = 255
        far = verts + [0, 0, 1.0]
        r.draw_mesh(cam, far, faces, blue, ambient=1.0)
        r.draw_mesh(cam, verts, faces, red, ambient=1.0)
        img = r.image()
        covered = np.isfinite(r.depth)
        assert img[covered][:, 0].max() == 255       # red visible
        # draw order reversed must give the same front surface
        r2 = Rasterizer(32, 32, background=(0, 0, 0))
        r2.draw_mesh(cam, verts, faces, red, ambient=1.0)
        r2.draw_mesh(cam, far, faces, blue, ambient=1.0)
        np.testing.assert_array_equal(r.image(), r2.image())

    def test_empty_mesh(self):
        cam = Camera(position=(0, -5, 0), look_at=(0, 0, 0))
        r = Rasterizer(16, 16)
        assert r.draw_mesh(cam, np.zeros((0, 3)), np.zeros((0, 3), int),
                           np.zeros((0, 3), np.uint8)) == 0

    def test_background_gradient_only_untouched(self):
        cam = Camera(position=(1, 1, -5), look_at=(1, 1, 0), up=(0, 1, 0),
                     width=32, height=32)
        r = Rasterizer(32, 32, background=(0, 0, 0))
        verts, faces, colors = self._tri()
        r.draw_mesh(cam, verts, faces, colors, ambient=1.0)
        before = r.image().copy()
        covered = np.isfinite(r.depth)
        r.draw_background_gradient(top=(9, 9, 9), bottom=(9, 9, 9))
        np.testing.assert_array_equal(r.image()[covered], before[covered])
        assert (r.image()[~covered] == 9).all()

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            Rasterizer(0, 10)


class TestMarchingTetrahedra:
    def _sphere_volume(self, n=16, r=0.6):
        g = np.linspace(-1, 1, n)
        Z, Y, X = np.meshgrid(g, g, g, indexing="ij")
        return np.sqrt(X**2 + Y**2 + Z**2) - r

    def test_sphere_surface_extracted(self):
        vol = self._sphere_volume()
        verts, faces, vals = marching_tetrahedra(
            vol, 0.0, origin=(-1, -1, -1), spacing=(2 / 15, 2 / 15, 2 / 15)
        )
        assert len(faces) > 100
        radii = np.linalg.norm(verts, axis=1)
        # MT interpolates along cube body diagonals, so a curved SDF
        # gives outliers up to ~a cell diagonal; the bulk sits on r.
        assert np.median(radii) == pytest.approx(0.6, abs=0.02)
        assert radii.min() > 0.6 - 2 * 0.231 / 2   # cell body diagonal
        assert radii.max() < 0.6 + 0.231 / 2
        np.testing.assert_allclose(vals, 0.0, atol=1e-9)

    def test_no_crossing_empty(self):
        verts, faces, vals = marching_tetrahedra(np.zeros((4, 4, 4)), 5.0)
        assert len(verts) == 0 and len(faces) == 0

    def test_aux_coloring(self):
        vol = self._sphere_volume(n=8)
        g = np.linspace(-1, 1, 8)
        Z, _, _ = np.meshgrid(g, g, g, indexing="ij")
        verts, faces, vals = marching_tetrahedra(
            vol, 0.0, origin=(-1, -1, -1), spacing=(2 / 7,) * 3, aux=Z
        )
        # aux (z-coordinate) interpolated onto the surface: range ~ [-r, r]
        assert vals.min() < -0.3 and vals.max() > 0.3

    def test_faces_reference_valid_vertices(self):
        vol = self._sphere_volume(n=6)
        verts, faces, _ = marching_tetrahedra(vol, 0.0)
        if len(faces):
            assert faces.max() < len(verts)
            assert faces.min() >= 0

    def test_degenerate_volume(self):
        verts, faces, _ = marching_tetrahedra(np.zeros((1, 4, 4)), 0.5)
        assert len(faces) == 0

    def test_aux_shape_mismatch(self):
        with pytest.raises(ValueError):
            marching_tetrahedra(np.zeros((4, 4, 4)), 0.0, aux=np.zeros((3, 3, 3)))


class TestSlices:
    def _vol(self):
        # f(x, y, z) = x + 10 y + 100 z on integer lattice
        z, y, x = np.meshgrid(np.arange(4), np.arange(4), np.arange(4), indexing="ij")
        return (x + 10 * y + 100 * z).astype(float)

    def test_axis_slice_on_lattice_plane(self):
        plane = axis_slice(self._vol(), "z", 2.0)
        assert plane.shape == (4, 4)
        np.testing.assert_allclose(plane[0, 0], 200.0)

    def test_axis_slice_interpolates(self):
        plane = axis_slice(self._vol(), "z", 1.5)
        np.testing.assert_allclose(plane[0, 0], 150.0)

    def test_axis_slice_x(self):
        plane = axis_slice(self._vol(), "x", 3.0)
        assert plane.shape == (4, 4)  # [z, y]
        np.testing.assert_allclose(plane[1, 2], 3 + 20 + 100)

    def test_out_of_volume_raises(self):
        with pytest.raises(ValueError):
            axis_slice(self._vol(), "z", 99.0)

    def test_trilinear_exact_on_trilinear_function(self):
        vol = self._vol()
        pts = np.array([[0.5, 1.5, 2.5], [1.1, 0.2, 3.0]])
        vals = trilinear_sample(vol, (0, 0, 0), (1, 1, 1), pts)
        expected = pts[:, 0] + 10 * pts[:, 1] + 100 * pts[:, 2]
        np.testing.assert_allclose(vals, expected)

    def test_trilinear_outside_fill(self):
        vals = trilinear_sample(
            self._vol(), (0, 0, 0), (1, 1, 1), np.array([[99.0, 0, 0]]), fill=-7.0
        )
        assert vals[0] == -7.0

    def test_plane_sample(self):
        patch = plane_sample(
            self._vol(), (0, 0, 0), (1, 1, 1),
            plane_point=np.array([0.0, 0.0, 1.0]),
            plane_u=np.array([3.0, 0.0, 0.0]),
            plane_v=np.array([0.0, 3.0, 0.0]),
            resolution=(4, 4),
        )
        assert patch.shape == (4, 4)
        np.testing.assert_allclose(patch[0, 0], 100.0)
        np.testing.assert_allclose(patch[0, -1], 103.0)


class TestRenderPipeline:
    def _image_data(self):
        n = 8
        img = ImageData((n, n, n), origin=(0, 0, 0), spacing=(1 / (n - 1),) * 3)
        g = np.linspace(0, 1, n)
        Z, Y, X = np.meshgrid(g, g, g, indexing="ij")
        sphere = np.sqrt((X - 0.5) ** 2 + (Y - 0.5) ** 2 + (Z - 0.5) ** 2)
        img.add_array(DataArray("phi", sphere.ravel()))
        img.add_array(DataArray("temp", Z.ravel()))
        return img

    def test_contour_plus_slice_outputs(self):
        pipe = RenderPipeline(
            specs=[
                RenderSpec(kind="contour", array="phi", isovalue=0.3,
                           color_array="temp"),
                RenderSpec(kind="slice", array="temp", axis="y"),
            ],
            width=64, height=64, name="t",
        )
        outputs = pipe.render(self._image_data(), step=5, time=0.5)
        assert [name for name, _ in outputs] == ["t_surface", "t_slice0_temp"]
        for _, img in outputs:
            assert img.shape == (64, 64, 3)
            assert img.dtype == np.uint8

    def test_surface_render_not_blank(self):
        pipe = RenderPipeline(
            specs=[RenderSpec(kind="contour", array="phi", isovalue=0.3)],
            width=48, height=48,
        )
        (_, img), = pipe.render(self._image_data(), 0, 0.0)
        assert img.std() > 1.0  # something was drawn

    def test_contour_requires_isovalue(self):
        with pytest.raises(ValueError):
            RenderSpec(kind="contour", array="phi")

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            RenderSpec(kind="volume", array="phi")

    def test_pythonscript_render_function(self, tmp_path):
        script = tmp_path / "analysis.py"
        script.write_text(
            "import numpy as np\n"
            "def render(image, step, time):\n"
            "    return [('custom', np.zeros((8, 8, 3), dtype=np.uint8))]\n"
        )
        render = load_pipeline_script(script)
        out = render(self._image_data(), 0, 0.0)
        assert out[0][0] == "custom"

    def test_pythonscript_pipeline_object(self, tmp_path):
        script = tmp_path / "analysis.py"
        script.write_text(
            "from repro.catalyst import RenderPipeline, RenderSpec\n"
            "PIPELINE = RenderPipeline(specs=[RenderSpec(kind='slice', "
            "array='temp')], width=16, height=16)\n"
        )
        render = load_pipeline_script(script)
        out = render(self._image_data(), 0, 0.0)
        assert out[0][1].shape == (16, 16, 3)

    def test_pythonscript_missing_file(self):
        with pytest.raises(FileNotFoundError):
            load_pipeline_script("/nonexistent/analysis.py")

    def test_pythonscript_without_entry_point(self, tmp_path):
        script = tmp_path / "bad.py"
        script.write_text("x = 1\n")
        with pytest.raises(ValueError):
            load_pipeline_script(script)
