"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.case == "cavity"
        assert args.ranks == 2
        assert args.device == "cuda-sim"

    def test_bench_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "fig9"])

    def test_render_requires_case(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["render", "some.fld"])


class TestInfo:
    def test_prints_machines(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Polaris" in out
        assert "JUWELS Booster" in out
        assert "A100" in out


class TestRun:
    def test_cavity_run_with_config(self, tmp_path, capsys):
        config = tmp_path / "sensei.xml"
        config.write_text(
            '<sensei><analysis type="histogram" array="pressure" '
            'bins="4" frequency="2"/></sensei>'
        )
        rc = main([
            "run", "--case", "cavity", "--ranks", "1", "--steps", "2",
            "--order", "3", "--config", str(config),
            "--output", str(tmp_path / "out"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cavity" in out
        assert (tmp_path / "out" / "histogram_pressure.txt").exists()

    def test_inject_compositing_targets_catalyst_only(self):
        from repro.cli import _inject_compositing

        xml = (
            '<sensei>'
            '<analysis type="catalyst" array="pressure" isovalue="0.1"/>'
            '<analysis type="histogram" array="pressure" bins="4"/>'
            '</sensei>'
        )
        out = _inject_compositing(xml, "binary_swap")
        assert out.count('compositing="binary_swap"') == 1
        assert 'type="histogram" array="pressure" bins="4" compositing' not in out

    def test_run_with_compositing_flag(self, tmp_path, capsys):
        config = tmp_path / "sensei.xml"
        config.write_text(
            '<sensei><analysis type="catalyst" mesh="uniform" '
            'array="velocity_magnitude" isovalue="0.2" slice_axis="y" '
            'width="64" height="64" frequency="2"/></sensei>'
        )
        rc = main([
            "run", "--case", "cavity", "--ranks", "2", "--steps", "2",
            "--order", "3", "--config", str(config),
            "--compositing", "binary_swap",
            "--output", str(tmp_path / "out"),
        ])
        assert rc == 0
        pngs = list((tmp_path / "out").glob("*.png"))
        assert len(pngs) == 2  # surface + slice at step 2

    def test_inject_residency_targets_catalyst_only(self):
        from repro.cli import _inject_residency

        xml = (
            '<sensei>'
            '<analysis type="catalyst" array="pressure" isovalue="0.1"/>'
            '<analysis type="histogram" array="pressure" bins="4"/>'
            '</sensei>'
        )
        out = _inject_residency(xml, "device")
        assert out.count('residency="device"') == 1
        assert 'type="histogram" array="pressure" bins="4" residency' not in out

    def test_insitu_alias_with_device_residency(self, tmp_path, capsys):
        config = tmp_path / "sensei.xml"
        config.write_text(
            '<sensei><analysis type="catalyst" mesh="uniform" '
            'array="velocity_magnitude" isovalue="0.2" slice_axis="y" '
            'width="64" height="64" frequency="2"/></sensei>'
        )
        rc = main([
            "insitu", "--case", "cavity", "--ranks", "2", "--steps", "2",
            "--order", "3", "--config", str(config),
            "--compositing", "binary_swap", "--residency", "device",
            "--output", str(tmp_path / "out"),
        ])
        assert rc == 0
        pngs = list((tmp_path / "out").glob("*.png"))
        assert len(pngs) == 2  # surface + slice at step 2

    def test_rejects_unknown_residency(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--residency", "gpu"])
        err = capsys.readouterr().err
        assert "--residency" in err and "host" in err and "device" in err

    def test_run_with_par_override(self, tmp_path, capsys):
        par = tmp_path / "case.par"
        par.write_text("[GENERAL]\nnumSteps = 1\npolynomialOrder = 2\n")
        rc = main([
            "run", "--case", "cavity", "--ranks", "1",
            "--par", str(par), "--output", str(tmp_path / "out"),
        ])
        assert rc == 0
        assert "1 steps" in capsys.readouterr().out


class TestRenderCommand:
    def test_render_checkpoint(self, tmp_path, capsys):
        from repro.cli import _build_case
        from repro.nekrs import NekRSSolver
        from repro.nekrs.checkpoint import write_checkpoint
        from repro.parallel import SerialCommunicator

        # default cavity case so `render --case cavity` rebuilds the
        # exact same mesh
        case = _build_case("cavity", None, None, None)
        solver = NekRSSolver(case, SerialCommunicator())
        solver.run(1)
        path, _ = write_checkpoint(
            tmp_path, case.name, 1, solver.time, 0, 1,
            {"velocity_x": solver.u, "velocity_y": solver.v,
             "velocity_z": solver.w, "pressure": solver.p},
        )
        rc = main([
            "render", str(path), "--case", "cavity",
            "--array", "pressure", "--size", "96",
            "--output", str(tmp_path / "imgs"),
        ])
        assert rc == 0
        pngs = list((tmp_path / "imgs").glob("*.png"))
        assert len(pngs) == 1
        assert "wrote" in capsys.readouterr().out

    def test_render_shape_mismatch_exits(self, tmp_path):
        from repro.cli import _build_case
        from repro.nekrs import NekRSSolver
        from repro.nekrs.checkpoint import write_checkpoint
        from repro.parallel import SerialCommunicator

        case = _build_case("cavity", 1, 2, None)  # order 2
        solver = NekRSSolver(case, SerialCommunicator())
        solver.run(1)
        path, _ = write_checkpoint(
            tmp_path, case.name, 1, solver.time, 0, 1,
            {"velocity_x": solver.u, "velocity_y": solver.v,
             "velocity_z": solver.w, "pressure": solver.p},
        )
        with pytest.raises(SystemExit, match="does not match"):
            main([
                "render", str(path), "--case", "cavity",
                "--array", "pressure", "--output", str(tmp_path / "i"),
            ])


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.case == "cavity"
        assert args.port is None          # loopback mode by default
        assert args.history == 32
        assert args.max_clients is None

    def test_loopback_smoke(self, tmp_path, capsys):
        """`repro serve` without --port runs the case against an
        in-process loopback viewer and reports the hub accounting."""
        rc = main([
            "serve", "--case", "cavity", "--ranks", "2", "--steps", "3",
            "--order", "3", "--output", str(tmp_path / "out"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "case cavity-re100: 3 steps" in out
        assert "loopback client received 3 frames" in out
        assert "3 frames published" in out
        assert "0 stalls" in out

    def test_http_smoke(self, tmp_path, capsys):
        """`repro serve --port 0` binds an ephemeral HTTP port, runs,
        and shuts the server down cleanly."""
        rc = main([
            "serve", "--case", "cavity", "--ranks", "1", "--steps", "2",
            "--order", "3", "--port", "0",
            "--output", str(tmp_path / "out"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serving on http://127.0.0.1:" in out
        assert "POST /steer" in out
        assert "case cavity-re100: 2 steps" in out
