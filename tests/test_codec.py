"""Tests for the wire compression codec layer and the hybrid router.

Covers the :mod:`repro.codec` stage primitives (against their
``naive_mode`` reference twins), the per-field pipelines across the
edge-case zoo (NaN/Inf, constants, single elements, odd shapes, both
float widths), the RBP3 frame (round trips, CRC over compressed
bytes, lossless byte-identity with RBP2, RBP1/RBP2 back-compat,
geometry pinning, copy-on-write isolation), the
:class:`~repro.insitu.router.HybridRouter` state machine, the labeled
route counters, and the serve-plane codec accounting.
"""

import struct

import numpy as np
import pytest

from repro.adios.marshal import (
    StepPayload,
    marshal_step,
    marshal_step_reference,
    unmarshal_step,
)
from repro.codec import (
    CodecContext,
    CodecError,
    CodecSpec,
    ErrorBudget,
    FieldCodecConfig,
    MissingReferenceError,
    decode_field,
    encode_field,
)
from repro.codec import stages
from repro.codec.pipeline import BITPLANE_RLE, CONSTANT, DELTA_RLE, RAW
from repro.faults.errors import CorruptPayloadError
from repro.insitu.router import HybridRouter, RouteDecision, RouterPolicy
from repro.perf import naive_mode


def _smooth(shape=(6, 5, 5), seed=0, scale=1.0, offset=0.0):
    rng = np.random.default_rng(seed)
    grids = np.meshgrid(*(np.linspace(0, 1, n) for n in shape), indexing="ij")
    f = sum(np.sin(3.1 * g + i) for i, g in enumerate(grids))
    return scale * (f + 1e-3 * rng.normal(size=shape)) + offset


EDGE_ARRAYS = {
    "nan": np.array([[1.0, np.nan], [3.0, 4.0]]),
    "inf": np.array([0.0, np.inf, -np.inf, 2.0]),
    "constant": np.full((4, 3), 2.5),
    "one": np.array([42.0]),
    "empty": np.zeros((0,)),
    "odd_shape": _smooth((7, 3, 5), seed=3),
    "f4": _smooth((5, 5), seed=4).astype(np.float32),
    "tiny_range": 1.0 + 1e-14 * np.arange(8.0),
}


class TestStages:
    def test_varint_zigzag_roundtrip_and_reference(self, rng):
        vals = np.concatenate([
            rng.integers(-(2**40), 2**40, size=200),
            np.array([0, -1, 1, 2**62, -(2**62)]),
        ]).astype(np.int64)
        data = stages.varint_encode(stages.zigzag_encode(vals))
        out = stages.zigzag_decode(stages.varint_decode(data, vals.size))
        ref = stages.zigzag_decode(
            stages.varint_decode_reference(data, vals.size)
        )
        np.testing.assert_array_equal(out, vals)
        np.testing.assert_array_equal(ref, vals)

    def test_rle_roundtrip_and_reference(self, rng):
        vals = np.repeat(
            rng.integers(-50, 50, size=40), rng.integers(1, 9, size=40)
        ).astype(np.int64)
        data = stages.rle_encode(vals)
        np.testing.assert_array_equal(stages.rle_decode(data), vals)
        np.testing.assert_array_equal(stages.rle_decode_reference(data), vals)
        with naive_mode():
            np.testing.assert_array_equal(stages.rle_decode(data), vals)

    def test_delta_roundtrip_and_reference(self, rng):
        q = rng.integers(-1000, 1000, size=(4, 5, 5)).astype(np.int64)
        deltas = stages.delta_encode(q)
        np.testing.assert_array_equal(
            stages.delta_decode(deltas).reshape(q.shape), q
        )
        np.testing.assert_array_equal(
            stages.delta_decode_reference(deltas).reshape(q.shape), q
        )

    def test_quantize_bound(self, rng):
        arr = rng.normal(size=500)
        step = 1e-3
        out = stages.dequantize(stages.quantize(arr, step), step)
        assert np.abs(out - arr).max() <= step / 2 + 1e-12
        ref = stages.dequantize_reference(stages.quantize(arr, step), step)
        np.testing.assert_array_equal(out, ref)

    def test_truncate_mantissa_relative_bound(self, rng):
        arr = rng.normal(size=300) * 10.0 ** rng.integers(-3, 4, size=300)
        for keep in (4, 10, 20):
            out = stages.truncate_mantissa(arr, keep)
            rel = np.abs(out - arr) / np.abs(arr)
            assert rel.max() <= 2.0 ** -keep

    def test_rle_decode_rejects_adversarial_gap(self):
        """A gap >= 2**63 must raise, not wrap into negative indexing.

        The int64 cast inside the vectorized decoder would fold such a
        gap negative and write via wrap-around indices; both decoders
        must instead reject the stream identically.
        """
        payload = (
            stages.varint_encode(np.array([10, 1], dtype=np.uint64))
            + stages.varint_encode(np.array([2**63], dtype=np.uint64))
            + stages.varint_encode(
                stages.zigzag_encode(np.array([7], dtype=np.int64))
            )
        )
        with pytest.raises(CodecError):
            stages.rle_decode(payload)
        with pytest.raises(CodecError):
            stages.rle_decode_reference(payload)

    def test_byte_shuffle_roundtrip_and_reference(self, rng):
        arr = rng.normal(size=64)
        data = stages.byte_shuffle(arr)
        out = stages.byte_unshuffle(data, arr.dtype, arr.size)
        ref = stages.byte_unshuffle_reference(data, arr.dtype, arr.size)
        np.testing.assert_array_equal(out, arr)
        np.testing.assert_array_equal(ref, arr)


class TestFieldPipelines:
    @pytest.mark.parametrize("codec", ["delta-rle", "bitplane-rle"])
    @pytest.mark.parametrize("case", sorted(EDGE_ARRAYS))
    def test_roundtrip_within_budget(self, codec, case):
        arr = EDGE_ARRAYS[case]
        cfg = FieldCodecConfig(codec=codec, budget=ErrorBudget(relative=1e-3))
        codec_id, params, data = encode_field(case, arr, cfg, step=0)
        out = decode_field(case, codec_id, params, data, arr.dtype,
                           arr.shape, step=0)
        assert out.shape == arr.shape and out.dtype == arr.dtype
        bound = cfg.budget.bound_for(arr) if arr.size else None
        if codec_id == RAW or not np.isfinite(arr).all():
            np.testing.assert_array_equal(out, arr)
        else:
            assert np.abs(out - arr).max() <= (bound or 0) + 1e-12

    @pytest.mark.parametrize("codec", ["delta-rle", "bitplane-rle"])
    def test_smooth_field_compresses(self, codec):
        arr = _smooth((8, 8, 8), seed=1)
        cfg = FieldCodecConfig(codec=codec, budget=ErrorBudget(relative=1e-3))
        codec_id, params, data = encode_field("f", arr, cfg, step=0)
        assert codec_id != RAW
        assert len(data) * 2 < arr.nbytes

    def test_nan_inf_fall_back_to_raw(self):
        cfg = FieldCodecConfig(codec="delta-rle",
                               budget=ErrorBudget(relative=1e-3))
        for case in ("nan", "inf"):
            codec_id, _, data = encode_field(case, EDGE_ARRAYS[case], cfg, 0)
            assert codec_id == RAW
            assert data == EDGE_ARRAYS[case].tobytes()

    def test_constant_field_is_one_value(self):
        cfg = FieldCodecConfig(codec="delta-rle",
                               budget=ErrorBudget(relative=1e-3))
        codec_id, params, data = encode_field(
            "c", EDGE_ARRAYS["constant"], cfg, 0
        )
        assert codec_id == CONSTANT and data == b""
        out = decode_field("c", codec_id, params, data, np.float64, (4, 3), 0)
        np.testing.assert_array_equal(out, EDGE_ARRAYS["constant"])

    def test_lossless_config_is_bit_exact(self, rng):
        arr = rng.normal(size=(5, 5))
        codec_id, _, data = encode_field("f", arr, None, 0)
        assert codec_id == RAW
        out = decode_field("f", codec_id, {}, data, arr.dtype, arr.shape, 0)
        np.testing.assert_array_equal(out, arr)

    def test_absolute_budget(self, rng):
        arr = rng.normal(size=200) * 100
        cfg = FieldCodecConfig(codec="delta-rle",
                               budget=ErrorBudget(absolute=0.05))
        codec_id, params, data = encode_field("f", arr, cfg, 0)
        out = decode_field("f", codec_id, params, data, arr.dtype,
                           arr.shape, 0)
        assert np.abs(out - arr).max() <= 0.05 + 1e-12

    @pytest.mark.parametrize("codec", ["delta-rle", "bitplane-rle"])
    def test_combined_budget_honors_tighter_absolute_bound(self, codec, rng):
        """With both bounds set, the tighter one wins (bound_for's rule).

        A large-magnitude field makes the absolute bound far tighter
        than the relative one; bitplane-rle used to key its mantissa
        keep-bits off the relative bound alone and blow the absolute
        budget by orders of magnitude.
        """
        arr = 2e6 + rng.normal(size=(8, 8, 8))
        budget = ErrorBudget(absolute=1e-6, relative=1e-1)
        cfg = FieldCodecConfig(codec=codec, budget=budget)
        codec_id, params, data = encode_field("p", arr, cfg, 0)
        out = decode_field("p", codec_id, params, data, arr.dtype,
                           arr.shape, 0)
        assert np.abs(out - arr).max() <= budget.bound_for(arr) + 1e-12

    @pytest.mark.parametrize("codec", ["delta-rle", "bitplane-rle"])
    def test_naive_mode_decode_parity(self, codec, rng):
        arr = _smooth((6, 6, 6), seed=7)
        cfg = FieldCodecConfig(codec=codec, budget=ErrorBudget(relative=1e-3))
        codec_id, params, data = encode_field("f", arr, cfg, 0)
        fast = decode_field("f", codec_id, params, data, arr.dtype,
                            arr.shape, 0)
        with naive_mode():
            slow = decode_field("f", codec_id, params, data, arr.dtype,
                                arr.shape, 0)
        np.testing.assert_array_equal(fast, slow)

    def test_corrupt_block_raises(self):
        arr = _smooth((6, 6), seed=2)
        cfg = FieldCodecConfig(codec="bitplane-rle",
                               budget=ErrorBudget(relative=1e-3))
        codec_id, params, data = encode_field("f", arr, cfg, 0)
        with pytest.raises(CodecError):
            decode_field("f", codec_id, params, data[:-3], arr.dtype,
                         arr.shape, 0)


class TestTemporal:
    def _cfg(self):
        return FieldCodecConfig(
            codec="delta-rle", budget=ErrorBudget(relative=1e-3),
            temporal=True,
        )

    def test_temporal_chain_roundtrip(self):
        enc, dec = CodecContext(), CodecContext()
        base = _smooth((6, 6, 6), seed=9)
        for step in range(3):
            arr = base + 1e-4 * step
            codec_id, params, data = encode_field("T", arr, self._cfg(),
                                                  step, enc)
            if step > 0:
                assert params.get("m") == "t"
                assert params["ref"] == step - 1
            out = decode_field("T", codec_id, params, data, arr.dtype,
                               arr.shape, step, dec)
            bound = self._cfg().budget.bound_for(arr)
            assert np.abs(out - arr).max() <= bound + 1e-12

    def test_temporal_decode_without_context_raises(self):
        enc = CodecContext()
        base = _smooth((5, 5), seed=10)
        encode_field("T", base, self._cfg(), 0, enc)
        codec_id, params, data = encode_field("T", base + 1e-4,
                                              self._cfg(), 1, enc)
        assert params.get("m") == "t"
        with pytest.raises(MissingReferenceError):
            decode_field("T", codec_id, params, data, base.dtype,
                         base.shape, 1, context=None)
        with pytest.raises(MissingReferenceError):
            # a fresh context never decoded the reference step either
            decode_field("T", codec_id, params, data, base.dtype,
                         base.shape, 1, context=CodecContext())

    def test_raw_fallback_keeps_temporal_chain_decodable(self):
        """Encoder must not remember quanta the decoder never sees.

        Incompressible noise under a tiny budget falls back to raw;
        the encoder used to remember that step's quanta anyway, so the
        next temporal block referenced a step the decoder had never
        decoded and the stream became undecodable.
        """
        cfg = FieldCodecConfig(
            codec="delta-rle", budget=ErrorBudget(relative=1e-9),
            temporal=True,
        )
        rng = np.random.default_rng(20)
        enc, dec = CodecContext(), CodecContext()
        for step in range(1, 4):
            arr = rng.standard_normal(512).astype(np.float32)
            codec_id, params, data = encode_field("v", arr, cfg, step, enc)
            assert codec_id == RAW     # noise at 1e-9 never shrinks
            out = decode_field("v", codec_id, params, data, arr.dtype,
                               arr.shape, step, dec)
            np.testing.assert_array_equal(out, arr)

    def test_raw_fallback_mid_chain_keeps_last_shipped_reference(self):
        """An incompressible step must not break the chain around it.

        Steps 0, 1 and 3 ship DELTA_RLE; step 2 is white noise
        (normalized to the base's range so qsteps stay compatible)
        whose deltas cost more than raw under the tight budget, so it
        falls back.  Step 3's temporal reference must then point at
        step 1 — the last quanta the decoder actually saw — and
        decode cleanly.
        """
        cfg = FieldCodecConfig(
            codec="delta-rle", budget=ErrorBudget(relative=1e-15),
            temporal=True,
        )
        x = np.linspace(0, 1, 4096)
        base = np.sin(3.1 * x) + 0.5 * np.cos(7.3 * x)
        w = np.random.default_rng(22).standard_normal(base.shape)
        noise = base.min() + (w - w.min()) / (w.max() - w.min()) \
            * (base.max() - base.min())
        arrs = [base, base + 1e-4, noise, base + 2e-4]
        enc, dec = CodecContext(), CodecContext()
        codecs, params_by_step = [], {}
        for step, arr in enumerate(arrs):
            codec_id, params, data = encode_field("T", arr, cfg, step, enc)
            codecs.append(codec_id)
            params_by_step[step] = params
            out = decode_field("T", codec_id, params, data, arr.dtype,
                               arr.shape, step, dec)
            bound = cfg.budget.bound_for(arr)
            if codec_id == RAW:
                np.testing.assert_array_equal(out, arr)
            else:
                assert np.abs(out - arr).max() <= bound + 1e-15
        assert codecs == [DELTA_RLE, DELTA_RLE, RAW, DELTA_RLE]
        assert params_by_step[3].get("m") == "t"
        assert params_by_step[3]["ref"] == 1   # not the unseen step 2

    def test_grown_range_reseeds_spatially(self):
        """A spin-up field must not drag its early tiny qstep along."""
        enc = CodecContext()
        small = _smooth((6, 6, 6), seed=11, scale=1e-3)
        encode_field("p", small, self._cfg(), 0, enc)
        big = _smooth((6, 6, 6), seed=11, scale=1.0)
        codec_id, params, data = encode_field("p", big, self._cfg(), 1, enc)
        assert params.get("m") == "s"     # chain re-seeded, not reused
        assert codec_id == DELTA_RLE
        assert len(data) * 2 < big.nbytes  # and it still compresses

    def test_shape_change_reseeds_spatially(self):
        enc = CodecContext()
        encode_field("p", _smooth((4, 4), seed=12), self._cfg(), 0, enc)
        arr = _smooth((6, 6), seed=12)
        _, params, _ = encode_field("p", arr, self._cfg(), 1, enc)
        assert params.get("m") == "s"


def _payload(seed=0, step=1):
    rng = np.random.default_rng(seed)
    return StepPayload(
        step=step, time=0.25, rank=2,
        variables={
            "temperature": _smooth((4, 5, 5), seed=seed),
            "velocity": _smooth((4, 5, 5), seed=seed + 1, scale=2.0),
            "block0/geom": rng.normal(size=10),
            "cells": np.arange(12, dtype=np.int64),
        },
        attributes={"mesh": "box"},
    )


class TestMarshalRBP3:
    def test_roundtrip_within_budget(self):
        spec = CodecSpec.from_cli("delta-rle", "1e-3")
        payload = _payload()
        enc, dec = CodecContext(), CodecContext()
        data = marshal_step(payload, codec=spec, context=enc)
        assert bytes(data[:4]) == b"RBP3"
        out = unmarshal_step(data, context=dec)
        assert out.step == payload.step and out.attributes == payload.attributes
        for name, arr in payload.variables.items():
            got = out.variables[name]
            assert got.shape == arr.shape and got.dtype == arr.dtype
            cfg = spec.config_for(name, arr.dtype)
            if cfg is None or cfg.budget.lossless:
                np.testing.assert_array_equal(got, arr)
            else:
                bound = cfg.budget.bound_for(arr)
                assert np.abs(got - arr).max() <= bound + 1e-12
        assert len(data) < len(marshal_step(payload))

    def test_geometry_and_int_fields_are_bit_exact(self):
        spec = CodecSpec.from_cli("delta-rle", "1e-2")
        payload = _payload()
        out = unmarshal_step(marshal_step(payload, codec=spec,
                                          context=CodecContext()),
                             context=CodecContext())
        np.testing.assert_array_equal(
            out.variables["block0/geom"], payload.variables["block0/geom"]
        )
        np.testing.assert_array_equal(
            out.variables["cells"], payload.variables["cells"]
        )

    def test_crc_covers_compressed_bytes(self):
        spec = CodecSpec.from_cli("delta-rle", "1e-3")
        data = bytearray(marshal_step(_payload(), codec=spec,
                                      context=CodecContext()))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(CorruptPayloadError):
            unmarshal_step(bytes(data), context=CodecContext())

    def test_lossless_spec_emits_byte_identical_rbp2(self):
        payload = _payload()
        plain = bytes(marshal_step(payload))
        via_spec = bytes(marshal_step(payload, codec=CodecSpec.lossless()))
        assert via_spec == plain
        assert via_spec[:4] == b"RBP2"
        assert bytes(marshal_step(payload, codec=None)) == plain

    def test_rbp2_and_rbp1_still_decode(self):
        payload = _payload()
        rbp2 = marshal_step_reference(payload)
        out2 = unmarshal_step(rbp2)
        np.testing.assert_array_equal(
            out2.variables["temperature"], payload.variables["temperature"]
        )
        rbp1 = b"RBP1" + rbp2[8:]       # v1 framing: magic, no CRC
        out1 = unmarshal_step(rbp1)
        np.testing.assert_array_equal(
            out1.variables["temperature"], payload.variables["temperature"]
        )

    def test_decoded_fields_are_read_only_with_cow_escape(self):
        spec = CodecSpec.from_cli("delta-rle", "1e-3")
        wire = bytes(marshal_step(_payload(), codec=spec,
                                  context=CodecContext()))
        out = unmarshal_step(wire, context=CodecContext())
        for arr in out.variables.values():
            assert not arr.flags.writeable
        with pytest.raises(ValueError):
            out.variables["temperature"][0, 0, 0] = 9.0
        writable = out.ensure_writable("temperature")
        writable[0, 0, 0] = 9.0
        assert out.variables["temperature"][0, 0, 0] == 9.0

    def test_mutation_never_corrupts_staged_payload(self):
        """The satellite regression: a consumer mutating a decoded
        field must not reach back into the staged wire bytes or any
        sibling decode of the same frame."""
        for spec in (None, CodecSpec.from_cli("delta-rle", "1e-3")):
            payload = _payload()
            wire = bytes(marshal_step(payload, codec=spec,
                                      context=CodecContext()))
            staged = bytes(wire)        # what a broker/replay cache holds
            first = unmarshal_step(wire, context=CodecContext())
            arr = first.ensure_writable("temperature")
            arr.fill(-123.0)
            first.ensure_writable("block0/geom").fill(-7.0)
            assert wire == staged       # wire bytes untouched
            second = unmarshal_step(wire, context=CodecContext())
            np.testing.assert_allclose(
                second.variables["temperature"],
                payload.variables["temperature"], atol=1e-2,
            )
            np.testing.assert_array_equal(
                second.variables["block0/geom"],
                payload.variables["block0/geom"],
            )


class TestCodecSpec:
    def test_from_cli_variants(self):
        assert CodecSpec.from_cli(None) is None
        assert CodecSpec.from_cli("none") is None
        assert not CodecSpec.from_cli("lossless").active
        spec = CodecSpec.from_cli("bitplane-rle", "abs:0.5")
        assert spec.active
        cfg = spec.config_for("temperature", np.float64)
        assert cfg.codec == "bitplane-rle" and cfg.budget.absolute == 0.5
        with pytest.raises(ValueError):
            CodecSpec.from_cli("gzip")

    def test_geometry_globs_pin_raw(self):
        spec = CodecSpec.from_cli("delta-rle", "1e-3")
        for name in ("block0/geom", "mesh/points", "cells"):
            assert spec.config_for(name, np.float64).codec == "raw"
        assert spec.config_for("temperature", np.float64).codec == "delta-rle"

    def test_int_fields_pass_through(self):
        spec = CodecSpec.from_cli("delta-rle", "1e-3")
        assert spec.config_for("ids", np.int64) is None

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            ErrorBudget(relative=-1.0)
        with pytest.raises(ValueError):
            ErrorBudget(absolute=0.0)


class TestHybridRouter:
    def test_forced_modes(self):
        for mode in ("insitu", "intransit"):
            router = HybridRouter(mode=mode)
            d = router.decide(0, raw_bytes=10**9)
            assert isinstance(d, RouteDecision) and d.route == mode

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RouterPolicy(wire_budget_bytes=0)
        with pytest.raises(ValueError):
            HybridRouter(mode="teleport")

    def test_streams_within_budget(self):
        router = HybridRouter(RouterPolicy(wire_budget_bytes=1 << 20))
        for step in range(5):
            assert router.decide(step, raw_bytes=1000).route == "intransit"
        assert router.route_counts["intransit"] == 5

    def test_hysteresis_then_insitu_then_reentry(self):
        policy = RouterPolicy(wire_budget_bytes=1000, hysteresis=2,
                              probe_interval=100)
        router = HybridRouter(policy)
        # first ratio observation: 4x compression
        router.observe(raw_bytes=4000, wire_bytes=1000)
        # over budget: est 8000/4 = 2000 > 1000; decision entering the
        # step still streams for `hysteresis` steps, then parks
        assert router.decide(0, 8000).route == "intransit"
        assert router.decide(1, 8000).route == "intransit"
        assert router.decide(2, 8000).route == "insitu"
        # back under the re-entry margin just as long, then streams
        assert router.decide(3, 2000).route == "insitu"
        assert router.decide(4, 2000).route == "insitu"
        assert router.decide(5, 2000).route == "intransit"

    def test_parked_router_probes(self):
        policy = RouterPolicy(wire_budget_bytes=1000, hysteresis=1,
                              probe_interval=3)
        router = HybridRouter(policy)
        # 5x over budget: too much to stream, not enough to drop
        routes = [router.decide(s, 5000).route for s in range(8)]
        assert "intransit" in routes[2:]      # periodic probe while parked
        assert routes.count("insitu") > routes.count("intransit")

    def test_drop_when_no_insitu_and_far_over(self):
        policy = RouterPolicy(wire_budget_bytes=1000, hysteresis=1,
                              drop_factor=2.0, probe_interval=100)
        router = HybridRouter(policy, insitu_available=False)
        router.decide(0, 10**9)
        d = router.decide(1, 10**9)
        assert d.route == "drop"
        assert router.route_counts["drop"] >= 1

    def test_first_observation_replaces_prior(self):
        router = HybridRouter()
        assert router.ratio_ewma == 1.0
        router.observe(raw_bytes=8000, wire_bytes=1000)
        assert router.ratio_ewma == pytest.approx(8.0)
        router.observe(raw_bytes=4000, wire_bytes=1000)   # then EWMA-smoothed
        assert 4.0 < router.ratio_ewma < 8.0

    def test_stats_and_decisions(self):
        router = HybridRouter(RouterPolicy(wire_budget_bytes=1 << 20))
        router.decide(0, 100)
        s = router.stats()
        assert s["mode"] == "hybrid" and s["routes"]["intransit"] == 1
        assert s["decisions"][-1]["step"] == 0

    def test_for_cluster_budget_scales_with_ranks(self):
        from repro.machine import JUWELS_BOOSTER

        small = RouterPolicy.for_cluster(JUWELS_BOOSTER, 4, 0.5)
        big = RouterPolicy.for_cluster(JUWELS_BOOSTER, 8, 0.5)
        assert big.wire_budget_bytes == pytest.approx(
            2 * small.wire_budget_bytes
        )


class TestRouteCounters:
    def test_labeled_route_counter_exports(self):
        from repro.observe import Telemetry, active

        tel = Telemetry.create(rank=0)
        with active(tel):
            router = HybridRouter(RouterPolicy(wire_budget_bytes=1 << 20))
            router.decide(0, 100)
            router.decide(1, 100)
            forced = HybridRouter(mode="insitu")
            forced.decide(0, 100)
        text = tel.metrics.to_prometheus()
        assert 'repro_router_route_total{rank="0",route="intransit"} 2' in text
        assert 'repro_router_route_total{rank="0",route="insitu"} 1' in text
        # one HELP/TYPE pair per metric name, not per label set
        assert text.count("# HELP repro_router_route_total") == 1

    def test_labeled_counters_merge_by_label_set(self):
        from repro.observe.metrics import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_router_route_total", "", {"route": "drop"}).inc(2)
        b.counter("repro_router_route_total", "", {"route": "drop"}).inc(3)
        b.counter("repro_router_route_total", "", {"route": "insitu"}).inc(1)
        out = a.merge(b).to_json()["metrics"]
        assert out['repro_router_route_total{route="drop"}']["value"] == 5
        assert out['repro_router_route_total{route="insitu"}']["value"] == 1


class TestServePlane:
    def test_framestore_accounts_codec_frames(self):
        from repro.serve.framestore import FrameStore

        store = FrameStore(history=4)
        f = store.put("fields", 0, 0.0, b"x" * 100, seq=0,
                      encoding="rbp3", raw_nbytes=400)
        assert f.encoding == "rbp3" and f.bytes_saved == 300
        store.put("catalyst", 0, 0.0, b"y" * 50, seq=1)
        s = store.stats()
        assert s["codec_raw_bytes"] == 400
        assert s["codec_wire_bytes"] == 100
        assert s["codec_bytes_saved"] == 300

    def test_routes_endpoint(self):
        import http.client
        import json

        from repro.serve import FrameHub
        from repro.serve.transport import HttpFrameServer

        hub = FrameHub(history=4)
        router = HybridRouter(RouterPolicy(wire_budget_bytes=1 << 20))
        router.decide(0, 100)
        server = HttpFrameServer(hub, None, router=router)
        server.start()
        try:
            conn = http.client.HTTPConnection(server.host, server.port,
                                              timeout=10)
            conn.request("GET", "/routes")
            resp = conn.getresponse()
            body = json.loads(resp.read())
            conn.close()
            assert resp.status == 200
            assert body["routes"]["intransit"] == 1
            assert body["decisions"][0]["route"] == "intransit"
        finally:
            server.stop()

    def test_routes_endpoint_without_router_is_404(self):
        import http.client

        from repro.serve import FrameHub
        from repro.serve.transport import HttpFrameServer

        server = HttpFrameServer(FrameHub(history=2), None)
        server.start()
        try:
            conn = http.client.HTTPConnection(server.host, server.port,
                                              timeout=10)
            conn.request("GET", "/routes")
            resp = conn.getresponse()
            resp.read()
            conn.close()
            assert resp.status == 404
        finally:
            server.stop()
