"""End-to-end codec accuracy: physics and pixels under the budget.

The error-budget satellite: a compressed in-transit RBC run must keep
the diagnostics the case is run *for* — the Nusselt number and the
rendered isosurfaces — within (a small multiple of) the codec budget,
and a lossless-routed run must produce frames byte-identical to an
uncompressed run, PNGs included.
"""

import numpy as np
import pytest

from repro.codec import CodecContext, CodecSpec
from repro.insitu import InTransitRunner
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import weak_scaled_rbc_case
from repro.nekrs.diagnostics import convective_heat_flux
from repro.parallel import SerialCommunicator, run_spmd
from repro.util.png import decode_png


def _case_builder(steps=3):
    def build(nsim):
        c = weak_scaled_rbc_case(nsim, elements_per_rank=4, order=3, dt=1e-3)
        return c.with_overrides(num_steps=steps)

    return build


def _run(tmp, codec=None, route="intransit", steps=3, total=5, **kw):
    runner = InTransitRunner(
        _case_builder(steps),
        mode="catalyst",
        ratio=4,
        num_steps=steps,
        stream_interval=1,
        arrays=("temperature", "velocity_magnitude"),
        output_dir=tmp,
        image_size=64,
        codec=codec,
        route=route,
        **kw,
    )
    return runner, run_spmd(total, runner.run)


class TestNusseltWithinBudget:
    def test_codec_roundtrip_preserves_nusselt(self):
        """<wT> from codec-decoded fields tracks the original within
        the propagated budget (|d<wT>| <= bound_w<|T|> + bound_T<|w|>)."""
        case = weak_scaled_rbc_case(2, elements_per_rank=4, order=4,
                                    dt=1e-3).with_overrides(num_steps=8)
        solver = NekRSSolver(case, SerialCommunicator())
        solver.run(8)
        w, T = solver.w, solver.T
        nu = convective_heat_flux(solver.ops, w, T)

        spec = CodecSpec.from_cli("delta-rle", "1e-3")
        ctx = CodecContext()
        from repro.adios.marshal import StepPayload, marshal_step, unmarshal_step

        payload = StepPayload(step=0, time=0.0, rank=0,
                              variables={"w": w, "T": T})
        out = unmarshal_step(marshal_step(payload, codec=spec, context=ctx),
                             context=CodecContext())
        wd, Td = out.variables["w"], out.variables["T"]
        bw = spec.config_for("w", w.dtype).budget.bound_for(w)
        bT = spec.config_for("T", T.dtype).budget.bound_for(T)
        assert np.abs(wd - w).max() <= bw + 1e-12
        assert np.abs(Td - T).max() <= bT + 1e-12
        nu_d = convective_heat_flux(solver.ops, wd, Td)
        tol = (bw * np.abs(Td).max() + bT * np.abs(w).max())
        assert abs(nu_d - nu) <= tol + 1e-12


class TestIntransitCodecRuns:
    def test_lossless_run_pngs_byte_identical(self, tmp_path):
        _, base = _run(tmp_path / "plain", codec=None)
        _, lossless = _run(tmp_path / "lossless", codec=CodecSpec.lossless())
        plain = sorted((tmp_path / "plain" / "catalyst").glob("*.png"))
        safe = sorted((tmp_path / "lossless" / "catalyst").glob("*.png"))
        assert len(plain) == len(safe) > 0
        for a, b in zip(plain, safe):
            assert a.name == b.name
            assert a.read_bytes() == b.read_bytes()

    def test_lossy_run_renders_within_budget(self, tmp_path):
        _, base = _run(tmp_path / "plain", codec=None)
        _, lossy = _run(tmp_path / "codec",
                        codec=CodecSpec.from_cli("delta-rle", "1e-3"))
        sims = [r for r in lossy if r.role == "simulation"]
        stats = sims[0].extra["codec"]
        assert stats["ratio"] > 1.5          # the wire actually shrank
        assert stats["wire_bytes"] < stats["raw_bytes"]
        plain = sorted((tmp_path / "plain" / "catalyst").glob("*.png"))
        comp = sorted((tmp_path / "codec" / "catalyst").glob("*.png"))
        assert len(plain) == len(comp) > 0
        for a, b in zip(plain, comp):
            pa = decode_png(a.read_bytes()).astype(float)
            pb = decode_png(b.read_bytes()).astype(float)
            assert pa.shape == pb.shape
            # a 1e-3-relative field budget moves isosurfaces by well
            # under a pixel: images agree except for a thin seam
            frac_diff = np.mean(np.abs(pa - pb).max(axis=-1) > 8)
            assert frac_diff < 0.02

    def test_hybrid_route_records_decisions(self, tmp_path):
        _, results = _run(tmp_path / "hyb", route="hybrid",
                          codec=CodecSpec.from_cli("delta-rle", "1e-3"))
        sims = [r for r in results if r.role == "simulation"]
        routes = sims[0].extra["routes"]
        assert sum(routes.values()) == 3     # one decision per step
        stats = sims[0].extra["router"]
        assert stats["mode"] == "hybrid"
        assert len(stats["decisions"]) == 3
        # every simulation rank made identical decisions (rank-uniform)
        assert all(r.extra["routes"] == routes for r in sims)
