"""Collective-semantics parity and metering regression tests.

The tree collectives in ``ThreadCommunicator`` must be *indistinguishable*
from the allgather-based reference algorithms in ``Communicator`` — same
results bit for bit (including float summation order), same metered
traffic — for every payload shape the codebase sends: scalars, ragged
lists, float64 and bool arrays, at group sizes both power-of-two and
ragged.  ``naive_mode()`` routes the same public API through the
reference impls, which is what makes the comparison honest.
"""

import numpy as np
import pytest

from repro.parallel import ReduceOp, run_spmd
from repro.parallel.comm import SerialCommunicator, TrafficMeter
from repro.parallel.thread_comm import _World
from repro.perf import naive_mode

SIZES = [1, 2, 3, 4, 5, 6, 7, 8, 9]
KINDS = ["scalar", "ragged", "float64", "bool"]


def _payload(kind, seed):
    """Deterministic payload for rank/slot `seed`."""
    if kind == "scalar":
        return seed * 3 + 1
    if kind == "ragged":
        return list(range(seed % 4 + 1))
    if kind == "float64":
        # irrational-ish values so float summation order matters
        return (np.arange(6, dtype=np.float64).reshape(2, 3) + 1) * (seed + 1) / 7.0
    if kind == "bool":
        return np.arange(8) % (seed + 2) == 0
    raise AssertionError(kind)


def _exercise(comm, kind):
    """Run every collective once; return all results."""
    size, rank, root = comm.size, comm.rank, comm.size // 2
    out = {
        "allgather": comm.allgather(_payload(kind, rank)),
        "bcast": comm.bcast(_payload(kind, 7) if rank == root else None, root),
        "gather": comm.gather(_payload(kind, rank), root),
        "scatter": comm.scatter(
            [_payload(kind, d + 1) for d in range(size)] if rank == root else None,
            root,
        ),
        "alltoall": comm.alltoall(
            [_payload(kind, rank + d) for d in range(size)]
        ),
    }
    if kind in ("scalar", "float64"):
        out["reduce_sum"] = comm.reduce(_payload(kind, rank), ReduceOp.SUM, root)
        out["reduce_min"] = comm.reduce(_payload(kind, rank), ReduceOp.MIN, root)
        out["allreduce_sum"] = comm.allreduce(_payload(kind, rank), ReduceOp.SUM)
        out["allreduce_max"] = comm.allreduce(_payload(kind, rank), ReduceOp.MAX)
    if kind == "bool":
        out["reduce_lor"] = comm.reduce(_payload(kind, rank), ReduceOp.LOR, root)
        out["allreduce_land"] = comm.allreduce(_payload(kind, rank), ReduceOp.LAND)
    return out


def _assert_same(a, b, path=""):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert isinstance(a, np.ndarray) and isinstance(b, np.ndarray), path
        assert a.dtype == b.dtype, f"{path}: {a.dtype} != {b.dtype}"
        assert a.shape == b.shape, path
        np.testing.assert_array_equal(a, b, err_msg=path)
    elif isinstance(a, (list, tuple)):
        assert type(a) is type(b) and len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_same(x, y, f"{path}[{i}]")
    elif isinstance(a, dict):
        assert a.keys() == b.keys(), path
        for k in a:
            _assert_same(a[k], b[k], f"{path}.{k}")
    else:
        assert type(a) is type(b) and a == b, f"{path}: {a!r} != {b!r}"


class TestTreeReferenceParity:
    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("kind", KINDS)
    def test_tree_matches_reference(self, size, kind):
        """Optimized collectives == allgather reference, bit for bit."""

        def naive_body(comm):
            # perf.config.enabled is thread-local: enter naive mode
            # inside each rank body so the flag is uniform group-wide
            with naive_mode():
                return _exercise(comm, kind)

        optimized = run_spmd(size, lambda c: _exercise(c, kind))
        reference = run_spmd(size, naive_body)
        for rank, (opt, ref) in enumerate(zip(optimized, reference)):
            _assert_same(opt, ref, f"rank{rank}")

    @pytest.mark.parametrize("kind", KINDS)
    def test_serial_matches_single_rank_group(self, kind):
        serial = _exercise(SerialCommunicator(), kind)
        threaded = run_spmd(1, lambda c: _exercise(c, kind))[0]
        _assert_same(serial, threaded, "size1")

    @pytest.mark.parametrize("size", [3, 4, 7, 8])
    def test_every_root(self, size):
        """Tree collectives work for any root, not just rank 0."""

        def body(comm):
            out = []
            for root in range(comm.size):
                out.append((
                    comm.bcast(comm.rank if comm.rank == root else None, root),
                    comm.gather(comm.rank * 2, root),
                    comm.scatter(
                        list(range(100, 100 + comm.size))
                        if comm.rank == root else None,
                        root,
                    ),
                    comm.reduce(comm.rank + 1, ReduceOp.SUM, root),
                ))
            return out

        for rank, res in enumerate(run_spmd(size, body)):
            for root, (b, g, s, r) in enumerate(res):
                assert b == root
                assert g == ([2 * x for x in range(size)] if rank == root else None)
                assert s == 100 + rank
                assert r == (size * (size + 1) // 2 if rank == root else None)


class TestMeteringRegression:
    """Satellite: collectives meter per-rank ingress on *every* rank.

    The old accounting metered derived collectives as a full allgather
    and recorded allgather only once — the hot-spot rank was invisible.
    """

    ARR = np.arange(10, dtype=np.float64)  # 80 bytes

    def _events(self, size, body):
        meter = TrafficMeter()
        run_spmd(size, body, meter=meter)
        return meter

    def test_bcast_records_on_every_rank(self):
        meter = self._events(4, lambda c: c.bcast(self.ARR if c.rank == 0 else None))
        assert meter.count("bcast") == 4
        assert meter.per_rank_bytes("bcast") == {0: 0, 1: 80, 2: 80, 3: 80}

    def test_gather_attributes_ingress_to_root(self):
        meter = self._events(4, lambda c: c.gather(self.ARR, root=2))
        assert meter.count("gather") == 4
        assert meter.per_rank_bytes("gather") == {0: 0, 1: 0, 2: 240, 3: 0}
        assert meter.peak_rank_bytes("gather") == 240

    def test_allgather_records_on_every_rank(self):
        meter = self._events(3, lambda c: c.allgather(self.ARR))
        assert meter.count("allgather") == 3
        assert meter.per_rank_bytes("allgather") == {0: 160, 1: 160, 2: 160}

    def test_scatter_and_alltoall_ingress(self):
        def body(c):
            c.scatter([self.ARR] * c.size if c.rank == 0 else None)
            c.alltoall([self.ARR for _ in range(c.size)])

        meter = self._events(3, body)
        assert meter.per_rank_bytes("scatter") == {0: 0, 1: 80, 2: 80}
        assert meter.per_rank_bytes("alltoall") == {0: 160, 1: 160, 2: 160}

    def test_reduce_and_allreduce_ingress(self):
        def body(c):
            c.reduce(self.ARR, ReduceOp.SUM, root=1)
            c.allreduce(self.ARR, ReduceOp.SUM)

        meter = self._events(3, body)
        assert meter.per_rank_bytes("reduce") == {0: 0, 1: 160, 2: 0}
        assert meter.per_rank_bytes("allreduce") == {0: 160, 1: 160, 2: 160}

    def test_tree_and_reference_meter_identically(self):
        """Ingress accounting is implementation-independent."""

        def traffic(comm):
            comm.bcast(self.ARR if comm.rank == 0 else None)
            comm.gather(self.ARR)
            comm.scatter([self.ARR] * comm.size if comm.rank == 0 else None)
            comm.alltoall([self.ARR for _ in range(comm.size)])
            comm.reduce(self.ARR)

        def naive_body(comm):
            with naive_mode():
                traffic(comm)

        opt, ref = TrafficMeter(), TrafficMeter()
        run_spmd(6, traffic, meter=opt)
        run_spmd(6, naive_body, meter=ref)
        for op in ("bcast", "gather", "scatter", "alltoall", "reduce"):
            assert opt.per_rank_bytes(op) == ref.per_rank_bytes(op), op

    def test_size_one_records_nothing(self):
        meter = self._events(1, lambda c: (c.bcast(self.ARR), None)[1])
        assert meter.count() == 0


class TestMailboxBound:
    """Satellite: the per-(src, dest, tag) mailbox table stays bounded."""

    def test_sweep_drops_cold_empty_queues(self):
        def body(comm):
            if comm.rank == 0:
                comm._world.mailbox_cap = 8
            comm.barrier()
            for tag in range(50):  # 50 distinct drained queues
                if comm.rank == 0:
                    comm.send(tag, 1, tag=tag)
                elif comm.rank == 1:
                    assert comm.recv(0, tag=tag) == tag
            comm.barrier()  # sweep runs here
            return len(comm._world.mailboxes)

        for n in run_spmd(2, body):
            assert n <= 8

    def test_sweep_never_drops_pending_messages(self):
        def body(comm):
            if comm.rank == 0:
                comm._world.mailbox_cap = 4
            comm.barrier()
            if comm.rank == 0:
                for tag in range(20):
                    comm.send(tag * 11, 1, tag=tag)
            comm.barrier()  # over cap, but every queue holds a message
            if comm.rank == 1:
                return [comm.recv(0, tag=tag) for tag in range(20)]
            return None

        results = run_spmd(2, body)
        assert results[1] == [tag * 11 for tag in range(20)]

    def test_default_cap_is_conservative(self):
        assert _World.mailbox_cap >= 16
