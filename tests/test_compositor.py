"""Sort-last compositor: parity, ghost exchange, and end-to-end identity.

The contract under test: for opaque surfaces, the distributed render
path — local rasterization + depth compositing — produces output
*pixel-identical* to gathering the volume and rendering at the root,
while moving ~one framebuffer instead of the whole volume to rank 0.
"""

import numpy as np
import pytest

from repro.catalyst.compositor import (
    composite,
    composite_binary_swap,
    composite_direct_send,
    exchange_ghost_layers,
    gather_composite,
    render_composited,
    _fragment_offsets,
)
from repro.catalyst.pipeline import RenderPipeline, RenderSpec
from repro.parallel import run_spmd
from repro.parallel.comm import TrafficMeter
from repro.perf import naive_mode
from repro.perf.arena import get_arena

H, W = 12, 16


def _rank_framebuffer(rank, seed=0):
    """Deterministic per-rank framebuffer with background (inf) holes."""
    rng = np.random.default_rng(1000 * (seed + 1) + rank)
    color = rng.integers(0, 255, size=(H, W, 3), dtype=np.uint8)
    depth = rng.uniform(1.0, 9.0, size=(H, W)).astype(np.float32)
    depth[rng.random((H, W)) < 0.3] = np.inf  # not covered by this rank
    return color, depth


class TestCompositeParity:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 6, 7, 8, 9])
    @pytest.mark.parametrize("method", ["binary_swap", "direct_send", "auto"])
    def test_matches_gather_reference(self, size, method):
        if method == "binary_swap" and size & (size - 1):
            pytest.skip("binary_swap auto-falls back; covered by auto")

        def body(comm):
            color, depth = _rank_framebuffer(comm.rank)
            ref = gather_composite(comm, color.copy(), depth.copy())
            out = composite(comm, color.copy(), depth.copy(), method=method)
            return ref, out

        for rank, (ref, out) in enumerate(run_spmd(size, body)):
            if rank == 0:
                np.testing.assert_array_equal(out[0], ref[0])
                np.testing.assert_array_equal(out[1], ref[1])
            else:
                assert out is None and ref is None

    @pytest.mark.parametrize("size", [4, 6])
    def test_equal_depth_ties_break_by_rank(self, size):
        """Exact depth ties pick the lowest rank — same as the gather
        reference's first-wins merge, so composition order is moot."""

        def body(comm):
            color = np.full((H, W, 3), 10 * (comm.rank + 1), dtype=np.uint8)
            depth = np.full((H, W), 2.5, dtype=np.float32)
            ref = gather_composite(comm, color.copy(), depth.copy())
            out = composite(comm, color.copy(), depth.copy())
            return ref, out

        ref, out = run_spmd(size, body)[0]
        np.testing.assert_array_equal(out[0], np.full((H, W, 3), 10, np.uint8))
        np.testing.assert_array_equal(out[0], ref[0])

    def test_binary_swap_rejects_ragged_group(self):
        def body(comm):
            color, depth = _rank_framebuffer(comm.rank)
            with pytest.raises(ValueError, match="power-of-two"):
                composite_binary_swap(comm, color, depth)
            return True

        assert all(run_spmd(3, body))

    def test_naive_mode_routes_through_gather(self):
        """Under naive_mode the dispatcher must not touch the network
        schemes (their mailbox protocol assumes uniform flags)."""

        def body(comm):
            with naive_mode():
                color, depth = _rank_framebuffer(comm.rank)
                ref = gather_composite(comm, color.copy(), depth.copy())
                out = composite(comm, color.copy(), depth.copy())
            return ref, out

        ref, out = run_spmd(4, body)[0]
        np.testing.assert_array_equal(out[0], ref[0])

    def test_unknown_method_raises(self):
        def body(comm):
            color, depth = _rank_framebuffer(comm.rank)
            with pytest.raises(ValueError, match="unknown compositing"):
                composite(comm, color, depth, method="sort_first")
            return True

        assert all(run_spmd(2, body))

    def test_arena_balanced_after_composite(self):
        def body(comm):
            color, depth = _rank_framebuffer(comm.rank)
            composite(comm, color, depth, method="direct_send")
            return get_arena().outstanding

        assert run_spmd(4, body) == [0, 0, 0, 0]


class TestGhostExchange:
    def _global_field(self, nx, ny, nz):
        z, y, x = np.meshgrid(
            np.arange(nz), np.arange(ny), np.arange(nx), indexing="ij"
        )
        return np.sin(x * 0.7) + np.cos(y * 1.3) * z  # [z, y, x]

    def _tile(self, field, fx, fy, fz, nranks):
        """Tile the [z, y, x] field into (fx, fy, fz) fragments,
        dealt round-robin over ranks; returns per-rank fragment lists."""
        nz, ny, nx = field.shape
        per_rank = [[] for _ in range(nranks)]
        i = 0
        for oz in range(0, nz, fz):
            for oy in range(0, ny, fy):
                for ox in range(0, nx, fx):
                    frag = (
                        (float(ox), float(oy), float(oz)),
                        (fx, fy, fz),
                        {"v": field[oz:oz + fz, oy:oy + fy, ox:ox + fx].copy()},
                    )
                    per_rank[i % nranks].append(frag)
                    i += 1
        return per_rank

    @pytest.mark.parametrize("nranks", [2, 4])
    def test_extended_volumes_match_global(self, nranks):
        field = self._global_field(4, 4, 4)
        per_rank = self._tile(field, 2, 2, 2, nranks)  # 8 fragments

        def body(comm):
            frags = per_rank[comm.rank]
            offsets = _fragment_offsets(frags, (0, 0, 0), (1, 1, 1))
            ext_frags, scratch = exchange_ghost_layers(comm, frags, offsets, ["v"])
            out = []
            for off, dims, ext_dims, vols in ext_frags:
                out.append((off, dims, ext_dims, vols["v"].copy()))
            get_arena().release(*scratch)
            assert get_arena().outstanding == 0
            return out

        for rank_result in run_spmd(nranks, body):
            for (ox, oy, oz), dims, (ex, ey, ez), ext in rank_result:
                # interior fragments grow by one ghost plane per axis,
                # boundary fragments stay put
                assert (ex, ey, ez) == tuple(
                    d + (1 if o + d < 4 else 0)
                    for d, o in zip(dims, (ox, oy, oz))
                )
                expected = field[oz:oz + ez, oy:oy + ey, ox:ox + ex]
                np.testing.assert_array_equal(ext, expected)

    def test_single_rank_identity(self):
        field = self._global_field(4, 4, 2)
        per_rank = self._tile(field, 2, 2, 2, 1)

        def body(comm):
            frags = per_rank[comm.rank]
            offsets = _fragment_offsets(frags, (0, 0, 0), (1, 1, 1))
            ext_frags, scratch = exchange_ghost_layers(comm, frags, offsets, ["v"])
            vols = [v["v"].copy() for _, _, _, v in ext_frags]
            get_arena().release(*scratch)
            return [(o, d, e) for o, d, e, _ in ext_frags], vols

        metas, vols = run_spmd(1, body)[0]
        for ((ox, oy, oz), dims, (ex, ey, ez)), ext in zip(metas, vols):
            np.testing.assert_array_equal(
                ext, field[oz:oz + ez, oy:oy + ey, ox:ox + ex]
            )


def _make_fragments(gdims, arrays, fx, fy, fz):
    """Synthetic smooth fields tiled into uniform fragments (all ranks
    see the same deterministic global data)."""
    nx, ny, nz = gdims
    z, y, x = np.meshgrid(
        np.arange(nz, dtype=float),
        np.arange(ny, dtype=float),
        np.arange(nx, dtype=float),
        indexing="ij",
    )
    cx, cy, cz = (nx - 1) / 2, (ny - 1) / 2, (nz - 1) / 2
    r = np.sqrt((x - cx) ** 2 + (y - cy) ** 2 + (z - cz) ** 2)
    fields = {}
    for i, name in enumerate(arrays):
        fields[name] = np.cos(r * (0.4 + 0.1 * i)) + 0.05 * np.sin(x + y * (i + 1))
    frags = []
    for oz in range(0, nz, fz):
        for oy in range(0, ny, fy):
            for ox in range(0, nx, fx):
                payload = {
                    n: f[oz:oz + fz, oy:oy + fy, ox:ox + fx].copy()
                    for n, f in fields.items()
                }
                frags.append(((float(ox), float(oy), float(oz)), (fx, fy, fz), payload))
    return fields, frags


def _assemble(fields, gdims):
    from repro.vtkdata.arrays import DataArray
    from repro.vtkdata.dataset import ImageData

    image = ImageData(dims=gdims, origin=(0, 0, 0), spacing=(1, 1, 1))
    for name, f in fields.items():
        image.add_array(DataArray(name, f.ravel()))
    return image


PIPELINE = RenderPipeline(
    specs=[
        RenderSpec(kind="contour", array="q", isovalue=0.3, color_array="t"),
        RenderSpec(kind="slice", array="t", axis="y"),
    ],
    width=96,
    height=96,
    name="synth",
)


class TestRenderComposited:
    """Distributed pipeline == serial pipeline on the assembled volume."""

    @pytest.mark.parametrize("size,method", [
        (1, "binary_swap"),
        (2, "binary_swap"),
        (4, "binary_swap"),
        (3, "direct_send"),
        (6, "binary_swap"),  # ragged: auto-falls back to direct send
        (8, "binary_swap"),
    ])
    def test_pixel_identical_to_serial(self, size, method):
        gdims = (12, 12, 12)
        fields, frags = _make_fragments(gdims, ["q", "t"], 6, 6, 6)
        reference = PIPELINE.render(_assemble(fields, gdims), step=3, time=0.25)

        def body(comm):
            mine = [f for i, f in enumerate(frags) if i % comm.size == comm.rank]
            return render_composited(
                comm, PIPELINE, mine, gdims, (0, 0, 0), (1, 1, 1),
                step=3, time=0.25, method=method,
            )

        results = run_spmd(size, body)
        assert all(r is None for r in results[1:])
        outputs = results[0]
        assert [n for n, _ in outputs] == [n for n, _ in reference]
        for (name, frame), (_, ref_frame) in zip(outputs, reference):
            np.testing.assert_array_equal(frame, ref_frame, err_msg=name)

    def test_threshold_specs_match_serial(self):
        gdims = (12, 12, 12)
        fields, frags = _make_fragments(gdims, ["q", "t"], 6, 6, 6)
        pipeline = RenderPipeline(
            specs=[
                RenderSpec(
                    kind="contour", array="q", isovalue=0.3, color_array="t",
                    threshold_array="t", threshold_min=-0.5, threshold_max=0.9,
                ),
                RenderSpec(kind="slice", array="q", axis="z",
                           threshold_array="t", threshold_min=0.0),
            ],
            width=80, height=64, name="thresh",
        )
        reference = pipeline.render(_assemble(fields, gdims), step=1, time=0.5)

        def body(comm):
            mine = [f for i, f in enumerate(frags) if i % comm.size == comm.rank]
            return render_composited(
                comm, pipeline, mine, gdims, (0, 0, 0), (1, 1, 1),
                step=1, time=0.5,
            )

        outputs = run_spmd(4, body)[0]
        for (name, frame), (_, ref_frame) in zip(outputs, reference):
            np.testing.assert_array_equal(frame, ref_frame, err_msg=name)

    def test_peak_rank_traffic_reduced_4x_vs_gather(self):
        """The acceptance bound: at 8 ranks the compositor's hottest
        rank moves <= 1/4 the bytes of the gather-to-root path."""
        size = 8
        gdims = (48, 48, 48)
        fields, frags = _make_fragments(gdims, ["q", "t"], 24, 24, 12)

        def gather_body(comm):
            mine = [f for i, f in enumerate(frags) if i % comm.size == comm.rank]
            gathered = comm.gather(mine)
            if gathered is None:
                return None
            return PIPELINE.render(_assemble(fields, gdims), step=0, time=0.0)

        def composite_body(comm):
            mine = [f for i, f in enumerate(frags) if i % comm.size == comm.rank]
            return render_composited(
                comm, PIPELINE, mine, gdims, (0, 0, 0), (1, 1, 1),
                step=0, time=0.0,
            )

        gather_meter, comp_meter = TrafficMeter(), TrafficMeter()
        run_spmd(size, gather_body, meter=gather_meter)
        run_spmd(size, composite_body, meter=comp_meter)
        gather_peak = gather_meter.peak_rank_bytes()
        comp_peak = comp_meter.peak_rank_bytes()
        assert comp_peak > 0
        assert gather_peak >= 4 * comp_peak, (
            f"peak ingress: gather {gather_peak} vs composited {comp_peak}"
        )


class TestEndToEndPipeline:
    """pb146-analog: the full Bridge with compositing vs gather."""

    XML = """
    <sensei>
      <analysis type="catalyst" mesh="uniform" array="velocity_magnitude"
                color_array="temperature" isovalue="0.35" slice_axis="y"
                width="96" height="96" frequency="2" compositing="{mode}"/>
    </sensei>
    """

    def _run(self, nranks, mode, outdir):
        from repro.insitu import Bridge
        from repro.nekrs import NekRSSolver
        from repro.nekrs.cases import pebble_bed_case

        outdir.mkdir(parents=True, exist_ok=True)

        def body(comm):
            case = pebble_bed_case(
                num_pebbles=6, elements_per_unit=2, order=3, dt=2e-3
            )
            solver = NekRSSolver(case, comm)
            bridge = Bridge(
                solver, config_xml=self.XML.format(mode=mode), output_dir=outdir
            )
            solver.run(2, observer=bridge.observer)
            bridge.finalize()

        run_spmd(nranks, body)
        return {p.name: p.read_bytes() for p in sorted(outdir.glob("*.png"))}

    @pytest.mark.parametrize("nranks", [4, 6])
    def test_composited_pngs_identical_to_gather(self, nranks, tmp_path):
        ref = self._run(nranks, "gather", tmp_path / "gather")
        out = self._run(nranks, "binary_swap", tmp_path / "swap")
        assert ref.keys() == out.keys()
        assert len(ref) == 2  # surface + slice at step 2
        for name in ref:
            assert out[name] == ref[name], f"{name} differs from gather reference"
