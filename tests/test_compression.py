"""Tests for SZ-lite compression and the CompressedIO analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.insitu import NekDataAdaptor
from repro.sensei.analyses import CompressedIO
from repro.util.compress import (
    compress_field,
    compression_ratio,
    decompress_field,
)


class TestCompressField:
    def test_error_bound_respected(self, rng):
        arr = rng.normal(size=(8, 6, 6, 6))
        bound = 1e-3
        out, b = decompress_field(compress_field(arr, bound))
        assert b == bound
        assert out.shape == arr.shape
        assert np.abs(out - arr).max() <= bound + 1e-12

    def test_smooth_field_compresses_hard(self):
        x = np.linspace(0, 1, 64)
        smooth = np.sin(2 * np.pi * x)[None, :] * np.ones((64, 1))
        assert compression_ratio(smooth, 1e-4) > 10.0

    def test_noise_compresses_worse_than_smooth(self, rng):
        noise = rng.normal(size=(64, 64))
        x = np.linspace(0, 1, 64)
        smooth = np.sin(2 * np.pi * x)[None, :] * np.ones((64, 1))
        assert compression_ratio(smooth, 1e-4) > compression_ratio(noise, 1e-4)

    def test_looser_bound_smaller_output(self, rng):
        arr = rng.normal(size=(32, 32))
        tight = len(compress_field(arr, 1e-8))
        loose = len(compress_field(arr, 1e-2))
        assert loose < tight

    def test_zeros(self):
        out, _ = decompress_field(compress_field(np.zeros(100), 1e-6))
        np.testing.assert_array_equal(out, 0.0)

    def test_empty(self):
        out, _ = decompress_field(compress_field(np.zeros(0), 1e-6))
        assert out.size == 0

    def test_huge_values_lossless_fallback(self):
        arr = np.array([1e30, -1e30, 5e29])
        out, _ = decompress_field(compress_field(arr, 1e-6))
        np.testing.assert_array_equal(out, arr)

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            compress_field(np.zeros(4), 0.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            compress_field(np.array([np.nan]), 1e-6)

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            decompress_field(b"nope")

    @settings(max_examples=25, deadline=None)
    @given(
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200
        ),
        bound=st.floats(1e-9, 1.0),
    )
    def test_property_error_bound(self, values, bound):
        arr = np.asarray(values)
        out, _ = decompress_field(compress_field(arr, bound))
        assert np.abs(out - arr).max() <= bound * (1 + 1e-9) + 1e-15


class TestCompressedIO:
    def test_writes_and_beats_raw(self, comm, tiny_solver, tmp_path):
        tiny_solver.run(2)
        adaptor = NekDataAdaptor(tiny_solver)
        adaptor.set_data_time_step(2)
        io = CompressedIO(
            comm, tmp_path, arrays=("pressure", "velocity_x"),
            error_bound=1e-5,
        )
        io.execute(adaptor)
        files = list(tmp_path.glob("*.szl"))
        assert len(files) == 2
        assert io.bytes_written == sum(p.stat().st_size for p in files)
        assert io.achieved_ratio > 1.5   # smooth SEM fields compress

    def test_reconstruction_within_bound(self, comm, tiny_solver, tmp_path):
        tiny_solver.run(2)
        adaptor = NekDataAdaptor(tiny_solver)
        adaptor.set_data_time_step(2)
        bound = 1e-6
        io = CompressedIO(comm, tmp_path, arrays=("pressure",), error_bound=bound)
        io.execute(adaptor)
        payload = next(tmp_path.glob("pressure_*.szl")).read_bytes()
        out, _ = decompress_field(payload)
        assert np.abs(out - tiny_solver.p.ravel()).max() <= bound + 1e-12

    def test_xml_construction(self, comm, tiny_solver, tmp_path):
        from repro.insitu import Bridge

        xml = (
            f'<sensei><analysis type="compressed_io" arrays="pressure" '
            f'error_bound="1e-4" output="{tmp_path}" frequency="1"/></sensei>'
        )
        bridge = Bridge(tiny_solver, config_xml=xml, output_dir=tmp_path)
        tiny_solver.run(2, observer=bridge.observer)
        assert len(list(tmp_path.glob("*.szl"))) == 2

    def test_invalid_bound(self, comm, tmp_path):
        with pytest.raises(ValueError):
            CompressedIO(comm, tmp_path, error_bound=-1.0)
