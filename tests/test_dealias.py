"""Tests for quadrature over-integration (dealiasing)."""

import math

import numpy as np
import pytest

from repro.nekrs import NekRSSolver
from repro.nekrs.config import CaseDefinition
from repro.parallel import SerialCommunicator
from repro.sem import BoxMesh, SEMOperators
from repro.sem.dealias import (
    dealias_points,
    dealiased_product,
    project_back,
    to_fine,
)
from repro.sem.quadrature import gauss_nodes_weights


class TestGaussQuadrature:
    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_weights_sum_to_two(self, n):
        _, w = gauss_nodes_weights(n)
        assert w.sum() == pytest.approx(2.0)

    def test_no_endpoints(self):
        x, _ = gauss_nodes_weights(5)
        assert x.min() > -1.0 and x.max() < 1.0

    @pytest.mark.parametrize("n", [2, 4])
    def test_exact_to_2n_minus_1(self, n):
        x, w = gauss_nodes_weights(n)
        for deg in range(2 * n):
            exact = 0.0 if deg % 2 else 2.0 / (deg + 1)
            assert w @ x**deg == pytest.approx(exact, abs=1e-13)


class TestProjection:
    def test_three_halves_rule(self):
        assert dealias_points(4) == 8   # ceil(3*5/2)
        assert dealias_points(7) == 12

    def test_roundtrip_identity_on_polynomials(self, rng):
        """project_back(to_fine(f)) == f for any P_N field."""
        order = 4
        f = rng.normal(size=(2, 5, 5, 5))
        out = project_back(to_fine(f, order), order)
        np.testing.assert_allclose(out, f, atol=1e-11)

    def test_product_exact_when_representable(self):
        """If a*b has degree <= N the dealiased product is exact."""
        order = 5
        mesh = BoxMesh((2, 2, 2), order=order)
        x, y, z = mesh.coords()
        a = x**2
        b = y * z          # product degree 4 <= 5
        out = dealiased_product(a, b, order)
        np.testing.assert_allclose(out, a * b, atol=1e-10)

    def test_product_is_l2_projection_not_interpolation(self):
        """For an over-degree product, dealiasing differs from the
        collocation product and is closer in L2 to the true product."""
        order = 3
        mesh = BoxMesh((1, 1, 1), ((0, 0, 0), (1, 1, 1)), order=order)
        ops = SEMOperators(mesh, SerialCommunicator())
        x, _, _ = mesh.coords()
        a = x**order
        b = x**order
        colloc = a * b                       # interpolates x^6 at nodes
        deal = dealiased_product(a, b, order)
        assert not np.allclose(deal, colloc)
        # compare L2 errors against the true product on a fine grid
        from repro.sem.dealias import to_fine as tf
        from repro.sem.quadrature import gauss_nodes_weights

        m = 10
        xf = tf(x, order, m)
        truth = xf ** (2 * order)
        _, w1 = gauss_nodes_weights(m)
        w3 = w1[None, :, None, None] * w1[None, None, :, None] * w1[None, None, None, :]
        err_deal = float((w3 * (tf(deal, order, m) - truth) ** 2).sum())
        err_colloc = float((w3 * (tf(colloc, order, m) - truth) ** 2).sum())
        assert err_deal < err_colloc


class TestConvectDealiased:
    def test_matches_collocation_for_resolved_fields(self):
        mesh = BoxMesh((2, 2, 2), order=5)
        ops = SEMOperators(mesh, SerialCommunicator())
        x, y, z = mesh.coords()
        f = x**2 + y          # grad degree 1; u degree 1 -> product deg 2
        u, v, w = y, x, np.zeros_like(x)
        np.testing.assert_allclose(
            ops.convect_dealiased(f, u, v, w),
            ops.convect(f, u, v, w),
            atol=1e-10,
        )

    def test_best_l2_approximation_of_discrete_product(self):
        """The dealiased result is the L2-optimal P_N representation of
        the discrete product u_N * df_N/dx; collocation (its
        interpolant) is strictly worse when the product aliases."""
        L = 2 * math.pi
        order = 5
        mesh = BoxMesh((2, 2, 2), ((0, 0, 0), (L, L, L)), order=order,
                       periodic=(True, True, True))
        ops = SEMOperators(mesh, SerialCommunicator())
        x, y, z = mesh.coords()
        u = np.sin(3 * x) * np.cos(2 * y)
        v = w = np.zeros_like(x)
        f = np.cos(4 * x)
        colloc = ops.convect(f, u, v, w)
        deal = ops.convect_dealiased(f, u, v, w)

        # the discrete product, exact on a fine Gauss grid (both
        # factors are P_N, so the pointwise fine-grid product is exact)
        m = 12
        fx, _, _ = ops.grad(f)
        target = to_fine(u, order, m) * to_fine(fx, order, m)
        _, w1 = gauss_nodes_weights(m)
        w3 = (
            w1[None, :, None, None]
            * w1[None, None, :, None]
            * w1[None, None, None, :]
        )
        err_deal = float((w3 * (to_fine(deal, order, m) - target) ** 2).sum())
        err_colloc = float((w3 * (to_fine(colloc, order, m) - target) ** 2).sum())
        assert err_deal < err_colloc

    def test_solver_runs_with_dealiasing(self):
        case = CaseDefinition(
            name="tgv-dealias",
            mesh_shape=(2, 2, 2),
            extent=((0, 0, 0), (2 * math.pi,) * 3),
            order=5,
            periodic=(True, True, True),
            viscosity=0.05,
            dt=0.02,
            num_steps=5,
            dealias=True,
            initial_velocity=lambda x, y, z: (
                np.sin(x) * np.cos(y), -np.cos(x) * np.sin(y), np.zeros_like(x),
            ),
        )
        solver = NekRSSolver(case, SerialCommunicator())
        reports = solver.run(5)
        assert all(np.isfinite(r.divergence_norm) for r in reports)
        # physics still right: decay rate close to analytic
        ke0 = 0.25 * (2 * math.pi) ** 3  # KE of TGV at t=0 on this box
        expected = ke0 * math.exp(-4 * case.viscosity * solver.time)
        assert solver.kinetic_energy() == pytest.approx(expected, rel=5e-3)

    def test_dealiased_solver_matches_collocation_when_resolved(self):
        """On a well-resolved field both advection schemes give nearly
        the same trajectory."""
        kwargs = dict(
            name="x",
            mesh_shape=(2, 2, 2),
            extent=((0, 0, 0), (2 * math.pi,) * 3),
            order=7,
            periodic=(True, True, True),
            viscosity=0.05,
            dt=0.02,
            num_steps=3,
            initial_velocity=lambda x, y, z: (
                np.sin(x) * np.cos(y), -np.cos(x) * np.sin(y), np.zeros_like(x),
            ),
        )
        plain = NekRSSolver(CaseDefinition(**kwargs), SerialCommunicator())
        deal = NekRSSolver(
            CaseDefinition(**{**kwargs, "dealias": True}), SerialCommunicator()
        )
        plain.run(3)
        deal.run(3)
        rel = plain.ops.norm(plain.u - deal.u) / plain.ops.norm(plain.u)
        # the two advection schemes differ only by residual aliasing in
        # the (well-resolved) nonlinear term
        assert rel < 1e-4
