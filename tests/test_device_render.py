"""Device-resident render path: parity, PCIe accounting, allocations.

The pipeline invariant under test (ISSUE 9): with ``residency="device"``
the contour/slice/colormap/raster/composite stages run as registered
``repro.occa`` kernels on :class:`DeviceMemory`, the only per-step D2H
is the composited tile on the writing rank, and every rendered PNG is
byte-identical to the host-resident path — optimized and under
``naive_mode()`` alike.
"""

import numpy as np
import pytest

from repro.bench.workloads import measurement_pebble_case
from repro.insitu import Bridge
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import weak_scaled_rbc_case
from repro.occa import Device
from repro.parallel import SerialCommunicator, run_spmd
from repro.perf.arena import get_arena
from repro.perf.config import naive_mode

pytestmark = [pytest.mark.device, pytest.mark.timeout(240)]

WIDTH = HEIGHT = 96
TILE_BYTES = WIDTH * HEIGHT * 3  # one composited RGB framebuffer

XML = f"""<sensei>
  <analysis type="catalyst" array="velocity_magnitude" isovalue="0.05"
            slice_axis="y" width="{WIDTH}" height="{HEIGHT}" frequency="1"
            compositing="{{comp}}" residency="{{res}}"/>
</sensei>"""


def _case(name: str, num_steps: int = 2):
    if name == "pebble":
        return measurement_pebble_case(
            num_pebbles=2, elements_per_unit=2, order=3, num_steps=num_steps
        )
    return weak_scaled_rbc_case(
        6, elements_per_rank=2, order=3, dt=1e-3
    ).with_overrides(num_steps=num_steps)


def _render(case, ranks, comp, res, outdir, naive=False):
    """One SPMD render run; returns ({png name: bytes}, per-rank d2h)."""

    def body(comm):
        def inner():
            device = Device("cuda-sim")
            solver = NekRSSolver(case, comm, device)
            bridge = Bridge(
                solver,
                config_xml=XML.format(comp=comp, res=res),
                output_dir=outdir,
            )
            solver.run(observer=bridge.observer)
            bridge.finalize()
            return device.transfers.d2h_bytes

        if naive:
            # perf.config is thread-local: enter the reference mode
            # inside each spawned rank, not around run_spmd
            with naive_mode():
                return inner()
        return inner()

    d2h = run_spmd(ranks, body)
    return {p.name: p.read_bytes() for p in sorted(outdir.glob("*.png"))}, d2h


class TestGoldenParity:
    """Device vs host vs naive reference, PNG-byte-equal."""

    @pytest.mark.parametrize(
        "case_name,ranks,comp",
        [
            ("pebble", 1, "gather"),
            ("pebble", 4, "binary_swap"),
            ("rbc", 6, "binary_swap"),  # non-pow2: direct-send fallback
        ],
    )
    def test_device_matches_host_and_naive(self, tmp_path, case_name, ranks, comp):
        case = _case(case_name)
        host, host_d2h = _render(case, ranks, comp, "host", tmp_path / "host")
        dev, dev_d2h = _render(case, ranks, comp, "device", tmp_path / "dev")
        ref, _ = _render(case, ranks, comp, "host", tmp_path / "ref", naive=True)

        # both passes (contour + slice) at both steps
        assert len(host) == 4
        assert host.keys() == dev.keys() == ref.keys()
        for name in host:
            assert dev[name] == host[name], f"device != host: {name}"
            assert ref[name] == host[name], f"naive != host: {name}"

        # PCIe accounting: host residency pulls the full field set on
        # every rank; device residency pays exactly one composited tile
        # per written frame, on the writing rank only
        assert all(b > 0 for b in host_d2h)
        assert dev_d2h[0] == len(dev) * TILE_BYTES
        assert all(b == 0 for b in dev_d2h[1:])

    def test_device_kernels_keep_naive_twins(self, tmp_path):
        """residency='device' under naive_mode still renders, byte-equal."""
        case = _case("pebble")
        host, _ = _render(case, 1, "gather", "host", tmp_path / "host")
        devn, devn_d2h = _render(
            case, 1, "gather", "device", tmp_path / "devn", naive=True
        )
        assert host.keys() == devn.keys() and host
        for name in host:
            assert devn[name] == host[name]
        assert devn_d2h[0] == len(devn) * TILE_BYTES


class TestPcieObservability:
    def test_counters_and_d2h_span(self, tmp_path):
        from repro.observe.session import Telemetry, active
        from repro.observe.tracer import SpanEvent

        case = _case("pebble")
        tel = Telemetry.create()
        with active(tel):
            device = Device("cuda-sim")
            solver = NekRSSolver(case, SerialCommunicator(), device)
            bridge = Bridge(
                solver,
                config_xml=XML.format(comp="gather", res="device"),
                output_dir=tmp_path,
            )
            solver.run(observer=bridge.observer)
            bridge.finalize()

        d2h = tel.metrics.get("repro_pcie_d2h_bytes_total")
        assert d2h is not None
        assert d2h.value == device.transfers.d2h_bytes > 0

        spans = [
            e for e in tel.tracer.events
            if isinstance(e, SpanEvent) and e.name == "catalyst.d2h"
        ]
        assert len(spans) == 4  # one per written frame
        assert sum(s.args["nbytes"] for s in spans) == d2h.value

    def test_observe_top_shows_pcie_line(self):
        from repro.observe.live.export import _pcie_line

        class _FakeMetrics:
            def __init__(self, values):
                self._values = values

            def get(self, name):
                value = self._values.get(name)
                if value is None:
                    return None
                return type("C", (), {"value": value})()

        class _FakePlane:
            def __init__(self, values):
                self._metrics = _FakeMetrics(values)

            def merged_metrics(self):
                return self._metrics

        assert _pcie_line(_FakePlane({})) is None
        line = _pcie_line(_FakePlane({
            "repro_pcie_h2d_bytes_total": 2048.0,
            "repro_pcie_d2h_bytes_total": 110592.0,
        }))
        assert "h2d" in line and "d2h" in line and "108" in line


class TestSteadyStateAllocations:
    # slice-only pipeline: the contour pass intentionally *adopts* its
    # framebuffer out of the pool every frame (it escapes to the PNG
    # writer), which is a per-frame allocation by design — the staging
    # path under test here must be allocation-free without it
    SLICE_XML = (
        f'<sensei><analysis type="catalyst" array="velocity_magnitude" '
        f'slice_axis="y" width="{WIDTH}" height="{HEIGHT}" frequency="1" '
        f'compositing="gather" residency="{{res}}"/></sensei>'
    )

    @pytest.mark.parametrize("res", ["host", "device"])
    def test_no_new_arena_misses_after_warmup(self, tmp_path, res):
        """Mirrors the CG no-allocation assertion: once the pools are
        warm, neither the device arena nor the host workspace arena
        sees a fresh allocation per in situ step — the gather staging
        reuses arena scratch instead of fresh arrays."""
        case = _case("pebble", num_steps=6)
        device = Device("cuda-sim")
        solver = NekRSSolver(case, SerialCommunicator(), device)
        bridge = Bridge(
            solver,
            config_xml=self.SLICE_XML.format(res=res),
            output_dir=tmp_path,
        )
        solver.run(2, observer=bridge.observer)  # warm the pools
        dev_misses = device.arena.misses
        host_misses = get_arena().misses
        scratch = bridge.adaptor.scratch_arena
        scratch_misses = scratch.misses
        solver.run(3, observer=bridge.observer)
        assert device.arena.misses == dev_misses
        assert get_arena().misses == host_misses
        # the adaptor's private host-mirror pool is warm too: D2H
        # staging recycles the same buffers instead of fresh arrays
        assert scratch.misses == scratch_misses
        assert scratch.outstanding == 0
        assert device.arena.outstanding == 0
        bridge.finalize()


class TestResidencyValidation:
    def _pipeline(self):
        from repro.catalyst.pipeline import RenderPipeline, RenderSpec

        return RenderPipeline(
            specs=[RenderSpec(kind="slice", array="pressure", axis="y")],
            width=32, height=32, name="t",
        )

    def test_rejects_unknown_residency(self, comm):
        from repro.sensei.analyses.catalyst_adaptor import CatalystAnalysisAdaptor

        with pytest.raises(ValueError, match="residency"):
            CatalystAnalysisAdaptor(
                comm, self._pipeline(), arrays=("pressure",), residency="gpu"
            )

    def test_device_requires_declarative_pipeline(self, comm):
        from repro.sensei.analyses.catalyst_adaptor import CatalystAnalysisAdaptor

        with pytest.raises(ValueError, match="declarative RenderPipeline"):
            CatalystAnalysisAdaptor(
                comm, lambda image, step, time: [], arrays=("pressure",),
                residency="device",
            )

    def test_xml_pythonscript_rejects_device(self, comm, tmp_path):
        from repro.sensei.analyses.catalyst_adaptor import CatalystAnalysisAdaptor

        attrs = {"pipeline": "pythonscript", "residency": "device",
                 "array": "pressure"}
        with pytest.raises(ValueError, match="builtin"):
            CatalystAnalysisAdaptor.from_xml_attributes(comm, attrs, tmp_path)

    def test_device_requires_device_capable_data(self, comm, tmp_path):
        from repro.sensei.analyses.catalyst_adaptor import CatalystAnalysisAdaptor

        adaptor = CatalystAnalysisAdaptor(
            comm, self._pipeline(), arrays=("pressure",),
            output_dir=tmp_path, residency="device",
        )

        class HostOnlyData:
            def get_data_time_step(self):
                return 0

            def get_data_time(self):
                return 0.0

        with pytest.raises(TypeError, match="device-capable"):
            adaptor.execute(HostOnlyData())
