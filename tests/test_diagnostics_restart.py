"""Tests for derived diagnostics and full-state restart."""

import math

import numpy as np
import pytest

from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case, rayleigh_benard_case
from repro.nekrs.diagnostics import (
    convective_heat_flux,
    q_criterion,
    vorticity,
    vorticity_magnitude,
)
from repro.nekrs.restart import (
    load_state_dict,
    read_restart,
    state_dict,
    write_restart,
)
from repro.parallel import SerialCommunicator, run_spmd
from repro.sem import BoxMesh, SEMOperators


@pytest.fixture
def ops():
    mesh = BoxMesh((2, 2, 2), ((0, 0, 0), (2 * math.pi,) * 3), order=6,
                   periodic=(True, True, True))
    return SEMOperators(mesh, SerialCommunicator())


class TestVorticity:
    def test_solid_body_rotation(self, ops):
        """u = (-y, x, 0) has vorticity (0, 0, 2)."""
        x, y, z = ops.mesh.coords()
        ox, oy, oz = vorticity(ops, -y, x, np.zeros_like(x))
        np.testing.assert_allclose(ox, 0.0, atol=1e-9)
        np.testing.assert_allclose(oy, 0.0, atol=1e-9)
        np.testing.assert_allclose(oz, 2.0, atol=1e-9)

    def test_irrotational_field(self, ops):
        """A gradient field (x, y, z) has zero curl."""
        x, y, z = ops.mesh.coords()
        ox, oy, oz = vorticity(ops, x, y, z)
        for comp in (ox, oy, oz):
            np.testing.assert_allclose(comp, 0.0, atol=1e-9)

    def test_magnitude_of_shear(self, ops):
        """u = (z, 0, 0): curl = (0, 1, 0), magnitude 1."""
        x, y, z = ops.mesh.coords()
        mag = vorticity_magnitude(ops, z, np.zeros_like(x), np.zeros_like(x))
        np.testing.assert_allclose(mag, 1.0, atol=1e-9)

    def test_continuized_single_valued(self, ops):
        x, y, z = ops.mesh.coords()
        u = np.sin(x) * np.cos(y)
        mag = vorticity_magnitude(ops, u, np.zeros_like(u), np.zeros_like(u))
        np.testing.assert_allclose(ops.continuize(mag), mag, atol=1e-12)


class TestQCriterion:
    def test_rotation_positive(self, ops):
        """Solid-body rotation is all rotation: Q > 0."""
        x, y, z = ops.mesh.coords()
        q = q_criterion(ops, -y, x, np.zeros_like(x))
        np.testing.assert_allclose(q, 1.0, atol=1e-9)  # Q = |Omega|^2/2 = 1

    def test_pure_strain_negative(self, ops):
        """Pure strain (x, -y, 0): Q < 0."""
        x, y, z = ops.mesh.coords()
        q = q_criterion(ops, x, -y, np.zeros_like(x))
        np.testing.assert_allclose(q, -1.0, atol=1e-9)

    def test_pure_shear_zero(self, ops):
        """Simple shear u=(y,0,0) splits evenly: Q = 0."""
        x, y, z = ops.mesh.coords()
        q = q_criterion(ops, y, np.zeros_like(x), np.zeros_like(x))
        np.testing.assert_allclose(q, 0.0, atol=1e-9)


class TestHeatFlux:
    def test_aligned_flux_positive(self, ops):
        shape = ops.mesh.field_shape()
        assert convective_heat_flux(ops, np.ones(shape), np.ones(shape)) == pytest.approx(1.0)

    def test_no_flow_zero(self, ops):
        shape = ops.mesh.field_shape()
        assert convective_heat_flux(ops, np.zeros(shape), np.ones(shape)) == 0.0


class TestAdaptorDiagnostics:
    def test_vorticity_and_q_served(self, tiny_solver):
        from repro.insitu import NekDataAdaptor

        tiny_solver.run(2)
        adaptor = NekDataAdaptor(tiny_solver)
        md = adaptor.get_mesh_metadata(0)
        assert "vorticity_magnitude" in md.array_names
        assert "q_criterion" in md.array_names
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "vorticity_magnitude")
        adaptor.add_array(mesh, "mesh", "point", "q_criterion")
        block = mesh.get_block(0)
        assert block.point_data["vorticity_magnitude"].values.min() >= 0.0
        assert np.isfinite(block.point_data["q_criterion"].values).all()


class TestRestart:
    def _case(self, temperature=False):
        if temperature:
            return rayleigh_benard_case(
                rayleigh=1e4, aspect=(1, 1), elements_per_unit=2, order=3,
                dt=5e-3, num_steps=10,
            )
        return lid_cavity_case(elements=2, order=3, dt=5e-3, num_steps=10)

    @pytest.mark.parametrize("temperature", [False, True])
    def test_bitexact_continuation(self, tmp_path, temperature):
        """n+m direct steps == n steps -> restart -> m steps, bit for bit."""
        case = self._case(temperature)
        comm = SerialCommunicator()
        direct = NekRSSolver(case, comm)
        direct.run(5)

        first = NekRSSolver(case, SerialCommunicator())
        first.run(3)
        write_restart(tmp_path, first)

        resumed = NekRSSolver(case, SerialCommunicator())
        read_restart(tmp_path, resumed)
        assert resumed.step_index == 3
        resumed.run(2)

        np.testing.assert_array_equal(resumed.u, direct.u)
        np.testing.assert_array_equal(resumed.p, direct.p)
        if temperature:
            np.testing.assert_array_equal(resumed.T, direct.T)
        assert resumed.time == direct.time

    def test_state_dict_roundtrip(self, tiny_solver):
        tiny_solver.run(3)
        fields = state_dict(tiny_solver)
        fresh = NekRSSolver(tiny_solver.case, SerialCommunicator())
        load_state_dict(fresh, fields)
        np.testing.assert_array_equal(fresh.u, tiny_solver.u)
        assert len(fresh._hist_u) == len(tiny_solver._hist_u)

    def test_shape_mismatch_rejected(self, tiny_solver):
        tiny_solver.run(1)
        fields = state_dict(tiny_solver)
        other = NekRSSolver(
            lid_cavity_case(elements=3, order=3, dt=5e-3), SerialCommunicator()
        )
        with pytest.raises(ValueError, match="mismatch"):
            load_state_dict(other, fields)

    def test_missing_restart_raises(self, tmp_path, tiny_solver):
        with pytest.raises(FileNotFoundError):
            read_restart(tmp_path, tiny_solver)

    def test_rank_count_mismatch_rejected(self, tmp_path):
        case = self._case()

        def writer(comm):
            s = NekRSSolver(case, comm)
            s.run(1)
            write_restart(tmp_path, s)

        run_spmd(2, writer)
        single = NekRSSolver(case, SerialCommunicator())
        with pytest.raises(ValueError, match="ranks"):
            read_restart(tmp_path, single)

    def test_parallel_restart(self, tmp_path):
        case = self._case()

        def run_and_dump(comm):
            s = NekRSSolver(case, comm)
            s.run(2)
            write_restart(tmp_path, s)
            s.run(2)
            return s.kinetic_energy()

        def resume(comm):
            s = NekRSSolver(case, comm)
            read_restart(tmp_path, s)
            s.run(2)
            return s.kinetic_energy()

        expected = run_spmd(2, run_and_dump)[0]
        resumed = run_spmd(2, resume)[0]
        assert resumed == pytest.approx(expected, rel=1e-14)
