"""Smoke tests: the example scripts' core bodies run end to end.

Full example runs take minutes; these tests execute the same rank
bodies with the smallest viable parameters, asserting each example's
headline behavior rather than its full output.
"""

import numpy as np
import pytest

from repro.insitu import Bridge, InTransitRunner
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import (
    lid_cavity_case,
    pebble_bed_case,
    rayleigh_benard_case,
    weak_scaled_rbc_case,
)
from repro.occa import Device
from repro.parallel import run_spmd


class TestQuickstartFlow:
    def test_xml_instrumented_cavity(self, tmp_path):
        xml = f"""
        <sensei>
          <analysis type="histogram" mesh="mesh" array="pressure"
                    bins="8" frequency="2"/>
          <analysis type="catalyst" mesh="uniform"
                    array="velocity_magnitude" isovalue="0.2"
                    slice_axis="y" width="64" height="64" frequency="2"/>
        </sensei>
        """

        def body(comm):
            case = lid_cavity_case(reynolds=100, elements=2, order=3,
                                   dt=5e-3, num_steps=2)
            solver = NekRSSolver(case, comm, Device("cuda-sim"))
            bridge = Bridge(solver, config_xml=xml, output_dir=tmp_path)
            solver.run(observer=bridge.observer)
            bridge.finalize()
            return solver.device.transfers.d2h_bytes

        d2h = run_spmd(2, body)
        assert all(b > 0 for b in d2h)
        assert list(tmp_path.glob("*.png"))
        assert (tmp_path / "histogram_pressure.txt").exists()


class TestPebbleBedFlow:
    def test_catalyst_images_smaller_than_checkpoints(self, tmp_path):
        from repro.nekrs.checkpoint import write_checkpoint

        case = pebble_bed_case(num_pebbles=2, elements_per_unit=2, order=3,
                               dt=1e-3, num_steps=2, viscosity=5e-2)
        xml = (
            '<sensei><analysis type="catalyst" mesh="uniform" '
            'array="temperature" isovalue="0.45" width="96" height="96" '
            'frequency="2"/></sensei>'
        )

        def body(comm):
            solver = NekRSSolver(case, comm, Device("cuda-sim"))
            bridge = Bridge(solver, config_xml=xml, output_dir=tmp_path)
            ckpt = 0
            for _ in range(2):
                r = solver.step()
                if r.step % 2 == 0:
                    _, n = write_checkpoint(
                        tmp_path / "fld", case.name, r.step, r.time,
                        comm.rank, comm.size,
                        {"pressure": solver.p, "temperature": solver.T,
                         "velocity_x": solver.u, "velocity_y": solver.v,
                         "velocity_z": solver.w},
                    )
                    ckpt += n
                    bridge.update(r.step, r.time)
            bridge.finalize()
            images = bridge.analysis.adaptors[0][1].image_bytes
            return ckpt, images

        results = run_spmd(2, body)
        total_ckpt = sum(r[0] for r in results)
        total_img = sum(r[1] for r in results)
        assert 0 < total_img < total_ckpt


class TestRBCFlow:
    def test_convection_grows(self):
        case = rayleigh_benard_case(
            rayleigh=2e5, aspect=(2, 1), elements_per_unit=2, order=3,
            dt=4e-3, num_steps=8,
        )

        def body(comm):
            solver = NekRSSolver(case, comm)
            flux = []
            for _ in range(8):
                solver.step()
                flux.append(solver.ops.integrate(solver.w * solver.T))
            return flux

        flux = run_spmd(1, body)[0]
        assert flux[-1] > flux[0] > 0  # buoyant flux switching on


class TestInTransitFlow:
    def test_three_modes_one_pass(self, tmp_path):
        def case_builder(nsim):
            c = weak_scaled_rbc_case(nsim, elements_per_rank=4, order=2,
                                     dt=1e-3)
            return c.with_overrides(num_steps=2)

        results = {}
        for mode in ("none", "catalyst"):
            runner = InTransitRunner(
                case_builder, mode=mode, ratio=2, num_steps=2,
                stream_interval=1, arrays=("temperature",),
                output_dir=tmp_path / mode, image_size=48,
            )
            out = run_spmd(3, runner.run)
            results[mode] = out
        none_mem = max(
            r.memory_bytes for r in results["none"] if r.role == "simulation"
        )
        cat_mem = max(
            r.memory_bytes for r in results["catalyst"] if r.role == "simulation"
        )
        # streaming adds bounded staging, not a copy of the endpoint's work
        assert cat_mem < 3 * none_mem


class TestSteeringFlow:
    def test_steady_state_stops_early(self, tmp_path):
        xml = (
            '<sensei><analysis type="steady_state" '
            'array="velocity_magnitude" tolerance="0.5" patience="2" '
            'frequency="1"/></sensei>'
        )

        def body(comm):
            case = lid_cavity_case(reynolds=100, elements=2, order=3,
                                   dt=1e-2, num_steps=50)
            solver = NekRSSolver(case, comm)
            bridge = Bridge(solver, config_xml=xml, output_dir=tmp_path)
            taken = 0
            for _ in range(case.num_steps):
                r = solver.step()
                taken = r.step
                if not bridge.update(r.step, r.time):
                    break
            return taken

        taken = run_spmd(1, body)[0]
        assert taken < 50  # the loose tolerance trips well before budget
