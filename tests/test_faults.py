"""Fault-injection and fault-tolerance tests (ISSUE 1).

Covers: seeded injector determinism, retry/backoff semantics, CRC
corruption detection and skipping, typed stall detection, graceful
degradation to checkpoint fallback, the Discard queue-full race, and
the 4-writer/1-endpoint in-transit run that survives a mid-run
endpoint crash with full fault accounting.
"""

import queue
import threading

import numpy as np
import pytest

from repro.adios import (
    SSTBroker,
    SSTReaderEngine,
    SSTWriterEngine,
    StepPayload,
    StepStatus,
    marshal_step,
    unmarshal_step,
)
from repro.faults import (
    FAULT_KINDS,
    CorruptPayloadError,
    EndpointDownError,
    FaultInjector,
    FaultLog,
    RankStallError,
    RetryPolicy,
    StreamTimeout,
    TransportError,
)

pytestmark = pytest.mark.faults


# -- injector ---------------------------------------------------------------


class TestFaultInjectorDeterminism:
    def _schedule(self, seed):
        inj = FaultInjector(seed=seed, probabilities={"corrupt_payload": 0.4,
                                                      "drop_step": 0.3})
        return [
            (kind, step, key)
            for kind in ("corrupt_payload", "drop_step")
            for step in range(60)
            for key in range(4)
            if inj.fires(kind, "site", step, key)
        ]

    def test_same_seed_same_schedule(self):
        assert self._schedule(11) == self._schedule(11)

    def test_fires_are_stateless(self):
        # repeated queries for the same coordinates agree — the draw
        # must not depend on call order (thread interleaving)
        inj = FaultInjector(seed=5, probabilities={"drop_step": 0.5})
        first = inj.fires("drop_step", "broker.put", 7, 2)
        for _ in range(5):
            inj.fires("drop_step", "broker.put", 1, 1)  # unrelated draws
        assert inj.fires("drop_step", "broker.put", 7, 2) == first

    def test_different_seed_different_schedule(self):
        assert self._schedule(11) != self._schedule(12)

    def test_schedule_fires_exactly_at_steps(self):
        inj = FaultInjector(seed=0, schedule={"endpoint_crash": (3, 5)})
        fired = [s for s in range(10) if inj.fires("endpoint_crash", "loop", s)]
        assert fired == [3, 5]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(probabilities={"gremlins": 1.0})
        with pytest.raises(ValueError):
            FaultInjector().fires("gremlins", "site", 0)

    def test_maybe_records_injection(self):
        inj = FaultInjector(seed=0, schedule={"drop_step": (1,)})
        assert inj.maybe("drop_step", "broker.put", 0) is None
        event = inj.maybe("drop_step", "broker.put", 1)
        assert event is not None and event.kind == "drop_step"
        assert inj.log.injected["drop_step"] == 1

    def test_corrupt_always_changes_bytes_deterministically(self):
        inj = FaultInjector(seed=9, schedule={"corrupt_payload": (0,)})
        event = inj.maybe("corrupt_payload", "broker.get", 0)
        data = bytes(range(64))
        out1 = inj.corrupt(data, event)
        out2 = inj.corrupt(data, event)
        assert out1 != data
        assert out1 == out2


class TestFaultLog:
    def test_resolution_identity(self):
        log = FaultLog()
        inj = FaultInjector(seed=0, schedule={"drop_step": (0, 1, 2)}, log=log)
        for s in range(3):
            inj.maybe("drop_step", "broker.put", s)
        assert not log.accounted
        assert log.try_resolve("drop_step", "detected")
        assert log.try_resolve("drop_step", "recovered")
        assert log.try_resolve("drop_step", "degraded")
        assert log.accounted
        # clamped: no over-resolution once every fault has an outcome
        assert not log.try_resolve("drop_step", "detected")
        assert log.snapshot()["detected"]["drop_step"] == 1

    def test_bad_outcome_rejected(self):
        with pytest.raises(ValueError):
            FaultLog().try_resolve("drop_step", "vanished")


# -- retry ------------------------------------------------------------------


class TestRetryPolicy:
    def test_retry_then_succeed(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.001)
        attempts = []

        def op(attempt):
            attempts.append(attempt)
            if attempt < 3:
                raise StreamTimeout("not yet")
            return "done"

        retried = []
        assert policy.call(op, on_retry=lambda a, e: retried.append(a)) == "done"
        assert attempts == [1, 2, 3]
        assert retried == [1, 2]

    def test_exhaustion_raises_endpoint_down(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.001)

        def op(attempt):
            raise StreamTimeout("still dead")

        with pytest.raises(EndpointDownError) as err:
            policy.call(op)
        assert isinstance(err.value.__cause__, StreamTimeout)

    def test_non_retryable_passes_through(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.001)

        def op(attempt):
            raise EndpointDownError("terminal")

        with pytest.raises(EndpointDownError):
            policy.call(op)

    def test_backoff_deterministic_and_capped(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3,
                             jitter=0.25, seed=4)
        delays = [policy.backoff(a) for a in range(1, 8)]
        assert delays == [policy.backoff(a) for a in range(1, 8)]
        assert all(d <= 0.3 * 1.25 for d in delays)
        nojit = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.3, jitter=0.0)
        assert nojit.backoff(1) == pytest.approx(0.1)
        assert nojit.backoff(5) == pytest.approx(0.3)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


# -- CRC integrity ----------------------------------------------------------


class TestPayloadIntegrity:
    def _payload(self):
        return StepPayload(3, 0.25, 1, {"u": np.arange(16.0)}, {"a": "b"})

    def test_roundtrip_with_crc(self):
        out = unmarshal_step(marshal_step(self._payload()))
        np.testing.assert_array_equal(out.variables["u"], np.arange(16.0))

    @pytest.mark.parametrize("pos", [5, 9, 30, -1])
    def test_flipped_byte_detected(self, pos):
        data = bytearray(marshal_step(self._payload()))
        data[pos] ^= 0x40
        with pytest.raises(CorruptPayloadError):
            unmarshal_step(bytes(data))

    def test_corrupt_error_is_transport_and_value_error(self):
        assert issubclass(CorruptPayloadError, TransportError)
        assert issubclass(CorruptPayloadError, ValueError)

    def test_legacy_v1_payload_still_reads(self):
        data = marshal_step(self._payload())
        legacy = b"RBP1" + data[8:]  # v1: same body, no CRC header
        assert unmarshal_step(legacy).step == 3


# -- broker injection sites -------------------------------------------------


class TestBrokerInjection:
    def test_drop_step_is_detected_and_skipped(self):
        inj = FaultInjector(seed=0, schedule={"drop_step": (1,)})
        broker = SSTBroker(num_writers=1, queue_limit=4, injector=inj)
        broker.put(0, b"step0", step=0)
        broker.put(0, b"dropped", step=1)
        broker.put(0, b"step2", step=2)
        assert broker.get(0) == b"step0"
        assert broker.get(0) == b"step2"
        assert broker.stats.steps_discarded == 1
        snap = broker.stats.faults.snapshot()
        assert snap["injected"]["drop_step"] == 1
        assert snap["detected"]["drop_step"] == 1

    def test_stall_and_slow_consumer_resolve_recovered(self):
        inj = FaultInjector(
            seed=0,
            schedule={"writer_stall": (0,), "slow_consumer": (0,)},
            delays={"writer_stall": 0.0, "slow_consumer": 0.0},
        )
        broker = SSTBroker(num_writers=1, injector=inj)
        broker.put(0, b"x", step=0)
        broker.get(0, step=0)
        assert broker.stats.faults.accounted
        snap = broker.stats.faults.snapshot()
        assert snap["recovered"] == {"writer_stall": 1, "slow_consumer": 1}

    def test_corrupted_payload_skipped_by_reader(self):
        inj = FaultInjector(seed=0, schedule={"corrupt_payload": (0,)})
        broker = SSTBroker(num_writers=1, injector=inj)
        writer = SSTWriterEngine("s", broker, 0)
        reader = SSTReaderEngine("s", broker, [0])
        for step in (0, 1):
            writer.set_step_info(step, 0.0)
            writer.begin_step()
            writer.put("u", np.arange(4.0))
            writer.end_step()
        # read step 0 is corrupted in flight: OK status, empty payloads
        assert reader.begin_step() is StepStatus.OK
        assert reader.payloads() == {}
        reader.end_step()
        assert reader.corrupt_steps == 1
        assert broker.stats.steps_corrupt == 1
        assert broker.stats.faults.accounted
        # read step 1 arrives intact
        assert reader.begin_step() is StepStatus.OK
        assert 0 in reader.payloads()

    def test_writer_retry_exhaustion_raises_endpoint_down(self):
        broker = SSTBroker(num_writers=1, queue_limit=1)
        retry = RetryPolicy(max_attempts=3, base_delay=0.001, attempt_timeout=0.01)
        writer = SSTWriterEngine("s", broker, 0, retry=retry)
        writer.begin_step()
        writer.put("u", np.zeros(2))
        writer.end_step()  # fills the queue; nobody reads
        writer.begin_step()
        writer.put("u", np.zeros(2))
        with pytest.raises(EndpointDownError):
            writer.end_step()
        assert broker.stats.faults.retries == 2
        # step state was reset despite the failure: the writer survives
        assert writer.begin_step() is StepStatus.OK

    def test_marked_down_broker_fails_fast(self):
        broker = SSTBroker(num_writers=1)
        broker.mark_endpoint_down()
        with pytest.raises(EndpointDownError):
            broker.put(0, b"x")
        writer = SSTWriterEngine("s", broker, 0)
        with pytest.raises(EndpointDownError):
            writer.begin_step()
        writer.close()  # sentinel skipped; must not block or raise

    def test_stream_timeout_is_typed(self):
        broker = SSTBroker(num_writers=1, queue_limit=1, timeout=0.01)
        broker.put(0, b"x")
        with pytest.raises(StreamTimeout):
            broker.put(0, b"y")
        assert issubclass(StreamTimeout, TimeoutError)  # seed compatibility


class TestDiscardRace:
    def test_discard_loops_until_put_succeeds(self):
        """Hammer a Discard broker with a concurrent reader: the seed's
        drop-oldest-then-put sequence could observe Full twice; the fix
        loops until the put lands and never leaks queue.Full."""
        broker = SSTBroker(num_writers=1, queue_limit=1,
                           queue_full_policy="Discard")
        n = 400
        errors = []
        drained = []

        def reader():
            for _ in range(10 * n):
                try:
                    drained.append(broker.queues[0].get_nowait())
                except queue.Empty:
                    pass

        t = threading.Thread(target=reader, daemon=True)
        t.start()
        for i in range(n):
            try:
                broker.put(0, b"%d" % i)
            except Exception as exc:  # noqa: BLE001 - the regression under test
                errors.append(exc)
        t.join()
        assert errors == []
        assert broker.stats.steps_put == n
        # every step is accounted: delivered, discarded, or still staged
        left = broker.queues[0].qsize()
        assert len(drained) + broker.stats.steps_discarded + left == n


# -- typed stall detection --------------------------------------------------


class TestRankStall:
    def test_barrier_timeout_raises_rank_stall(self):
        from repro.parallel import ThreadCommunicator

        comms = ThreadCommunicator.create_group(2)
        comms[0].timeout = 0.05
        with pytest.raises(RankStallError) as err:
            comms[0].barrier()  # rank 1 never arrives
        assert err.value.rank == 0
        assert err.value.channel == "default"
        assert "stalled" in str(err.value)
        assert isinstance(err.value, TimeoutError)  # SPMD driver contract


# -- graceful degradation ---------------------------------------------------


def _sst_bridge(tiny_solver, tmp_path, fallback):
    """A bridge streaming into a broker nobody reads (dead endpoint)."""
    from repro.insitu.bridge import Bridge
    from repro.sensei.analyses.adios_adaptor import ADIOSAnalysisAdaptor

    broker = SSTBroker(num_writers=1, queue_limit=1)
    retry = RetryPolicy(max_attempts=2, base_delay=0.001, attempt_timeout=0.01)
    engine = SSTWriterEngine("s", broker, 0, retry=retry)
    adios = ADIOSAnalysisAdaptor(
        tiny_solver.comm, engine, mesh_name="mesh", arrays=("pressure",)
    )
    bridge = Bridge(
        tiny_solver,
        analysis=adios,
        fallback=fallback,
        fallback_dir=tmp_path / "fallback",
    )
    return bridge, broker


class TestGracefulDegradation:
    def test_degrades_to_checkpoint_and_keeps_stepping(self, tiny_solver, tmp_path):
        bridge, broker = _sst_bridge(tiny_solver, tmp_path, "checkpoint")
        for _ in range(3):
            report = tiny_solver.step()
            assert bridge.update(report.step, report.time) is True
        bridge.finalize()
        # step 1 fit the queue; steps 2 and 3 degraded to local .fld dumps
        assert bridge.degraded_steps == 2
        assert bridge.transport_down
        assert bridge.fallback_bytes > 0
        dumps = list((tmp_path / "fallback").iterdir())
        assert len(dumps) == 2
        # degradation marked the endpoint down so peers fail fast
        assert broker.endpoint_down.is_set()

    def test_drop_fallback_skips_without_files(self, tiny_solver, tmp_path):
        bridge, _ = _sst_bridge(tiny_solver, tmp_path, "drop")
        for _ in range(3):
            report = tiny_solver.step()
            assert bridge.update(report.step, report.time) is True
        bridge.finalize()
        assert bridge.degraded_steps == 2
        assert bridge.fallback_bytes == 0
        assert not (tmp_path / "fallback").exists()

    def test_raise_fallback_preserves_seed_behavior(self, tiny_solver, tmp_path):
        bridge, _ = _sst_bridge(tiny_solver, tmp_path, "raise")
        report = tiny_solver.step()
        assert bridge.update(report.step, report.time) is True
        report = tiny_solver.step()
        with pytest.raises(EndpointDownError):
            bridge.update(report.step, report.time)

    def test_invalid_fallback_rejected(self, tiny_solver):
        from repro.insitu.bridge import Bridge

        with pytest.raises(ValueError):
            Bridge(tiny_solver, config_xml="<sensei></sensei>", fallback="pray")


# -- the acceptance scenario ------------------------------------------------


@pytest.mark.timeout(120)
class TestFaultedInTransitRun:
    def test_endpoint_crash_run_completes_with_full_accounting(self, tmp_path):
        """4 writers : 1 endpoint, endpoint crash mid-run + in-flight
        corruption: every sim rank completes every timestep, writers
        degrade to checkpoint fallback, and the FaultLog accounts for
        every injected fault."""
        from repro.bench.robustness import run_faulted_intransit

        out = run_faulted_intransit(
            total_ranks=5,
            steps=8,
            crash_step=3,
            corrupt_probability=0.25,  # high enough to observe detections
            seed=7,
            output_dir=tmp_path,
        )
        sims = [r for r in out["results"] if r.role == "simulation"]
        ends = [r for r in out["results"] if r.role == "endpoint"]
        assert len(sims) == 4 and len(ends) == 1

        # the run is never lost: all timesteps complete on every writer
        assert all(r.steps == 8 for r in sims)
        # the endpoint did crash mid-run
        assert ends[0].extra["crashed"]
        assert ends[0].steps < 8

        # degradation kicked in past the retry budget
        log = out["faults"]
        snap = log.snapshot()
        assert snap["injected"]["endpoint_crash"] == 1
        assert snap["degraded"]["endpoint_crash"] == 1
        assert snap["retries"] > 0
        assert sum(r.extra["degraded_steps"] for r in sims) > 0
        fallback_dumps = list((tmp_path / "fallback").iterdir())
        assert len(fallback_dumps) == sum(r.extra["degraded_steps"] for r in sims)

        # corruption was detected and skipped, never propagated
        assert snap["injected"].get("corrupt_payload", 0) > 0
        assert snap["detected"].get("corrupt_payload", 0) == snap["injected"][
            "corrupt_payload"
        ]

        # the accounting identity: injected == detected + recovered + degraded
        assert log.accounted

    def test_same_seed_reproduces_fault_counts(self, tmp_path):
        from repro.bench.robustness import run_faulted_intransit

        a = run_faulted_intransit(steps=5, crash_step=2, seed=13,
                                  corrupt_probability=0.3,
                                  output_dir=tmp_path / "a")
        b = run_faulted_intransit(steps=5, crash_step=2, seed=13,
                                  corrupt_probability=0.3,
                                  output_dir=tmp_path / "b")
        assert a["faults"].snapshot()["injected"] == b["faults"].snapshot()["injected"]


class TestRobustnessBenchTable:
    def test_table_reports_accounting(self, tmp_path):
        from repro.bench.robustness import fault_tolerance

        table = fault_tolerance(steps=6, crash_step=2, seed=7,
                                output_dir=tmp_path)
        text = table.render()
        assert "endpoint_crash" in text
        assert "UNACCOUNTED" not in text
        rows = {r[0]: r[1:] for r in table.rows}
        injected, detected, recovered, degraded = rows["TOTAL"]
        assert injected == detected + recovered + degraded


# -- endpoint empty-step handling -------------------------------------------


class TestEmptyStreamStep:
    def test_all_corrupt_step_skipped_by_endpoint_loop(self):
        """An all-corrupt stream step reaches the adaptor as an empty
        payload dict: consume() skips it instead of crashing."""
        from repro.insitu.streamed import StreamedDataAdaptor
        from repro.parallel import SerialCommunicator

        inj = FaultInjector(seed=0, schedule={"corrupt_payload": (0,)})
        broker = SSTBroker(num_writers=2, injector=inj)
        writers = [SSTWriterEngine("s", broker, w) for w in range(2)]
        reader = SSTReaderEngine("s", broker, [0, 1])
        for w, eng in enumerate(writers):
            eng.set_step_info(0, 0.0)
            eng.begin_step()
            eng.put("u", np.arange(3.0))
            eng.end_step()
        assert reader.begin_step() is StepStatus.OK
        adaptor = StreamedDataAdaptor(SerialCommunicator())
        assert adaptor.consume(reader.payloads()) is False
        assert adaptor.empty_steps == 1
        assert reader.corrupt_steps == 2
