"""Tests for file-staged in transit: XML-configured BPFile streaming +
posthoc replay through a SENSEI consumer."""

import numpy as np
import pytest

from repro.insitu import Bridge
from repro.insitu.streamed import replay_file_staged
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.parallel import SerialCommunicator, run_spmd
from repro.sensei.analyses import VTKPosthocIO
from repro.sensei.analysis_adaptor import AnalysisAdaptor


class _Collector(AnalysisAdaptor):
    def __init__(self):
        self.steps = []
        self.finalized = False

    def execute(self, data):
        mesh = data.get_mesh("mesh")
        data.add_array(mesh, "mesh", "point", "pressure")
        self.steps.append(
            (data.get_data_time_step(),
             mesh.get_block(0).point_data["pressure"].values.copy())
        )
        return True

    def finalize(self):
        self.finalized = True


def _stage_run(tmp_path, comm, steps=3):
    """Simulate + stage BP files via the XML adios analysis."""
    xml = (
        f'<sensei><analysis type="adios" engine="BPFile" stream="stage" '
        f'directory="{tmp_path}" arrays="pressure,velocity_x" '
        f'frequency="1"/></sensei>'
    )
    case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3)
    solver = NekRSSolver(case, comm)
    bridge = Bridge(solver, config_xml=xml, output_dir=tmp_path)
    solver.run(steps, observer=bridge.observer)
    bridge.finalize()
    return solver


class TestFileStaged:
    def test_xml_adios_analysis_writes_bp_files(self, tmp_path, comm):
        _stage_run(tmp_path, comm, steps=2)
        files = sorted(tmp_path.glob("stage.step*.bp"))
        assert len(files) == 2

    def test_replay_reconstructs_every_step(self, tmp_path, comm):
        solver = _stage_run(tmp_path, comm, steps=3)
        collector = _Collector()
        consumed = replay_file_staged(tmp_path, "stage", 1, collector, comm)
        assert consumed == 3
        assert collector.finalized
        assert [s for s, _ in collector.steps] == [1, 2, 3]
        # the final staged state equals the live final state
        np.testing.assert_array_equal(
            collector.steps[-1][1], solver.p.ravel()
        )

    def test_replay_into_vtu_writer(self, tmp_path, comm):
        """The full degraded-mode pipeline: stage to files, replay the
        endpoint later, write VTU — no live endpoint required."""
        _stage_run(tmp_path / "bp", comm, steps=2)
        io = VTKPosthocIO(
            comm, tmp_path / "vtu", arrays=("pressure", "velocity_x")
        )
        consumed = replay_file_staged(tmp_path / "bp", "stage", 1, io, comm)
        assert consumed == 2
        assert len(list((tmp_path / "vtu").glob("*.vtu"))) == 2

    def test_multi_writer_staging(self, tmp_path):
        """Two sim ranks stage independently; one consumer replays both."""

        def body(comm):
            _stage_run(tmp_path, comm, steps=2)
            return None

        run_spmd(2, body)
        collector = _Collector()
        consumed = replay_file_staged(
            tmp_path, "stage", 2, collector, SerialCommunicator()
        )
        assert consumed == 2

    def test_ragged_series_detected(self, tmp_path, comm):
        _stage_run(tmp_path, comm, steps=2)
        # fabricate a second writer with fewer steps
        from repro.adios.engine import BPFileWriterEngine

        w = BPFileWriterEngine("stage", tmp_path, writer_rank=1)
        w.set_step_info(1, 0.005)
        w.begin_step()
        w.put("block_ids", np.array([1], dtype=np.int64))
        w.end_step()
        with pytest.raises(ValueError, match="ragged"):
            replay_file_staged(tmp_path, "stage", 2, _Collector(), comm)
