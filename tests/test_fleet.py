"""Elastic endpoint fleet tests (PR 6 tentpole).

Units for every fleet piece — consistent-hash ring, heartbeat-lease
membership, work-stealing queues, autoscaler, coordinator — plus the
acceptance scenarios: killing 1 of 4 endpoints mid-run completes with
zero lost committed steps, and the fleet path's output is
byte-identical to the retained static split when no faults fire.

Satellites covered here too: the SSTBroker shutdown race (a blocked
``get`` fails fast with ``EndpointDownError`` when the broker closes
or a producer dies), ``RetryPolicy.max_elapsed_s`` + retry counters,
``(step, key)`` injector schedule entries, and ``dump_thread_stacks``.
"""

from __future__ import annotations

import io
import threading
import time

import numpy as np
import pytest

from repro.adios.engine import SSTBroker, SSTWriterEngine
from repro.faults.errors import EndpointDownError, StreamTimeout
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy
from repro.fleet import (
    Autoscaler,
    AutoscalerConfig,
    Directive,
    EndpointState,
    FleetConfig,
    FleetCoordinator,
    FleetMembership,
    HashRing,
    RenderTask,
    WorkQueues,
)
from repro.insitu import InTransitRunner
from repro.nekrs.cases import weak_scaled_rbc_case
from repro.observe.session import Telemetry, active
from repro.parallel import run_spmd
from repro.parallel.runtime import dump_thread_stacks
from repro.perf.config import naive_mode

pytestmark = pytest.mark.fleet


class _Clock:
    """Deterministic monotonic clock for lease tests."""

    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- hash ring --------------------------------------------------------------


class TestHashRing:
    KEYS = [("writer", w) for w in range(32)]

    def test_deterministic_across_instances(self):
        a = HashRing(members=(0, 1, 2), seed=3)
        b = HashRing(members=(2, 0, 1), seed=3)  # insertion order irrelevant
        assert a.assignment(self.KEYS) == b.assignment(self.KEYS)

    def test_seed_changes_assignment(self):
        a = HashRing(members=(0, 1, 2), seed=0).assignment(self.KEYS)
        b = HashRing(members=(0, 1, 2), seed=1).assignment(self.KEYS)
        assert a != b

    def test_remove_moves_only_the_removed_members_keys(self):
        ring = HashRing(members=(0, 1, 2, 3), seed=1)
        before = ring.assignment(self.KEYS)
        ring.remove(2)
        after = ring.assignment(self.KEYS)
        moved = HashRing.moved(before, after)
        assert moved == {k for k, owner in before.items() if owner == 2}
        assert all(after[k] != 2 for k in moved)

    def test_add_moves_keys_only_onto_the_new_member(self):
        ring = HashRing(members=(0, 1, 2), seed=1)
        before = ring.assignment(self.KEYS)
        ring.add(3)
        after = ring.assignment(self.KEYS)
        moved = HashRing.moved(before, after)
        assert moved  # a new member takes over some arcs
        assert all(after[k] == 3 for k in moved)

    def test_remove_then_readd_restores_assignment(self):
        ring = HashRing(members=(0, 1, 2), seed=5)
        before = ring.assignment(self.KEYS)
        ring.remove(1)
        ring.add(1)
        assert ring.assignment(self.KEYS) == before

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().assign(("writer", 0))

    def test_membership_views(self):
        ring = HashRing(members=(2, 0), seed=0)
        assert ring.members == (0, 2)
        assert 2 in ring and 1 not in ring
        assert len(ring) == 2


# -- membership -------------------------------------------------------------


class TestFleetMembership:
    def test_register_is_idempotent(self):
        m = FleetMembership(lease_timeout=1.0, clock=_Clock())
        e1 = m.register(0)
        e2 = m.register(0)
        assert e1 == e2 == 1
        assert m.state(0) is EndpointState.ACTIVE

    def test_heartbeat_unknown_member_raises(self):
        m = FleetMembership(lease_timeout=1.0, clock=_Clock())
        with pytest.raises(KeyError):
            m.heartbeat(7)

    def test_silent_active_member_expires(self):
        clock = _Clock()
        m = FleetMembership(lease_timeout=0.5, clock=clock)
        m.register(0)
        m.register(1)
        m.heartbeat(0)
        clock.advance(0.4)
        m.heartbeat(0)           # 0 keeps renewing, 1 goes silent
        clock.advance(0.2)       # t=0.6: 1's lease (0.5) lapsed
        assert m.expire() == [1]
        assert m.state(1) is EndpointState.DEAD
        assert m.state(0) is EndpointState.ACTIVE
        assert m.expire() == []  # death is reported exactly once

    def test_parked_member_never_expires(self):
        clock = _Clock()
        m = FleetMembership(lease_timeout=0.5, clock=clock)
        m.register(0, parked=True)
        clock.advance(100.0)
        assert m.expire() == []
        assert m.state(0) is EndpointState.PARKED

    def test_transitions_bump_epoch_and_renew_lease(self):
        clock = _Clock()
        m = FleetMembership(lease_timeout=0.5, clock=clock)
        m.register(0, parked=True)
        e = m.epoch
        clock.advance(10.0)      # way past the registration lease
        m.activate(0)            # transition renews the lease
        assert m.epoch == e + 1
        assert m.expire() == []
        assert m.state(0) is EndpointState.ACTIVE
        m.park(0)
        m.leave(0)
        assert m.state(0) is EndpointState.LEFT
        assert m.active_ids() == m.parked_ids() == ()

    def test_late_heartbeats_revive_nothing(self):
        clock = _Clock()
        m = FleetMembership(lease_timeout=0.5, clock=clock)
        m.register(0)
        clock.advance(1.0)
        assert m.expire() == [0]
        m.heartbeat(0)           # zombie still posting
        assert m.expire() == []
        assert m.state(0) is EndpointState.DEAD


# -- work queues ------------------------------------------------------------


def _task(step: int) -> RenderTask:
    return RenderTask(step=step)


class TestWorkQueues:
    def test_pop_is_fifo(self):
        q = WorkQueues([0])
        q.push(0, _task(1))
        q.push(0, _task(2))
        assert q.pop(0).step == 1
        assert q.pop(0).step == 2
        assert q.pop(0) is None

    def test_steal_prefers_deepest_victim(self):
        q = WorkQueues([0, 1, 2])
        q.push(1, _task(0))
        for s in range(3):
            q.push(2, _task(s))
        task, victim = q.steal(0)
        assert victim == 2 and task.step == 0  # oldest task of deepest queue

    def test_steal_tie_breaks_to_lowest_eid(self):
        q = WorkQueues([0, 1, 2])
        q.push(1, _task(10))
        q.push(2, _task(20))
        task, victim = q.steal(0)
        assert victim == 1 and task.step == 10

    def test_steal_respects_candidates_and_self(self):
        q = WorkQueues([0, 1, 2])
        q.push(0, _task(0))
        q.push(2, _task(2))
        assert q.steal(0, candidates=(0,)) is None        # never self
        task, victim = q.steal(1, candidates=(0, 1))      # 2 not eligible
        assert victim == 0
        assert q.steal(1, candidates=(0, 1)) is None

    def test_drain_empties_and_counts(self):
        q = WorkQueues([0, 1])
        for s in range(4):
            q.push(0, _task(s))
        drained = q.drain(0)
        assert [t.step for t in drained] == [0, 1, 2, 3]
        assert q.depth(0) == 0 and q.total_depth() == 0
        assert q.pushed == 4


# -- autoscaler -------------------------------------------------------------


class TestAutoscaler:
    def test_bounds_honor_ratio_clamp(self):
        auto = Autoscaler(num_sim=8)
        assert auto.bounds(pool_size=8) == (1, 4)    # 8/16 .. 8/2
        auto = Autoscaler(num_sim=32)
        assert auto.bounds(pool_size=4) == (2, 4)    # pool-capped
        assert auto.clamp(1, pool_size=4) == 2
        assert auto.clamp(9, pool_size=4) == 4

    def test_scales_up_after_patience_hot_observations(self):
        auto = Autoscaler(num_sim=8, config=AutoscalerConfig(patience=2,
                                                             cooldown=2))
        assert auto.observe(staged_steps=10, active=2, pool_size=4) == 2
        assert auto.observe(staged_steps=10, active=2, pool_size=4) == 3
        assert auto.scale_ups == 1 and auto.decisions == [(2, 3)]

    def test_cooldown_suppresses_flapping(self):
        auto = Autoscaler(num_sim=8, config=AutoscalerConfig(patience=1,
                                                             cooldown=3))
        assert auto.observe(staged_steps=10, active=2, pool_size=4) == 3
        for _ in range(3):   # hot again, but cooling down
            assert auto.observe(staged_steps=12, active=3, pool_size=4) == 3
        assert auto.observe(staged_steps=12, active=3, pool_size=4) == 4

    def test_scales_down_when_idle(self):
        auto = Autoscaler(num_sim=8, config=AutoscalerConfig(patience=2,
                                                             cooldown=0))
        assert auto.observe(staged_steps=0, active=3, pool_size=4) == 3
        assert auto.observe(staged_steps=0, active=3, pool_size=4) == 2
        assert auto.scale_downs == 1

    def test_stalls_count_as_pressure(self):
        auto = Autoscaler(num_sim=8, config=AutoscalerConfig(patience=2,
                                                             cooldown=0))
        auto.observe(staged_steps=0, active=2, pool_size=4, stalls=1)
        target = auto.observe(staged_steps=0, active=2, pool_size=4, stalls=2)
        assert target == 3

    def test_never_leaves_ratio_clamp(self):
        auto = Autoscaler(num_sim=8, config=AutoscalerConfig(patience=1,
                                                             cooldown=0))
        # at the max already: staying hot cannot exceed num_sim/min_ratio
        assert auto.observe(staged_steps=100, active=4, pool_size=8) == 4
        # at the min: staying cold cannot go below num_sim/max_ratio
        assert auto.observe(staged_steps=0, active=1, pool_size=8) == 1


# -- coordinator ------------------------------------------------------------


def _stage_steps(broker: SSTBroker, steps: int, elems: int = 16,
                 close: bool = True) -> None:
    """Write `steps` marshaled steps on every writer, then (optionally)
    close the streams with sentinels."""
    for w in range(broker.num_writers):
        engine = SSTWriterEngine("fleet-test", broker, w)
        for s in range(steps):
            engine.begin_step()
            engine.set_step_info(s, s * 1e-2)
            engine.put("data", np.full(elems, float(w * 100 + s)))
            engine.end_step()
        if close:
            engine.close()


class TestFleetCoordinator:
    def _coordinator(self, writers=2, pool=1, queue_limit=64, clock=None,
                     **kw) -> tuple[SSTBroker, FleetCoordinator]:
        broker = SSTBroker(num_writers=writers, queue_limit=queue_limit)
        coord = FleetCoordinator(
            broker, num_writers=writers, pool_size=pool,
            clock=clock or time.monotonic, **kw,
        )
        return broker, coord

    def test_single_endpoint_assembles_and_commits_everything(self):
        broker, coord = self._coordinator(writers=2, pool=1)
        _stage_steps(broker, steps=3)
        coord.join(0)
        seen = []
        while True:
            out = coord.poll(0)
            if out is Directive.STOP:
                break
            assert out is not Directive.PARK
            if out is Directive.IDLE:
                continue
            assert set(out.payloads) == {0, 1}  # fully assembled
            seen.append(out.step)
            coord.commit(0, out)
        assert seen == [0, 1, 2]
        assert coord.committed == {0, 1, 2}
        assert coord.done()

    def test_lease_lapse_reroutes_streams_and_replays_tasks(self):
        clock = _Clock()
        broker, coord = self._coordinator(
            writers=4, pool=2, lease_timeout=0.5, seed=1, clock=clock,
        )
        _stage_steps(broker, steps=3)
        coord.join(0)
        coord.join(1)
        before = coord.assignment()
        assert set(before.values()) == {0, 1}  # both endpoints own streams
        # endpoint 1 dies silently; endpoint 0 keeps polling
        clock.advance(1.0)
        tasks = []
        while True:
            out = coord.poll(0)
            if out is Directive.STOP:
                break
            if out is Directive.IDLE:
                continue
            tasks.append(out)
            coord.commit(0, out)
        assert coord.crashes_detected == 1
        assert coord.membership.state(1) is EndpointState.DEAD
        after = coord.assignment()
        assert set(after.values()) == {0}
        stats = coord.stats()
        rec = stats["recoveries"][0]
        assert rec["eid"] == 1 and not rec["planned"]
        assert rec["streams_moved"] == sum(
            1 for w, o in before.items() if o == 1
        )
        assert coord.committed == {0, 1, 2}   # zero lost committed steps
        assert coord.done()

    def test_zombie_endpoint_is_told_to_stop(self):
        clock = _Clock()
        broker, coord = self._coordinator(
            writers=1, pool=2, lease_timeout=0.5, clock=clock,
        )
        coord.join(0)
        coord.join(1)
        clock.advance(1.0)
        coord.poll(0)            # reaps endpoint 1
        assert coord.membership.state(1) is EndpointState.DEAD
        # the "dead" member was merely slow; its next poll exits cleanly
        assert coord.poll(1) is Directive.STOP

    def test_planned_depart_keeps_inflight_with_the_survivor(self):
        broker, coord = self._coordinator(writers=2, pool=2, seed=1,
                                          queue_limit=64)
        _stage_steps(broker, steps=2)
        coord.join(0)
        coord.join(1)
        # whoever owns the last-ingested stream completes the assembly;
        # make endpoint 0 ingest everything it owns first
        task = None
        for eid in (0, 1):
            out = coord.poll(eid)
            if isinstance(out, RenderTask):
                task = (eid, out)
                break
        assert task is not None
        holder, render = task
        other = 1 - holder
        coord.depart(other)      # planned: no recovery record
        assert coord.crashes_detected == 0
        assert coord.planned_retirements >= 0
        coord.commit(holder, render)
        while True:
            out = coord.poll(holder)
            if out is Directive.STOP:
                break
            if isinstance(out, RenderTask):
                coord.commit(holder, out)
        assert coord.committed == {0, 1}
        assert not coord.stats()["recoveries"]

    def test_idle_endpoint_steals_queued_step(self):
        broker, coord = self._coordinator(writers=1, pool=2, queue_limit=8)
        coord.join(0)
        coord.join(1)
        coord.queues.push(0, RenderTask(step=7))
        out = coord.poll(1)
        assert isinstance(out, RenderTask) and out.step == 7
        assert coord.queues.stolen == 1

    def test_autoscaler_activates_parked_member_under_backlog(self):
        broker = SSTBroker(num_writers=4, queue_limit=64)
        auto = Autoscaler(num_sim=4, config=AutoscalerConfig(
            patience=1, cooldown=0, high_water=1.0,
        ))
        coord = FleetCoordinator(
            broker, num_writers=4, pool_size=2, initial_active=1,
            autoscaler=auto, autoscale_every=1, seed=1,
        )
        _stage_steps(broker, steps=4, close=False)
        coord.join(0)
        coord.join(1)
        assert coord.membership.state(1) is EndpointState.PARKED
        coord.poll(0)   # observes 16 staged steps on 1 endpoint
        coord.poll(0)
        assert coord.membership.state(1) is EndpointState.ACTIVE
        assert auto.scale_ups >= 1
        assert 1 in coord.ring

    def test_geometry_is_cached_and_replayed(self):
        broker, coord = self._coordinator(writers=1, pool=1)
        engine = SSTWriterEngine("fleet-test", broker, 0)
        engine.begin_step()
        engine.set_step_info(0, 0.0)
        engine.put("data", np.arange(8.0))
        engine.put_attribute("has_geometry", "1")
        engine.end_step()
        engine.close()
        coord.join(0)
        while True:
            out = coord.poll(0)
            if out is Directive.STOP:
                break
            if isinstance(out, RenderTask):
                coord.commit(0, out)
        assert coord.geometry(0) is not None
        assert coord.geometry(0).attributes["has_geometry"] == "1"


# -- broker shutdown race (satellite) ---------------------------------------


class TestBrokerShutdownRace:
    def test_blocked_get_fails_fast_on_broker_close(self):
        broker = SSTBroker(num_writers=1, timeout=30.0)
        caught = {}

        def consumer():
            t0 = time.perf_counter()
            try:
                broker.get(0)
            except EndpointDownError as exc:
                caught["error"] = exc
            except StreamTimeout as exc:        # pragma: no cover
                caught["error"] = exc
            caught["elapsed"] = time.perf_counter() - t0

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        time.sleep(0.05)         # let it block on the empty stream
        broker.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert isinstance(caught["error"], EndpointDownError)
        assert "broker closed" in str(caught["error"])
        assert caught["elapsed"] < 5.0          # not the 30s stream timeout

    def test_blocked_get_fails_fast_when_producer_dies(self):
        broker = SSTBroker(num_writers=2, timeout=30.0)
        caught = {}

        def consumer():
            try:
                broker.get(1)
            except EndpointDownError as exc:
                caught["error"] = exc

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        time.sleep(0.05)
        broker.mark_writer_down(1)
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert "producer dead" in str(caught["error"])

    def test_try_get_reports_dead_stream_only_when_drained(self):
        broker = SSTBroker(num_writers=1, queue_limit=8)
        engine = SSTWriterEngine("x", broker, 0)
        engine.begin_step()
        engine.set_step_info(0, 0.0)
        engine.put("data", np.zeros(4))
        engine.end_step()
        broker.mark_writer_down(0)
        assert broker.try_get(0, step=0) is not None   # staged data survives
        with pytest.raises(EndpointDownError):
            broker.try_get(0, step=1)


# -- retry deadline + counters (satellite) ----------------------------------


class TestRetryDeadline:
    def test_max_elapsed_s_cuts_before_max_attempts(self):
        policy = RetryPolicy(max_attempts=50, base_delay=0.05, jitter=0.0,
                             max_elapsed_s=0.1)
        attempts = []

        def fn(attempt):
            attempts.append(attempt)
            raise StreamTimeout("nope")

        t0 = time.perf_counter()
        with pytest.raises(EndpointDownError) as err:
            policy.call(fn)
        assert time.perf_counter() - t0 < 2.0
        assert len(attempts) < 50
        assert "deadline of 0.1s" in str(err.value)

    def test_attempt_budget_message_preserved(self):
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with pytest.raises(EndpointDownError) as err:
            policy.call(lambda attempt: (_ for _ in ()).throw(
                StreamTimeout("x")))
        assert "2 attempts" in str(err.value)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(max_elapsed_s=-1.0)

    def test_counters_track_attempts_and_exhaustion(self):
        tel = Telemetry.create(rank=0)
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with active(tel):
            with pytest.raises(EndpointDownError):
                policy.call(lambda attempt: (_ for _ in ()).throw(
                    StreamTimeout("x")))
            policy.call(lambda attempt: "ok")
        attempts = tel.metrics.counter(
            "repro_retry_attempts_total", "").value
        exhausted = tel.metrics.counter(
            "repro_retry_exhausted_total", "").value
        assert attempts == 4.0   # 3 failing + 1 succeeding
        assert exhausted == 1.0


# -- injector (step, key) schedule (satellite) ------------------------------


class TestInjectorKeyedSchedule:
    def test_pair_entry_fires_only_for_its_key(self):
        inj = FaultInjector(schedule={"endpoint_crash": ((3, 1),)})
        assert not inj.fires("endpoint_crash", "loop", 3, key=0)
        assert inj.fires("endpoint_crash", "loop", 3, key=1)
        assert not inj.fires("endpoint_crash", "loop", 4, key=1)

    def test_bare_step_fires_for_every_key(self):
        inj = FaultInjector(schedule={"endpoint_crash": (3,)})
        assert inj.fires("endpoint_crash", "loop", 3, key=0)
        assert inj.fires("endpoint_crash", "loop", 3, key=9)

    def test_mixed_entries(self):
        inj = FaultInjector(schedule={"drop_step": (1, (2, 5))})
        assert inj.fires("drop_step", "put", 1, key=0)
        assert inj.fires("drop_step", "put", 2, key=5)
        assert not inj.fires("drop_step", "put", 2, key=4)


# -- thread-stack dump (satellite) ------------------------------------------


def test_dump_thread_stacks_names_spmd_ranks():
    gate = threading.Event()

    def body():
        gate.wait(timeout=10.0)

    t = threading.Thread(target=body, name="spmd-rank-99", daemon=True)
    t.start()
    out = io.StringIO()
    try:
        count = dump_thread_stacks(out)
    finally:
        gate.set()
        t.join(timeout=5.0)
    text = out.getvalue()
    assert count >= 2
    assert "spmd-rank-99" in text
    assert "MainThread" in text
    assert "gate.wait" in text


# -- end-to-end acceptance ---------------------------------------------------


def _fleet_runner(tmp, mode="checkpoint", steps=3, fleet=None, **kw):
    def case_builder(nsim):
        c = weak_scaled_rbc_case(nsim, elements_per_rank=2, order=3, dt=1e-3)
        return c.with_overrides(num_steps=steps)

    return InTransitRunner(
        case_builder,
        mode=mode,
        ratio=kw.pop("ratio", 2),
        num_steps=steps,
        stream_interval=1,
        arrays=("temperature", "velocity_magnitude"),
        output_dir=tmp,
        image_size=64,
        fleet=fleet,
        **kw,
    )


def _dir_bytes(root):
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in sorted(root.rglob("*")) if p.is_file()
    }


@pytest.mark.timeout(120)
class TestFleetEndToEnd:
    def test_kill_one_of_four_endpoints_loses_no_committed_steps(self, tmp_path):
        """Acceptance: 8 sims + 4 endpoints, endpoint 2 dies at its
        first poll — every streamed step still commits exactly once."""
        steps = 3
        injector = FaultInjector(schedule={"endpoint_crash": ((0, 2),)})
        runner = _fleet_runner(
            tmp_path, steps=steps,
            # seed 7 gives all four endpoints ring arcs over 8 writers,
            # so killing endpoint 2 really orphans streams
            fleet=FleetConfig(lease_timeout=0.25, seed=7),
            injector=injector,
            retry=RetryPolicy(max_attempts=20, base_delay=0.01,
                              attempt_timeout=0.1, max_elapsed_s=30.0),
        )
        results = run_spmd(12, runner.run)
        sims = [r for r in results if r.role == "simulation"]
        ends = [r for r in results if r.role == "endpoint"]
        assert len(sims) == 8 and len(ends) == 4

        crashed = [r for r in ends if r.extra.get("crashed")]
        assert [r.rank for r in crashed] == [2]

        coord = runner.last_coordinator
        stats = coord.stats()
        # zero lost committed steps: every streamed step committed
        # (solver step numbering is 1-based)
        assert coord.committed == set(range(1, steps + 1))
        assert stats["crashes_detected"] == 1
        rec = stats["recoveries"][0]
        assert rec["eid"] == 2 and not rec["planned"]
        assert rec["streams_moved"] >= 1
        assert rec["recovery_seconds"] is not None
        assert rec["recovery_seconds"] < 30.0       # recovery SLO

        # the simulation never had to degrade: the reroute landed
        # inside the writers' retry budget
        assert all(r.steps == steps for r in sims)
        assert all(r.extra["degraded_steps"] == 0 for r in sims)

        # fault ledger balances: the one injected crash was recovered
        log = injector.log
        assert log.injected["endpoint_crash"] == 1
        assert log.recovered["endpoint_crash"] == 1
        assert log.accounted

        # all 8 blocks x 3 steps of VTU output exist despite the loss
        vtus = list((tmp_path / "checkpoint").glob("*.vtu"))
        assert len(vtus) == steps * 8

    def test_fleet_output_matches_static_split_without_faults(self, tmp_path):
        """Acceptance: the elastic path is byte-identical to the
        retained static split when no faults fire (checkpoint mode)."""
        static = _fleet_runner(tmp_path / "static", ratio=4)
        run_spmd(5, static.run)
        fleet = _fleet_runner(tmp_path / "fleet", ratio=4,
                              fleet=FleetConfig(lease_timeout=1.0))
        run_spmd(5, fleet.run)
        assert fleet.last_coordinator is not None
        a = _dir_bytes(tmp_path / "static")
        b = _dir_bytes(tmp_path / "fleet")
        assert a.keys() == b.keys() and len(a) > 0
        assert a == b

    def test_fleet_renders_identical_frames(self, tmp_path):
        """Same equivalence for rendered catalyst frames."""
        static = _fleet_runner(tmp_path / "static", mode="catalyst", ratio=4)
        run_spmd(5, static.run)
        fleet = _fleet_runner(tmp_path / "fleet", mode="catalyst", ratio=4,
                              fleet=FleetConfig(lease_timeout=1.0))
        run_spmd(5, fleet.run)
        a = _dir_bytes(tmp_path / "static")
        b = _dir_bytes(tmp_path / "fleet")
        assert a.keys() == b.keys()
        assert any(k.endswith(".png") for k in a)
        assert a == b

    def test_naive_mode_retains_static_split(self, tmp_path):
        """naive_mode() ignores the fleet config: the reference static
        endpoint path still runs (the gate's reference arm)."""
        with naive_mode():
            runner = _fleet_runner(tmp_path,
                                   fleet=FleetConfig(lease_timeout=1.0))
        results = run_spmd(5, runner.run)
        assert runner.last_coordinator is None
        ends = [r for r in results if r.role == "endpoint"]
        assert all("fleet" not in r.extra for r in ends)
        assert ends[0].steps == 3

    def test_fleet_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(lease_timeout=0.0)
        with pytest.raises(ValueError):
            FleetConfig(poll_interval=-1.0)
