"""Chaos soak: a seeded randomized fault schedule over a full
pebble-bed in-transit run on the elastic fleet.

One run, every fault class at once: a scheduled endpoint crash plus
seeded probabilistic slow-consumer delays, in-flight payload
corruption, and writer stalls.  The invariants:

- the run terminates (the per-test watchdog is the deadlock oracle);
- the fault ledger balances exactly:
  ``injected == detected + recovered + degraded`` per kind;
- every simulation rank completes every timestep;
- every streamed step commits exactly once despite the endpoint loss
  (corrupted payloads are detected, skipped, and the step still
  assembles under the high-water rule).
"""

from __future__ import annotations

import pytest

from repro.faults import FaultInjector, RetryPolicy
from repro.fleet import FleetConfig
from repro.insitu import InTransitRunner
from repro.nekrs.cases import pebble_bed_case
from repro.parallel import run_spmd

pytestmark = [pytest.mark.fleet, pytest.mark.faults]

_STEPS = 4
_TOTAL = 9          # 6 sim + 3 endpoints at ratio 2


def _chaos_injector(seed: int) -> FaultInjector:
    return FaultInjector(
        seed=seed,
        # seeded randomized pressure on every delivered payload / put
        probabilities={
            "slow_consumer": 0.2,
            "corrupt_payload": 0.1,
            "writer_stall": 0.1,
        },
        # the crash is pinned so the run always loses endpoint 1 (and
        # only endpoint 1) at its first poll
        schedule={"endpoint_crash": ((0, 1),)},
        delays={"slow_consumer": 0.005, "writer_stall": 0.005},
    )


@pytest.mark.timeout(240)
def test_chaos_soak_pebble_bed_fleet(tmp_path):
    injector = _chaos_injector(seed=1234)

    def case_builder(_nsim):
        return pebble_bed_case(
            num_pebbles=2, elements_per_unit=2, order=3, num_steps=_STEPS,
        )

    runner = InTransitRunner(
        case_builder,
        mode="checkpoint",
        ratio=2,
        num_steps=_STEPS,
        stream_interval=1,
        arrays=("pressure", "velocity_magnitude"),
        output_dir=tmp_path,
        injector=injector,
        retry=RetryPolicy(max_attempts=20, base_delay=0.01,
                          attempt_timeout=0.1, max_elapsed_s=30.0),
        fleet=FleetConfig(lease_timeout=0.25, seed=7),
    )
    results = run_spmd(_TOTAL, runner.run)

    sims = [r for r in results if r.role == "simulation"]
    ends = [r for r in results if r.role == "endpoint"]
    assert len(sims) == 6 and len(ends) == 3

    # every simulation rank completed every timestep
    assert all(r.steps == _STEPS for r in sims)
    # exactly the scheduled endpoint died
    assert [r.rank for r in ends if r.extra.get("crashed")] == [1]

    log = injector.log
    snap = log.snapshot()
    # the schedule really exercised every chaos class
    assert snap["injected"].get("endpoint_crash") == 1
    assert snap["injected"].get("slow_consumer", 0) >= 1
    assert snap["injected"].get("corrupt_payload", 0) >= 1
    assert snap["injected"].get("writer_stall", 0) >= 1

    # the accounting identity, per kind and in aggregate:
    #   injected == detected + recovered + degraded
    assert log.accounted, snap
    for kind, injected in snap["injected"].items():
        resolved = (
            snap["detected"].get(kind, 0)
            + snap["recovered"].get(kind, 0)
            + snap["degraded"].get(kind, 0)
        )
        assert injected == resolved, (kind, snap)

    # zero lost committed steps: despite the crash, every streamed
    # step (solver steps are 1-based) committed on some endpoint
    coord = runner.last_coordinator
    assert coord.committed == set(range(1, _STEPS + 1))
    stats = coord.stats()
    assert stats["crashes_detected"] == 1
    assert stats["recoveries"][0]["eid"] == 1


@pytest.mark.timeout(240)
def test_chaos_schedule_is_deterministic(tmp_path):
    """Two runs with the same seed inject the identical fault mix."""
    snaps = []
    for run in range(2):
        injector = _chaos_injector(seed=77)

        def case_builder(_nsim):
            return pebble_bed_case(
                num_pebbles=2, elements_per_unit=2, order=3,
                num_steps=_STEPS,
            )

        runner = InTransitRunner(
            case_builder,
            mode="checkpoint",
            ratio=2,
            num_steps=_STEPS,
            stream_interval=1,
            arrays=("pressure", "velocity_magnitude"),
            output_dir=tmp_path / str(run),
            injector=injector,
            retry=RetryPolicy(max_attempts=20, base_delay=0.01,
                              attempt_timeout=0.1, max_elapsed_s=30.0),
            fleet=FleetConfig(lease_timeout=0.25, seed=7),
        )
        run_spmd(_TOTAL, runner.run)
        assert injector.log.accounted
        snaps.append(injector.log.snapshot()["injected"])
    assert snaps[0] == snaps[1]
