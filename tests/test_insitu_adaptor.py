"""Tests for NekDataAdaptor: meshes, arrays, device-boundary accounting."""

import numpy as np
import pytest

from repro.insitu import NekDataAdaptor
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.occa import Device
from repro.parallel import SerialCommunicator, run_spmd
from repro.vtkdata.dataset import ImageData, UnstructuredGrid


@pytest.fixture
def cuda_solver(comm):
    case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3)
    solver = NekRSSolver(case, comm, Device("cuda-sim"))
    solver.run(2)
    return solver


@pytest.fixture
def adaptor(cuda_solver):
    a = NekDataAdaptor(cuda_solver)
    a.set_data_time_step(2)
    a.set_data_time(cuda_solver.time)
    return a


class TestStructure:
    def test_two_meshes(self, adaptor):
        assert adaptor.get_number_of_meshes() == 2
        assert adaptor.get_mesh_metadata(0).name == "mesh"
        assert adaptor.get_mesh_metadata(1).name == "uniform"
        with pytest.raises(IndexError):
            adaptor.get_mesh_metadata(2)

    def test_mesh_metadata_counts(self, adaptor, cuda_solver):
        md = adaptor.get_mesh_metadata(0)
        assert md.num_points_local == cuda_solver.local_gridpoints()
        assert md.num_cells_local == 8 * 3**3  # E * order^3 sub-hexes
        assert "pressure" in md.array_names
        assert "velocity_magnitude" in md.array_names
        assert md.array("velocity").components == 3

    def test_uniform_metadata_extra(self, adaptor):
        md = adaptor.get_mesh_metadata(1)
        assert md.extra["global_dims"] == [8, 8, 8]  # 2 elems * 4 samples
        assert md.extra["samples"] == 4
        assert len(md.extra["origin"]) == 3

    def test_step_time_stamping(self, adaptor):
        assert adaptor.get_data_time_step() == 2
        assert adaptor.get_data_time() > 0

    def test_unknown_mesh_raises(self, adaptor):
        with pytest.raises(KeyError):
            adaptor.get_mesh("ghost")


class TestUnstructuredMesh:
    def test_block_layout(self, adaptor, comm):
        mesh = adaptor.get_mesh("mesh")
        assert mesh.num_blocks == comm.size
        block = mesh.get_block(comm.rank)
        assert isinstance(block, UnstructuredGrid)

    def test_points_match_solver_coords(self, adaptor, cuda_solver):
        block = adaptor.get_mesh("mesh").get_block(0)
        np.testing.assert_array_equal(block.points[:, 0], cuda_solver.mesh.x.ravel())

    def test_connectivity_within_bounds(self, adaptor):
        block = adaptor.get_mesh("mesh").get_block(0)
        assert block.cells.max() < block.num_points
        # sub-cells have positive volume: x of corner 1 > x of corner 0
        p0 = block.points[block.cells[:, 0]]
        p1 = block.points[block.cells[:, 1]]
        assert (p1[:, 0] > p0[:, 0]).all()

    def test_add_array_values(self, adaptor, cuda_solver):
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "pressure")
        block = mesh.get_block(0)
        np.testing.assert_array_equal(
            block.point_data["pressure"].values, cuda_solver.p.ravel()
        )

    def test_velocity_vector_array(self, adaptor):
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "velocity")
        vals = mesh.get_block(0).point_data["velocity"].values
        assert vals.shape[1] == 3

    def test_velocity_magnitude_derived(self, adaptor, cuda_solver):
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "velocity_magnitude")
        vals = mesh.get_block(0).point_data["velocity_magnitude"].values
        expected = np.sqrt(
            cuda_solver.u**2 + cuda_solver.v**2 + cuda_solver.w**2
        ).ravel()
        np.testing.assert_allclose(vals, expected)

    def test_unknown_array_lists_available(self, adaptor):
        mesh = adaptor.get_mesh("mesh")
        with pytest.raises(KeyError, match="pressure"):
            adaptor.add_array(mesh, "mesh", "point", "entropy")

    def test_cell_association_rejected(self, adaptor):
        mesh = adaptor.get_mesh("mesh")
        with pytest.raises(ValueError):
            adaptor.add_array(mesh, "mesh", "cell", "pressure")


class TestUniformMesh:
    def test_fragments_are_imagedata(self, adaptor, cuda_solver):
        mesh = adaptor.get_mesh("uniform")
        local = mesh.local_blocks()
        assert len(local) == cuda_solver.mesh.num_elements
        assert all(isinstance(b, ImageData) for b in local)

    def test_fragment_resampling_accuracy(self, adaptor, cuda_solver):
        """Resampled linear coordinate field is exact."""
        cuda_solver.p[:] = cuda_solver.mesh.x  # pressure := x
        adaptor.release_data()
        mesh = adaptor.get_mesh("uniform")
        adaptor.add_array(mesh, "uniform", "point", "pressure")
        for block in mesh.local_blocks():
            vol = block.as_volume("pressure")
            xs = block.origin[0] + np.arange(block.dims[0]) * block.spacing[0]
            np.testing.assert_allclose(vol[0, 0, :], xs, atol=1e-10)

    def test_vector_array_rejected_on_uniform(self, adaptor):
        mesh = adaptor.get_mesh("uniform")
        with pytest.raises(ValueError):
            adaptor.add_array(mesh, "uniform", "point", "velocity")


class TestDeviceBoundary:
    def test_one_d2h_copy_per_field_per_step(self, adaptor, cuda_solver):
        device = cuda_solver.device
        device.transfers.reset()
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "pressure")
        adaptor.add_array(mesh, "mesh", "point", "pressure")  # cached
        uniform = adaptor.get_mesh("uniform")
        adaptor.add_array(uniform, "uniform", "point", "pressure")  # cached
        assert device.transfers.d2h_count == 1
        assert device.transfers.d2h_bytes == cuda_solver.p.nbytes

    def test_release_data_invalidates_cache(self, adaptor, cuda_solver):
        device = cuda_solver.device
        device.transfers.reset()
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "pressure")
        adaptor.release_data()
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "pressure")
        assert device.transfers.d2h_count == 2

    def test_staging_accounting(self, adaptor):
        assert adaptor.staging_bytes_current == 0
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "pressure")
        assert adaptor.staging_bytes_current > 0
        peak = adaptor.staging_bytes_peak
        adaptor.release_data()
        assert adaptor.staging_bytes_current == 0
        assert adaptor.staging_bytes_peak == peak


class TestParallelAdaptor:
    def test_each_rank_owns_its_block(self):
        def body(comm):
            case = lid_cavity_case(elements=2, order=3, dt=5e-3)
            s = NekRSSolver(case, comm)
            s.run(1)
            a = NekDataAdaptor(s)
            mesh = a.get_mesh("mesh")
            mine = mesh.get_block(comm.rank)
            others = [
                i for i, b in enumerate(mesh.blocks)
                if b is not None and i != comm.rank
            ]
            return (mine is not None, others)

        for owned, others in run_spmd(2, body):
            assert owned
            assert others == []

    def test_uniform_blocks_partition_elements(self):
        def body(comm):
            case = lid_cavity_case(elements=2, order=3, dt=5e-3)
            s = NekRSSolver(case, comm)
            a = NekDataAdaptor(s)
            return a.get_mesh_metadata(1).local_block_ids

        results = run_spmd(2, body)
        combined = sorted(results[0] + results[1])
        assert combined == list(range(8))
