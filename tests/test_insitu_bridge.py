"""Tests for the bridge (Listing 3) and the streamed endpoint adaptor."""

import numpy as np
import pytest

from repro.adios import SSTBroker, SSTReaderEngine, SSTWriterEngine, StepStatus
from repro.insitu import Bridge, NekDataAdaptor, StreamedDataAdaptor
from repro.insitu import bridge as bridge_mod
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.parallel import SerialCommunicator
from repro.sensei.analyses.adios_adaptor import ADIOSAnalysisAdaptor
from repro.sensei.analysis_adaptor import AnalysisAdaptor


class _Recorder(AnalysisAdaptor):
    def __init__(self):
        self.steps = []
        self.finalized = False

    def execute(self, data):
        self.steps.append((data.get_data_time_step(), data.get_data_time()))
        return True

    def finalize(self):
        self.finalized = True


class TestBridge:
    def test_observer_drives_analysis(self, tiny_solver):
        rec = _Recorder()
        bridge = Bridge(tiny_solver, analysis=rec)
        tiny_solver.run(3, observer=bridge.observer)
        bridge.finalize()
        assert [s for s, _ in rec.steps] == [1, 2, 3]
        assert rec.finalized
        assert bridge.invocations == 3
        assert bridge.insitu_seconds > 0

    def test_requires_exactly_one_config(self, tiny_solver):
        with pytest.raises(ValueError):
            Bridge(tiny_solver)
        with pytest.raises(ValueError):
            Bridge(tiny_solver, analysis=_Recorder(), config_xml="<sensei/>")

    def test_xml_config_path(self, tiny_solver, tmp_path):
        xml = (
            '<sensei><analysis type="histogram" array="pressure" '
            'bins="4" frequency="2"/></sensei>'
        )
        bridge = Bridge(tiny_solver, config_xml=xml, output_dir=tmp_path)
        tiny_solver.run(4, observer=bridge.observer)
        hist = bridge.analysis.adaptors[0][1]
        assert len(hist.results) == 2  # steps 2 and 4

    def test_release_called_each_update(self, tiny_solver):
        bridge = Bridge(tiny_solver, analysis=_Recorder())
        bridge.update(1, 0.1)
        assert bridge.adaptor.staging_bytes_current == 0

    def test_stop_request_recorded(self, tiny_solver):
        class Stopper(AnalysisAdaptor):
            def execute(self, data):
                return False

        bridge = Bridge(tiny_solver, analysis=Stopper())
        assert bridge.update(1, 0.0) is False
        assert bridge.stop_requested


class TestFunctionalFacade:
    def test_initialize_update_finalize(self, tiny_solver):
        bridge = bridge_mod.initialize(tiny_solver, "<sensei></sensei>")
        assert bridge_mod.update(1, 0.1) is True
        bridge_mod.finalize()

    def test_double_initialize_raises(self, tiny_solver):
        bridge_mod.initialize(tiny_solver, "<sensei></sensei>")
        try:
            with pytest.raises(RuntimeError):
                bridge_mod.initialize(tiny_solver, "<sensei></sensei>")
        finally:
            bridge_mod.finalize()

    def test_update_without_initialize_raises(self):
        with pytest.raises(RuntimeError):
            bridge_mod.update(1, 0.0)


def _stream_solver_steps(mesh_name, arrays, steps=2):
    """Drive solver -> ADIOS adaptor -> SST -> reader; return payload
    dicts per streamed step."""
    comm = SerialCommunicator()
    case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3)
    solver = NekRSSolver(case, comm)
    broker = SSTBroker(num_writers=1, queue_limit=8)
    writer = SSTWriterEngine("s", broker, 0)
    adios = ADIOSAnalysisAdaptor(comm, writer, mesh_name=mesh_name, arrays=arrays)
    bridge = Bridge(solver, analysis=adios)
    solver.run(steps, observer=bridge.observer)
    bridge.finalize()

    reader = SSTReaderEngine("s", broker, [0])
    received = []
    while reader.begin_step() is StepStatus.OK:
        received.append(reader.payloads())
        reader.end_step()
    return received


class TestStreamedDataAdaptor:
    def test_unstructured_roundtrip(self):
        received = _stream_solver_steps("mesh", ("pressure", "velocity_x"))
        assert len(received) == 2
        endpoint = StreamedDataAdaptor(SerialCommunicator())
        endpoint.consume(received[0])
        assert endpoint.get_number_of_meshes() == 1
        md = endpoint.get_mesh_metadata(0)
        assert md.name == "mesh"
        assert set(md.array_names) == {"pressure", "velocity_x"}
        mesh = endpoint.get_mesh("mesh")
        endpoint.add_array(mesh, "mesh", "point", "pressure")
        block = mesh.get_block(0)
        assert block.num_points == 8 * 4**3
        assert "pressure" in block.point_data

    def test_geometry_cached_across_steps(self):
        received = _stream_solver_steps("mesh", ("pressure",))
        first_bytes = sum(p.nbytes for p in received[0].values())
        second_bytes = sum(p.nbytes for p in received[1].values())
        # step 2 carries no geometry, so it is much smaller
        assert second_bytes < 0.5 * first_bytes
        endpoint = StreamedDataAdaptor(SerialCommunicator())
        endpoint.consume(received[0])
        endpoint.release_data()
        endpoint.consume(received[1])
        mesh = endpoint.get_mesh("mesh")     # geometry from the cache
        assert mesh.get_block(0) is not None
        endpoint.add_array(mesh, "mesh", "point", "pressure")

    def test_uniform_roundtrip(self):
        received = _stream_solver_steps("uniform", ("pressure",), steps=1)
        endpoint = StreamedDataAdaptor(SerialCommunicator())
        endpoint.consume(received[0])
        md = endpoint.get_mesh_metadata(0)
        assert md.extra["global_dims"] == [8, 8, 8]
        mesh = endpoint.get_mesh("uniform")
        endpoint.add_array(mesh, "uniform", "point", "pressure")
        from repro.vtkdata.dataset import ImageData

        blocks = mesh.local_blocks()
        assert len(blocks) == 8
        assert all(isinstance(b, ImageData) for b in blocks)

    def test_step_metadata_propagates(self):
        received = _stream_solver_steps("mesh", ("pressure",), steps=1)
        endpoint = StreamedDataAdaptor(SerialCommunicator())
        endpoint.consume(received[0])
        assert endpoint.get_data_time_step() == 1
        assert endpoint.get_data_time() > 0

    def test_missing_array_raises(self):
        received = _stream_solver_steps("mesh", ("pressure",), steps=1)
        endpoint = StreamedDataAdaptor(SerialCommunicator())
        endpoint.consume(received[0])
        mesh = endpoint.get_mesh("mesh")
        with pytest.raises(KeyError):
            endpoint.add_array(mesh, "mesh", "point", "enstrophy")

    def test_wrong_mesh_name_raises(self):
        received = _stream_solver_steps("mesh", ("pressure",), steps=1)
        endpoint = StreamedDataAdaptor(SerialCommunicator())
        endpoint.consume(received[0])
        with pytest.raises(KeyError):
            endpoint.get_mesh("uniform")

    def test_consume_empty_is_noop(self):
        # an empty stream step (all payloads dropped/corrupt) must not
        # crash the endpoint loop: skipped and counted instead
        adaptor = StreamedDataAdaptor(SerialCommunicator())
        assert adaptor.consume({}) is False
        assert adaptor.empty_steps == 1
        assert adaptor.get_number_of_meshes() == 0
