"""Integration tests for the in transit runner (Section 4.2 topology)."""

import pytest

from repro.insitu import InTransitRunner
from repro.nekrs.cases import weak_scaled_rbc_case
from repro.parallel import run_spmd


def _case_builder(steps=3):
    def build(nsim):
        c = weak_scaled_rbc_case(nsim, elements_per_rank=4, order=3, dt=1e-3)
        return c.with_overrides(num_steps=steps)

    return build


def _run(mode, total=5, steps=3, tmp=None, ratio=4, **kw):
    runner = InTransitRunner(
        _case_builder(steps),
        mode=mode,
        ratio=ratio,
        num_steps=steps,
        stream_interval=1,
        arrays=("temperature", "velocity_magnitude"),
        output_dir=tmp or "intransit-test-out",
        image_size=64,
        **kw,
    )
    return runner, run_spmd(total, runner.run)


class TestSplitCounts:
    def test_four_to_one(self):
        runner = InTransitRunner(_case_builder(), ratio=4)
        assert runner.split_counts(5) == (4, 1)
        assert runner.split_counts(10) == (8, 2)

    def test_two_to_one(self):
        runner = InTransitRunner(_case_builder(), ratio=2)
        assert runner.split_counts(6) == (4, 2)

    def test_minimum_two_ranks(self):
        runner = InTransitRunner(_case_builder())
        with pytest.raises(ValueError):
            runner.split_counts(1)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            InTransitRunner(_case_builder(), mode="teleport")


class TestModes:
    def test_none_mode_runs_and_endpoint_idles(self, tmp_path):
        _, results = _run("none", tmp=tmp_path)
        sims = [r for r in results if r.role == "simulation"]
        ends = [r for r in results if r.role == "endpoint"]
        assert len(sims) == 4 and len(ends) == 1
        assert all(r.steps == 3 for r in sims)
        assert all(r.stream_bytes == 0 for r in sims)
        assert ends[0].steps == 0

    def test_checkpoint_mode_writes_vtu(self, tmp_path):
        _, results = _run("checkpoint", tmp=tmp_path)
        end = [r for r in results if r.role == "endpoint"][0]
        assert end.steps == 3
        vtus = list((tmp_path / "checkpoint").glob("*.vtu"))
        assert len(vtus) == 3 * 4  # 3 steps x 4 writer blocks
        assert end.files_bytes == pytest.approx(
            sum(p.stat().st_size for p in (tmp_path / "checkpoint").iterdir()),
        )

    def test_catalyst_mode_renders_images(self, tmp_path):
        _, results = _run("catalyst", tmp=tmp_path)
        end = [r for r in results if r.role == "endpoint"][0]
        pngs = list((tmp_path / "catalyst").glob("*.png"))
        assert end.images == len(pngs) == 6  # 2 images x 3 steps
        assert end.files_bytes == sum(p.stat().st_size for p in pngs)

    def test_catalyst_storage_far_below_checkpoint(self, tmp_path):
        _, cat = _run("catalyst", tmp=tmp_path / "c")
        _, ck = _run("checkpoint", tmp=tmp_path / "k")
        cat_bytes = [r for r in cat if r.role == "endpoint"][0].files_bytes
        ck_bytes = [r for r in ck if r.role == "endpoint"][0].files_bytes
        assert cat_bytes < ck_bytes / 5

    def test_sim_memory_independent_of_endpoint_count(self, tmp_path):
        """The in-transit headline: simulation staging is bounded by the
        queue, regardless of visualization resources."""
        _, five = _run("catalyst", total=5, tmp=tmp_path / "a")
        _, six = _run("catalyst", total=6, tmp=tmp_path / "b", ratio=2)
        mem5 = max(r.memory_bytes for r in five if r.role == "simulation")
        mem6 = max(r.memory_bytes for r in six if r.role == "simulation")
        assert mem6 < 2 * mem5  # same order regardless of endpoint count

    def test_stream_interval_halves_transport(self, tmp_path):
        _, every = _run("checkpoint", tmp=tmp_path / "e")
        runner = InTransitRunner(
            _case_builder(4), mode="checkpoint", ratio=4, num_steps=4,
            stream_interval=2, arrays=("temperature",),
            output_dir=tmp_path / "h", image_size=64,
        )
        results = run_spmd(5, runner.run)
        end = [r for r in results if r.role == "endpoint"][0]
        assert end.steps == 2  # 4 steps / interval 2

    def test_discard_policy_tolerated(self, tmp_path):
        _, results = _run(
            "catalyst", tmp=tmp_path,
            queue_limit=1, queue_full_policy="Discard",
        )
        sims = [r for r in results if r.role == "simulation"]
        assert all(r.steps == 3 for r in sims)
