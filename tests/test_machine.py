"""Tests for the machine model: specs, topology, network/fs/clock."""

import math

import pytest

from repro.machine import (
    POLARIS,
    JUWELS_BOOSTER,
    ClusterSpec,
    CollectiveModel,
    CostLedger,
    DragonflyPlusTopology,
    FilesystemModel,
    NetworkModel,
    PcieModel,
    SimClock,
)


class TestSpecs:
    def test_polaris_shape(self):
        assert POLARIS.num_nodes == 560
        assert POLARIS.node.gpus_per_node == 4
        assert POLARIS.total_ranks == 2240

    def test_juwels_shape(self):
        assert JUWELS_BOOSTER.num_nodes == 936
        assert JUWELS_BOOSTER.node.nics_per_node == 4

    def test_nodes_for_ranks(self):
        assert POLARIS.nodes_for_ranks(280) == 70
        assert POLARIS.nodes_for_ranks(1120) == 280
        assert POLARIS.nodes_for_ranks(1) == 1
        assert POLARIS.nodes_for_ranks(5) == 2

    def test_nodes_for_ranks_overflow(self):
        with pytest.raises(ValueError):
            POLARIS.nodes_for_ranks(POLARIS.total_ranks + 1)

    def test_nodes_for_ranks_invalid(self):
        with pytest.raises(ValueError):
            POLARIS.nodes_for_ranks(0)


class TestTopology:
    def test_same_node_zero_hops(self):
        topo = DragonflyPlusTopology(POLARIS)
        assert topo.switch_hops(5, 5) == 0

    def test_same_switch_one_hop(self):
        topo = DragonflyPlusTopology(POLARIS)
        assert topo.switch_hops(0, 1) == 1

    def test_same_cell_three_hops(self):
        topo = DragonflyPlusTopology(POLARIS)
        # nodes on different switches of cell 0
        other = POLARIS.nodes_per_switch  # first node of switch 1
        assert topo.switch_hops(0, other) == 3

    def test_cross_cell_four_hops(self):
        topo = DragonflyPlusTopology(POLARIS)
        per_cell = POLARIS.nodes_per_switch * POLARIS.switches_per_group
        assert topo.switch_hops(0, per_cell) == 4

    def test_symmetric(self):
        topo = DragonflyPlusTopology(POLARIS)
        assert topo.switch_hops(3, 400) == topo.switch_hops(400, 3)

    def test_out_of_range(self):
        topo = DragonflyPlusTopology(POLARIS)
        with pytest.raises(ValueError):
            topo.locate(POLARIS.num_nodes)

    def test_mean_hops_bounded(self):
        topo = DragonflyPlusTopology(POLARIS)
        m = topo.mean_hops(70)
        assert 0 < m <= 4

    def test_mean_hops_single_node(self):
        topo = DragonflyPlusTopology(POLARIS)
        assert topo.mean_hops(1) == 0.0


class TestNetworkModel:
    def test_latency_grows_with_hops(self):
        net = NetworkModel(POLARIS)
        assert net.latency(4) > net.latency(1) > net.latency(0) == 0.0

    def test_p2p_bandwidth_term(self):
        net = NetworkModel(POLARIS)
        small = net.p2p_time(1_000, 3)
        large = net.p2p_time(1_000_000_000, 3)
        assert large > small
        # 1 GB at per-rank bandwidth should take ~0.1 s, not microseconds
        assert large > 0.01

    def test_p2p_negative_bytes_raises(self):
        with pytest.raises(ValueError):
            NetworkModel(POLARIS).p2p_time(-1, 2)

    def test_stream_shares_node_bandwidth(self):
        net = NetworkModel(POLARIS)
        one = net.stream_time(10**9, 1, 3)
        four = net.stream_time(10**9, 4, 3)
        assert four > one


class TestCollectiveModel:
    def _coll(self):
        return CollectiveModel(NetworkModel(POLARIS))

    def test_single_rank_free(self):
        c = self._coll()
        assert c.allreduce_time(8, 1) == 0.0
        assert c.bcast_time(8, 1) == 0.0
        assert c.barrier_time(1) == 0.0

    def test_allreduce_grows_logarithmically(self):
        c = self._coll()
        t64 = c.allreduce_time(8, 64)
        t1024 = c.allreduce_time(8, 1024)
        assert t1024 > t64
        # small-message allreduce is latency-bound: ratio ~ log ratio
        assert t1024 / t64 < 4

    def test_allreduce_bandwidth_term(self):
        c = self._coll()
        assert c.allreduce_time(10**8, 64) > 10 * c.allreduce_time(8, 64)

    def test_gather_scales_with_ranks(self):
        c = self._coll()
        assert c.gather_time(1000, 512) > c.gather_time(1000, 8)

    def test_halo_time(self):
        c = self._coll()
        assert c.halo_exchange_time(0, 0) == 0.0
        assert c.halo_exchange_time(1000, 6) > c.halo_exchange_time(1000, 2)


class TestPcieModel:
    def test_zero_bytes_free(self):
        assert PcieModel(POLARIS.node.gpu).transfer_time(0) == 0.0

    def test_bandwidth(self):
        p = PcieModel(POLARIS.node.gpu)
        # 20 GB at 20 GB/s ~ 1 s
        assert p.transfer_time(20 * 10**9) == pytest.approx(1.0, rel=0.01)

    def test_latency_floor(self):
        p = PcieModel(POLARIS.node.gpu)
        assert p.transfer_time(1) >= POLARIS.node.gpu.pcie_latency_s

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            PcieModel(POLARIS.node.gpu).transfer_time(-5)


class TestFilesystemModel:
    def test_aggregate_cap(self):
        fs = FilesystemModel(POLARIS.fs)
        assert fs.effective_write_gbs(10_000) == POLARIS.fs.aggregate_write_gbs

    def test_per_node_cap(self):
        fs = FilesystemModel(POLARIS.fs)
        assert fs.effective_write_gbs(1) == POLARIS.fs.per_node_write_gbs

    def test_write_time_includes_sync(self):
        fs = FilesystemModel(POLARIS.fs)
        assert fs.write_time(0, 1) >= POLARIS.fs.sync_latency_s

    def test_more_data_takes_longer(self):
        fs = FilesystemModel(POLARIS.fs)
        assert fs.write_time(10**12, 70) > fs.write_time(10**9, 70)

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            FilesystemModel(POLARIS.fs).write_time(100, 0)


class TestClock:
    def test_advance(self):
        clk = SimClock()
        clk.advance(1.5, "compute")
        clk.advance(0.5, "io")
        assert clk.now == 2.0
        assert clk.ledger.seconds == {"compute": 1.5, "io": 0.5}

    def test_advance_negative_raises(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_sync_to(self):
        clk = SimClock()
        clk.advance(1.0)
        clk.sync_to(3.0)
        assert clk.now == 3.0
        assert clk.ledger.seconds["wait"] == 2.0
        clk.sync_to(2.0)  # no-op going backwards
        assert clk.now == 3.0

    def test_ledger_merge(self):
        a, b = CostLedger(), CostLedger()
        a.add_time("x", 1.0)
        b.add_time("x", 2.0)
        b.add_bytes("net", 100)
        a.merge(b)
        assert a.seconds["x"] == 3.0
        assert a.nbytes["net"] == 100
        assert a.total_seconds() == 3.0
        assert a.total_bytes() == 100

    def test_ledger_negative_raises(self):
        with pytest.raises(ValueError):
            CostLedger().add_time("x", -1)
        with pytest.raises(ValueError):
            CostLedger().add_bytes("x", -1)
