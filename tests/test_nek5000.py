"""Tests for the Nek5000 compatibility layer.

The paper's coupling code lives in one shared repository used by both
Nek5000 and NekRS; these tests assert the analogous property here: one
NekDataAdaptor instruments both solver flavors unchanged.
"""

import numpy as np
import pytest

from repro.insitu import Bridge, NekDataAdaptor
from repro.nek5000 import Nek5000Solver
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.occa import Device
from repro.parallel import SerialCommunicator
from repro.sensei.analyses import HistogramAnalysis


@pytest.fixture
def case():
    return lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3)


class TestNek5000Solver:
    def test_is_host_resident(self, case, comm):
        solver = Nek5000Solver(case, comm)
        assert solver.device.mode == "serial"

    def test_userchk_called_every_step(self, case, comm):
        seen = []
        solver = Nek5000Solver(
            case, comm, userchk=lambda s, r: seen.append(r.step)
        )
        solver.run(3)
        assert seen == [1, 2, 3]

    def test_matches_nekrs_physics(self, case):
        """Both flavors integrate the same equations identically."""
        legacy = Nek5000Solver(case, SerialCommunicator())
        modern = NekRSSolver(case, SerialCommunicator(), Device("cuda-sim"))
        legacy.run(3)
        modern.run(3)
        np.testing.assert_array_equal(legacy.u, modern.u)
        np.testing.assert_array_equal(legacy.p, modern.p)


class TestSharedAdaptor:
    def test_same_adaptor_instruments_both(self, case, comm):
        for solver_cls in (Nek5000Solver, NekRSSolver):
            solver = solver_cls(case, comm)
            solver.run(2)
            adaptor = NekDataAdaptor(solver)
            adaptor.set_data_time_step(2)
            hist = HistogramAnalysis(comm, array_name="pressure", bins=8)
            assert hist.execute(adaptor)
            assert hist.results[-1].total == solver.local_gridpoints()

    def test_nek5000_pays_no_device_copies(self, case, comm):
        """Coupling the CPU code crosses no device boundary — the
        contrast the paper draws with the GPU code."""
        solver = Nek5000Solver(case, comm)
        solver.run(1)
        adaptor = NekDataAdaptor(solver)
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "pressure")
        assert solver.device.transfers.total_bytes == 0

    def test_bridge_via_userchk(self, case, comm, tmp_path):
        """The Nek5000-idiomatic integration: the bridge in userchk."""
        xml = (
            '<sensei><analysis type="histogram" array="pressure" '
            'bins="4" frequency="1"/></sensei>'
        )
        holder = {}

        def userchk(solver, report):
            if "bridge" not in holder:
                holder["bridge"] = Bridge(
                    solver, config_xml=xml, output_dir=tmp_path
                )
            holder["bridge"].update(report.step, report.time)

        solver = Nek5000Solver(case, comm, userchk=userchk)
        solver.run(3)
        hist = holder["bridge"].analysis.adaptors[0][1]
        assert len(hist.results) == 3
