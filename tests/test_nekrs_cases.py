"""Tests for the science case builders."""

import numpy as np
import pytest

from repro.nekrs.cases import (
    lid_cavity_case,
    pebble_bed_case,
    pebble_centers,
    rayleigh_benard_case,
    weak_scaled_rbc_case,
)
from repro.sem.mesh import BoundaryTag


class TestPebbleCenters:
    @pytest.mark.parametrize("n", [1, 5, 146])
    def test_count(self, n):
        centers, radius = pebble_centers(n)
        assert centers.shape == (n, 3)
        assert radius > 0

    def test_no_overlap(self):
        centers, radius = pebble_centers(146)
        from scipy.spatial.distance import pdist

        assert pdist(centers).min() >= 2 * radius - 1e-9

    def test_inside_duct(self):
        centers, radius = pebble_centers(50, duct_width=1.0)
        assert (centers[:, 0] - radius >= -1e-9).all()
        assert (centers[:, 0] + radius <= 1.0 + 1e-9).all()
        assert (centers[:, 1] - radius >= -1e-9).all()
        assert (centers[:, 1] + radius <= 1.0 + 1e-9).all()

    def test_deterministic(self):
        a, _ = pebble_centers(20)
        b, _ = pebble_centers(20)
        np.testing.assert_array_equal(a, b)

    def test_invalid(self):
        with pytest.raises(ValueError):
            pebble_centers(0)


class TestPebbleBedCase:
    def test_name_matches_pb146(self):
        assert pebble_bed_case(146, num_steps=1).name == "pb146"

    def test_duct_grows_with_pebbles(self):
        small = pebble_bed_case(2, num_steps=1)
        large = pebble_bed_case(20, num_steps=1)
        assert large.extent[1][2] > small.extent[1][2]
        assert large.mesh_shape[2] > small.mesh_shape[2]

    def test_has_inflow_outflow(self):
        case = pebble_bed_case(2, num_steps=1)
        assert BoundaryTag.ZMIN in case.velocity_bcs
        assert case.pressure_dirichlet == (BoundaryTag.ZMAX,)

    def test_brinkman_marks_pebbles(self):
        case = pebble_bed_case(2, elements_per_unit=3, order=3, num_steps=1)
        centers, radius = pebble_centers(2)
        x = np.array([centers[0, 0]])
        y = np.array([centers[0, 1]])
        z = np.array([centers[0, 2]])
        inside = case.brinkman(x, y, z)
        outside = case.brinkman(x, y, z + 10 * radius)
        assert inside[0] > 100 * max(outside[0], 1e-30)

    def test_heat_source_in_pebbles_only(self):
        case = pebble_bed_case(2, num_steps=1)
        centers, radius = pebble_centers(2)
        q_in = case.heat_source(
            np.array([centers[0, 0]]), np.array([centers[0, 1]]),
            np.array([centers[0, 2]]), 0.0,
        )
        q_out = case.heat_source(np.array([0.0]), np.array([0.0]), np.array([0.0]), 0.0)
        assert q_in[0] > 10 * max(q_out[0], 1e-30)

    def test_temperature_enabled(self):
        assert pebble_bed_case(2, num_steps=1).has_temperature


class TestRBCCase:
    def test_nondimensional_groups(self):
        case = rayleigh_benard_case(rayleigh=1e6, prandtl=0.7, num_steps=1)
        nu, kappa = case.viscosity, case.conductivity
        assert nu / kappa == pytest.approx(0.7)          # Pr = nu/kappa
        assert 1.0 / (nu * kappa) == pytest.approx(1e6)  # Ra = 1/(nu kappa)

    def test_periodic_sidewalls(self):
        case = rayleigh_benard_case(num_steps=1)
        assert case.periodic == (True, True, False)

    def test_plate_temperatures(self):
        case = rayleigh_benard_case(num_steps=1)
        zmin = case.temperature_bcs[BoundaryTag.ZMIN]
        zmax = case.temperature_bcs[BoundaryTag.ZMAX]
        x = np.zeros(1)
        assert zmin.evaluate(x, x, x, 0.0)[0] == 0.5
        assert zmax.evaluate(x, x, x, 0.0)[0] == -0.5

    def test_initial_temperature_satisfies_bcs(self):
        case = rayleigh_benard_case(num_steps=1)
        x = np.linspace(0, 2, 5)
        bottom = case.initial_temperature(x, x, np.zeros(5))
        top = case.initial_temperature(x, x, np.ones(5))
        np.testing.assert_allclose(bottom, 0.5, atol=1e-12)
        np.testing.assert_allclose(top, -0.5, atol=1e-12)

    def test_perturbation_deterministic_by_seed(self):
        a = rayleigh_benard_case(seed=1, num_steps=1)
        b = rayleigh_benard_case(seed=1, num_steps=1)
        c = rayleigh_benard_case(seed=2, num_steps=1)
        x = np.full(3, 0.3)
        z = np.full(3, 0.5)
        np.testing.assert_array_equal(
            a.initial_temperature(x, x, z), b.initial_temperature(x, x, z)
        )
        assert not np.array_equal(
            a.initial_temperature(x, x, z), c.initial_temperature(x, x, z)
        )

    def test_buoyancy_is_vertical(self):
        case = rayleigh_benard_case(num_steps=1)
        x = np.zeros(2)
        T = np.array([1.0, -1.0])
        fx, fy, fz = case.forcing(x, x, x, 0.0, T)
        np.testing.assert_array_equal(fx, 0.0)
        np.testing.assert_array_equal(fy, 0.0)
        np.testing.assert_array_equal(fz, T)

    def test_invalid_ra(self):
        with pytest.raises(ValueError):
            rayleigh_benard_case(rayleigh=-1)


class TestWeakScaledRBC:
    @pytest.mark.parametrize("ranks", [1, 4, 16])
    def test_elements_per_rank_roughly_constant(self, ranks):
        case = weak_scaled_rbc_case(ranks, elements_per_rank=8, num_steps=1)
        ex, ey, ez = case.mesh_shape
        per_rank = ex * ey * ez / ranks
        assert per_rank >= 8  # never less work than requested

    def test_grows_horizontally(self):
        small = weak_scaled_rbc_case(1, num_steps=1)
        big = weak_scaled_rbc_case(16, num_steps=1)
        assert big.mesh_shape[0] * big.mesh_shape[1] > small.mesh_shape[0] * small.mesh_shape[1]
        assert big.mesh_shape[2] == small.mesh_shape[2]  # height fixed

    def test_invalid(self):
        with pytest.raises(ValueError):
            weak_scaled_rbc_case(0)


class TestLidCavity:
    def test_lid_taper_vanishes_at_walls(self):
        case = lid_cavity_case(num_steps=1)
        lid = case.velocity_bcs[BoundaryTag.ZMAX]
        edge = np.array([0.0, 1.0])
        center = np.array([0.5])
        u_edge, _, _ = lid.evaluate(edge, edge, edge, 0.0)
        u_center, _, _ = lid.evaluate(center, center, center, 0.0)
        np.testing.assert_allclose(u_edge, 0.0, atol=1e-12)
        assert u_center[0] == pytest.approx(1.0)

    def test_viscosity_from_reynolds(self):
        assert lid_cavity_case(reynolds=250.0, num_steps=1).viscosity == pytest.approx(
            1.0 / 250.0
        )

    def test_invalid_reynolds(self):
        with pytest.raises(ValueError):
            lid_cavity_case(reynolds=0)
