"""Tests for .fld checkpoint encode/decode and file round-trips."""

import numpy as np
import pytest

from repro.nekrs.checkpoint import (
    CheckpointHeader,
    checkpoint_filename,
    checkpoint_nbytes,
    encode_checkpoint,
    read_checkpoint,
    write_checkpoint,
)


@pytest.fixture
def fields(rng):
    shape = (3, 4, 4, 4)
    return {
        "velocity_x": rng.normal(size=shape),
        "velocity_y": rng.normal(size=shape),
        "pressure": rng.normal(size=shape),
    }


class TestHeader:
    def test_roundtrip(self):
        h = CheckpointHeader("pb146", 100, 0.125, 3, 8, (2, 5, 5, 5), ("u", "p"))
        out = CheckpointHeader.decode(h.encode())
        assert out == h

    def test_bad_magic(self):
        with pytest.raises(ValueError):
            CheckpointHeader.decode(b"#wrong stuff\n")

    def test_space_in_case_rejected(self):
        h = CheckpointHeader("bad case", 0, 0.0, 0, 1, (1, 2, 2, 2), ("u",))
        with pytest.raises(ValueError):
            h.encode()


class TestEncodeDecode:
    def test_file_roundtrip(self, tmp_path, fields):
        path, nbytes = write_checkpoint(
            tmp_path, "tc", 42, 1.5, rank=1, size=4, fields=fields
        )
        assert path.exists()
        assert path.stat().st_size == nbytes
        header, out = read_checkpoint(path)
        assert header.step == 42
        assert header.time == 1.5
        assert header.rank == 1
        assert set(out) == set(fields)
        for name in fields:
            np.testing.assert_array_equal(out[name], fields[name])

    def test_field_order_preserved(self, tmp_path, fields):
        path, _ = write_checkpoint(tmp_path, "tc", 0, 0.0, 0, 1, fields)
        header, _ = read_checkpoint(path)
        assert list(header.field_names) == list(fields)

    def test_empty_fields_raises(self):
        with pytest.raises(ValueError):
            encode_checkpoint("c", 0, 0.0, 0, 1, {})

    def test_mismatched_shapes_raise(self, fields):
        fields["odd"] = np.zeros((1, 2, 2, 2))
        with pytest.raises(ValueError):
            encode_checkpoint("c", 0, 0.0, 0, 1, fields)

    def test_non_4d_raises(self):
        with pytest.raises(ValueError):
            encode_checkpoint("c", 0, 0.0, 0, 1, {"u": np.zeros((4, 4))})

    def test_truncated_detected(self, tmp_path, fields):
        path, _ = write_checkpoint(tmp_path, "tc", 0, 0.0, 0, 1, fields)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(ValueError, match="truncated"):
            read_checkpoint(path)

    def test_trailing_bytes_detected(self, tmp_path, fields):
        path, _ = write_checkpoint(tmp_path, "tc", 0, 0.0, 0, 1, fields)
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(ValueError, match="trailing"):
            read_checkpoint(path)


class TestSizing:
    def test_filename_format(self):
        assert checkpoint_filename("pb146", 100, 3) == "pb1460.f00100.r0003"

    def test_nbytes_estimate_close(self, tmp_path, fields):
        path, actual = write_checkpoint(tmp_path, "tc", 0, 0.0, 0, 1, fields)
        est = checkpoint_nbytes((3, 4, 4, 4), len(fields))
        assert abs(est - actual) < 256

    def test_restart_reproduces_solver_state(self, tmp_path, tiny_solver):
        """Write a checkpoint mid-run, restart from it, states match."""
        from repro.nekrs import NekRSSolver
        from repro.parallel import SerialCommunicator

        tiny_solver.run(2)
        fields = {"u": tiny_solver.u, "v": tiny_solver.v,
                  "w": tiny_solver.w, "p": tiny_solver.p}
        path, _ = write_checkpoint(tmp_path, "c", 2, tiny_solver.time, 0, 1, fields)
        _, restored = read_checkpoint(path)
        fresh = NekRSSolver(tiny_solver.case, SerialCommunicator())
        fresh.u[:] = restored["u"]
        fresh.v[:] = restored["v"]
        fresh.w[:] = restored["w"]
        fresh.p[:] = restored["p"]
        np.testing.assert_array_equal(fresh.u, tiny_solver.u)
        np.testing.assert_array_equal(fresh.p, tiny_solver.p)
