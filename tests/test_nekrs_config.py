"""Tests for timestepper coefficients, CaseDefinition, and .par files."""

import numpy as np
import pytest

from repro.nekrs import (
    CaseDefinition,
    ScalarBC,
    VelocityBC,
    bdf_coefficients,
    ext_coefficients,
    par_to_overrides,
    read_par,
    write_par,
)
from repro.nekrs.parfile import ParFileError
from repro.nekrs.timestepper import effective_order
from repro.sem.mesh import BoundaryTag


class TestBDFCoefficients:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_consistency_first_order(self, order):
        """b0 - sum(b) = 0 (constants are steady states)."""
        b0, b = bdf_coefficients(order)
        assert b0 - sum(b) == pytest.approx(0.0)

    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_exactness_on_linear(self, order):
        """BDF differentiates u(t) = t exactly: b0*u^{n+1} - sum b_j u^{n-j} = dt."""
        b0, b = bdf_coefficients(order)
        dt = 0.1
        t_new = 1.0
        lhs = b0 * t_new - sum(bj * (t_new - (j + 1) * dt) for j, bj in enumerate(b))
        assert lhs / dt == pytest.approx(1.0)

    @pytest.mark.parametrize("order", [2, 3])
    def test_exactness_on_quadratic(self, order):
        b0, b = bdf_coefficients(order)
        dt = 0.1
        f = lambda t: t * t
        t_new = 1.0
        lhs = b0 * f(t_new) - sum(
            bj * f(t_new - (j + 1) * dt) for j, bj in enumerate(b)
        )
        assert lhs / dt == pytest.approx(2 * t_new)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            bdf_coefficients(4)


class TestEXTCoefficients:
    @pytest.mark.parametrize("order", [1, 2, 3])
    def test_sum_to_one(self, order):
        assert sum(ext_coefficients(order)) == pytest.approx(1.0)

    @pytest.mark.parametrize("order", [2, 3])
    def test_exact_on_linear(self, order):
        """Extrapolation of f(t)=t from past values hits t^{n+1}."""
        a = ext_coefficients(order)
        dt = 0.1
        t_new = 1.0
        pred = sum(aj * (t_new - (j + 1) * dt) for j, aj in enumerate(a))
        assert pred == pytest.approx(t_new)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            ext_coefficients(0)


class TestEffectiveOrder:
    def test_ramps_up(self):
        assert [effective_order(3, s) for s in range(5)] == [1, 2, 3, 3, 3]

    def test_order_one_constant(self):
        assert effective_order(1, 10) == 1


class TestCaseDefinition:
    def _minimal(self, **kw):
        defaults = dict(
            name="t", mesh_shape=(2, 2, 2), extent=((0, 0, 0), (1, 1, 1))
        )
        defaults.update(kw)
        return CaseDefinition(**defaults)

    def test_defaults(self):
        case = self._minimal()
        assert not case.has_temperature
        assert case.total_gridpoints() == 8 * 6**3

    def test_negative_viscosity(self):
        with pytest.raises(ValueError):
            self._minimal(viscosity=-1.0)

    def test_bad_dt(self):
        with pytest.raises(ValueError):
            self._minimal(dt=0.0)

    def test_bad_time_order(self):
        with pytest.raises(ValueError):
            self._minimal(time_order=5)

    def test_velocity_and_pressure_bc_conflict(self):
        with pytest.raises(ValueError):
            self._minimal(
                velocity_bcs={BoundaryTag.ZMAX: VelocityBC()},
                pressure_dirichlet=(BoundaryTag.ZMAX,),
            )

    def test_with_overrides(self):
        case = self._minimal()
        new = case.with_overrides(dt=0.5, num_steps=7)
        assert new.dt == 0.5 and new.num_steps == 7
        assert case.dt != 0.5  # original unchanged

    def test_conductivity_enables_temperature(self):
        assert self._minimal(conductivity=0.1).has_temperature


class TestVelocityBC:
    def test_constant_components(self):
        bc = VelocityBC(u=2.0)
        x = np.zeros((2, 2))
        u, v, w = bc.evaluate(x, x, x, 0.0)
        np.testing.assert_array_equal(u, 2.0)
        np.testing.assert_array_equal(v, 0.0)

    def test_callable_component(self):
        bc = VelocityBC(u=lambda x, y, z, t: x * t)
        x = np.array([[1.0, 2.0]])
        u, _, _ = bc.evaluate(x, x, x, 3.0)
        np.testing.assert_array_equal(u, [[3.0, 6.0]])

    def test_scalar_bc(self):
        bc = ScalarBC(lambda x, y, z, t: y + t)
        y = np.array([1.0, 2.0])
        np.testing.assert_array_equal(bc.evaluate(y, y, y, 1.0), [2.0, 3.0])


class TestParFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "case.par"
        write_par(path, {
            "GENERAL": {"polynomialOrder": 7, "dt": 1e-3, "numSteps": 3000},
            "VELOCITY": {"viscosity": 1e-2},
        })
        par = read_par(path)
        assert par["general"]["dt"] == "0.001"
        over = par_to_overrides(par)
        assert over == {
            "order": 7, "dt": 1e-3, "num_steps": 3000, "viscosity": 1e-2
        }

    def test_temperature_section(self, tmp_path):
        path = tmp_path / "t.par"
        write_par(path, {"TEMPERATURE": {"conductivity": 0.5}})
        assert par_to_overrides(read_par(path)) == {"conductivity": 0.5}

    def test_unknown_key_raises(self, tmp_path):
        path = tmp_path / "bad.par"
        write_par(path, {"GENERAL": {"tyop": 1}})
        with pytest.raises(ParFileError, match="tyop"):
            par_to_overrides(read_par(path))

    def test_bad_value_raises(self, tmp_path):
        path = tmp_path / "bad.par"
        write_par(path, {"GENERAL": {"dt": "soon"}})
        with pytest.raises(ParFileError, match="dt"):
            par_to_overrides(read_par(path))

    def test_passthrough_keys_ignored(self, tmp_path):
        path = tmp_path / "w.par"
        write_par(path, {"GENERAL": {"writeInterval": 100}})
        assert par_to_overrides(read_par(path)) == {}

    def test_overrides_apply_to_case(self, tmp_path):
        from repro.nekrs.cases import lid_cavity_case

        path = tmp_path / "c.par"
        write_par(path, {"GENERAL": {"dt": 0.25}})
        case = lid_cavity_case().with_overrides(**par_to_overrides(read_par(path)))
        assert case.dt == 0.25

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "x.par"
        path.write_text("this is not ini [")
        with pytest.raises(ParFileError):
            read_par(path)
