"""Physics and behavior tests for the Navier-Stokes solver.

These are the validation tests a CFD code must pass: analytic decay
(Taylor-Green), divergence control, boundary-condition enforcement,
serial/parallel equivalence, Boussinesq buoyancy direction, Brinkman
penalization, and conservation sanity.
"""

import math

import numpy as np
import pytest

from repro.nekrs import CaseDefinition, NekRSSolver
from repro.nekrs.cases import (
    lid_cavity_case,
    pebble_bed_case,
    rayleigh_benard_case,
)
from repro.parallel import SerialCommunicator, run_spmd
from repro.sem.mesh import BoundaryTag


def taylor_green_case(dt=0.02, steps=10, order=6, viscosity=0.05):
    L = 2 * math.pi
    return CaseDefinition(
        name="tgv",
        mesh_shape=(2, 2, 2),
        extent=((0, 0, 0), (L, L, L)),
        order=order,
        periodic=(True, True, True),
        viscosity=viscosity,
        dt=dt,
        num_steps=steps,
        time_order=2,
        pressure_tol=1e-9,
        velocity_tol=1e-10,
        initial_velocity=lambda x, y, z: (
            np.sin(x) * np.cos(y),
            -np.cos(x) * np.sin(y),
            np.zeros_like(x),
        ),
    )


class TestTaylorGreen:
    """Analytic solution: u decays as exp(-2 nu t), pressure follows."""

    def test_velocity_error_small(self):
        case = taylor_green_case(dt=0.02, steps=10)
        s = NekRSSolver(case, SerialCommunicator())
        s.run(10)
        x, y, _ = s.mesh.coords()
        decay = math.exp(-2 * case.viscosity * s.time)
        ue = np.sin(x) * np.cos(y) * decay
        err = s.ops.norm(s.u - ue) / s.ops.norm(ue)
        assert err < 5e-4

    def test_error_decreases_with_dt(self):
        errs = []
        for dt, steps in ((0.04, 5), (0.01, 20)):
            case = taylor_green_case(dt=dt, steps=steps)
            s = NekRSSolver(case, SerialCommunicator())
            s.run(steps)
            x, y, _ = s.mesh.coords()
            decay = math.exp(-2 * case.viscosity * s.time)
            ue = np.sin(x) * np.cos(y) * decay
            errs.append(s.ops.norm(s.u - ue) / s.ops.norm(ue))
        assert errs[1] < errs[0]

    def test_kinetic_energy_decays_at_analytic_rate(self):
        case = taylor_green_case(dt=0.02, steps=10)
        s = NekRSSolver(case, SerialCommunicator())
        ke0 = s.kinetic_energy()
        s.run(10)
        expected = ke0 * math.exp(-4 * case.viscosity * s.time)
        assert s.kinetic_energy() == pytest.approx(expected, rel=2e-3)

    def test_w_component_stays_zero(self):
        case = taylor_green_case(steps=5)
        s = NekRSSolver(case, SerialCommunicator())
        s.run(5)
        assert s.ops.norm(s.w) < 1e-8


class TestDivergence:
    def test_divergence_bounded(self, tiny_solver):
        reports = tiny_solver.run(3)
        # pointwise divergence is controlled by the pressure tolerance
        assert reports[-1].divergence_norm < 50.0
        assert np.isfinite(reports[-1].divergence_norm)

    def test_divergence_shrinks_with_pressure_tol(self):
        """A barely-solved pressure leaves much more divergence; at
        tight tolerances the splitting error dominates instead."""
        divs = {}
        for tol in (0.5, 1e-8):
            case = taylor_green_case(dt=0.02, steps=3).with_overrides(
                pressure_tol=tol
            )
            s = NekRSSolver(case, SerialCommunicator())
            reports = s.run(3)
            divs[tol] = reports[-1].divergence_norm
        assert divs[1e-8] < divs[0.5]


class TestBoundaryConditions:
    def test_noslip_walls_enforced(self, tiny_solver):
        tiny_solver.run(2)
        for tag in (BoundaryTag.XMIN, BoundaryTag.XMAX, BoundaryTag.ZMIN):
            nodes = tiny_solver.mesh.boundary_nodes(tag)
            np.testing.assert_allclose(tiny_solver.u[nodes], 0.0, atol=1e-12)
            np.testing.assert_allclose(tiny_solver.w[nodes], 0.0, atol=1e-12)

    def test_lid_velocity_enforced(self, tiny_solver):
        tiny_solver.run(2)
        lid = tiny_solver.mesh.boundary_nodes(BoundaryTag.ZMAX)
        x, y, _ = tiny_solver.mesh.coords()
        expected = (16.0 * x * (1 - x) * y * (1 - y)) ** 2
        np.testing.assert_allclose(
            tiny_solver.u[lid], expected[lid], atol=1e-10
        )

    def test_lid_drives_flow(self, tiny_solver):
        assert tiny_solver.kinetic_energy() == 0.0
        tiny_solver.run(3)
        assert tiny_solver.kinetic_energy() > 0.0

    def test_time_dependent_bc(self):
        case = lid_cavity_case(elements=2, order=3, dt=1e-2)
        ramp = case.with_overrides(
            velocity_bcs={
                **case.velocity_bcs,
                BoundaryTag.ZMAX: type(case.velocity_bcs[BoundaryTag.ZMAX])(
                    u=lambda x, y, z, t: t
                ),
            }
        )
        s = NekRSSolver(ramp, SerialCommunicator())
        s.run(2)
        # lid nodes that are NOT shared with the side walls (edge nodes
        # take the wall's no-slip value; application order is by face)
        x, y, _ = s.mesh.coords()
        lid = s.mesh.boundary_nodes(BoundaryTag.ZMAX) & (x > 1e-9) & (x < 1 - 1e-9) \
            & (y > 1e-9) & (y < 1 - 1e-9)
        np.testing.assert_allclose(s.u[lid], s.time, atol=1e-12)


class TestParallelEquivalence:
    def test_serial_vs_four_ranks(self):
        """The solver is rank-count invariant to roundoff."""

        def body(comm):
            case = lid_cavity_case(elements=2, order=3, dt=5e-3)
            s = NekRSSolver(case, comm)
            reports = s.run(3)
            return (
                s.kinetic_energy(),
                reports[-1].pressure_iterations,
                reports[-1].divergence_norm,
            )

        serial = run_spmd(1, body)[0]
        par = run_spmd(4, body)[0]
        assert par[0] == pytest.approx(serial[0], rel=1e-10)
        assert par[1] == serial[1]
        assert par[2] == pytest.approx(serial[2], rel=1e-6)


class TestBoussinesq:
    def test_hot_fluid_rises(self):
        """Unstable stratification + buoyancy drives upward flow."""
        case = rayleigh_benard_case(
            rayleigh=1e5, aspect=(1, 1), elements_per_unit=2, order=4,
            dt=5e-3, num_steps=20,
        )
        s = NekRSSolver(case, SerialCommunicator())
        s.run(20)
        assert s.kinetic_energy() > 1e-10
        # rising fluid is hotter than sinking fluid on the midplane
        mid = np.abs(s.mesh.z - 0.5) < 0.15
        up = mid & (s.w > np.percentile(s.w[mid], 90))
        down = mid & (s.w < np.percentile(s.w[mid], 10))
        assert s.T[up].mean() > s.T[down].mean()

    def test_conductive_state_without_perturbation_stays_still(self):
        case = rayleigh_benard_case(
            rayleigh=1e3, aspect=(1, 1), elements_per_unit=2, order=3,
            dt=5e-3, num_steps=5,
        )
        # pure conductive profile (no perturbation): no flow develops
        case = case.with_overrides(initial_temperature=lambda x, y, z: 0.5 - z)
        s = NekRSSolver(case, SerialCommunicator())
        s.run(5)
        # hydrostatic balance up to splitting error: no convection forms
        assert s.kinetic_energy() < 1e-6

    def test_temperature_bounded_by_plates(self):
        case = rayleigh_benard_case(
            rayleigh=1e4, aspect=(1, 1), elements_per_unit=2, order=4,
            dt=5e-3, num_steps=10,
        )
        s = NekRSSolver(case, SerialCommunicator())
        s.run(10)
        # maximum principle (up to small overshoot from the perturbation)
        assert s.T.max() <= 0.55
        assert s.T.min() >= -0.55


class TestBrinkman:
    def test_velocity_suppressed_inside_pebbles(self):
        case = pebble_bed_case(
            num_pebbles=2, elements_per_unit=3, order=3, dt=2e-3,
            num_steps=10, brinkman_chi=1e4,
        )
        s = NekRSSolver(case, SerialCommunicator())
        s.run(10)
        solid = s.chi > 0.5 * 1e4
        fluid = s.chi < 1.0
        speed = np.sqrt(s.u**2 + s.v**2 + s.w**2)
        # an order of magnitude of suppression at this coarse resolution
        assert speed[solid].mean() < 0.1 * speed[fluid].mean()

    def test_negative_chi_rejected(self):
        case = lid_cavity_case(elements=2, order=2).with_overrides(
            brinkman=lambda x, y, z: -np.ones_like(x)
        )
        with pytest.raises(ValueError):
            NekRSSolver(case, SerialCommunicator())


class TestSolverBookkeeping:
    def test_step_reports_monotone_time(self, tiny_solver):
        reports = tiny_solver.run(3)
        times = [r.time for r in reports]
        assert times == sorted(times)
        assert reports[-1].step == 3

    def test_observer_called_every_step(self, tiny_solver):
        seen = []
        tiny_solver.run(3, observer=lambda s, r: seen.append(r.step))
        assert seen == [1, 2, 3]

    def test_memory_bytes_positive_and_stable(self, tiny_solver):
        m0 = tiny_solver.memory_bytes()
        tiny_solver.run(3)
        m1 = tiny_solver.memory_bytes()
        assert m0 > 0
        # histories fill up after start-up, then stay flat
        tiny_solver.run(2)
        assert tiny_solver.memory_bytes() == m1

    def test_cfl_positive_with_flow(self, tiny_solver):
        tiny_solver.run(2)
        assert tiny_solver.cfl() > 0

    def test_device_fields_alias_state(self, tiny_solver):
        tiny_solver.run(1)
        np.testing.assert_array_equal(
            tiny_solver.device_fields["pressure"].copy_to_host(), tiny_solver.p
        )

    def test_local_gridpoints(self, tiny_solver):
        assert tiny_solver.local_gridpoints() == 8 * 4**3
