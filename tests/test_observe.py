"""Unit tests for the repro.observe telemetry layer."""

import threading

import pytest

from repro.observe import (
    Counter,
    Gauge,
    Histogram,
    MemoryMeter,
    MetricsRegistry,
    NullTracer,
    Telemetry,
    TelemetrySession,
    Tracer,
    active,
    aggregate_peaks,
    get_telemetry,
    install,
    uninstall,
)
from repro.observe.tracer import SpanEvent
from repro.parallel import run_spmd
from repro.util.timing import TimingStats


class FakeClock:
    """Deterministic monotonic clock for trace tests."""

    def __init__(self, tick: float = 1.0):
        self.now = 0.0
        self.tick = tick

    def __call__(self) -> float:
        t = self.now
        self.now += self.tick
        return t


class TestTracer:
    def test_span_records_event(self):
        tr = Tracer(rank=3, clock=FakeClock())
        with tr.span("work", step=7):
            pass
        (event,) = tr.events
        assert event.name == "work"
        assert event.path == "work"
        assert event.rank == 3
        assert event.args == {"step": 7}
        assert event.dur == pytest.approx(1.0)

    def test_nested_spans_build_paths(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("outer"):
            with tr.span("inner"):
                pass
            with tr.span("inner"):
                pass
        paths = sorted(e.path for e in tr.events)
        assert paths == ["outer", "outer/inner", "outer/inner"]

    def test_span_records_on_exception(self):
        tr = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError("x")
        assert [e.name for e in tr.events] == ["boom"]

    def test_instant(self):
        tr = Tracer(rank=1, clock=FakeClock())
        tr.instant("fault.drop_step", step=2)
        (event,) = tr.events
        assert event.name == "fault.drop_step"
        assert event.args == {"step": 2}

    def test_span_totals_self_time(self):
        clock = FakeClock()
        tr = Tracer(clock=clock)
        with tr.span("outer"):        # enter t=0
            with tr.span("inner"):    # enter t=1, exit t=2
                pass
        # outer exits at t=3: total 3, self 3 - 1 = 2
        totals = tr.span_totals()
        assert totals["outer"]["total"] == pytest.approx(3.0)
        assert totals["outer"]["self"] == pytest.approx(2.0)
        assert totals["outer/inner"]["total"] == pytest.approx(1.0)

    def test_concurrent_threads_have_separate_stacks(self):
        tr = Tracer(clock=FakeClock())
        barrier = threading.Barrier(2)

        def body():
            with tr.span("a"):
                barrier.wait()
                with tr.span("b"):
                    barrier.wait()

        threads = [threading.Thread(target=body) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        paths = sorted(e.path for e in tr.events)
        assert paths == ["a", "a", "a/b", "a/b"]

    def test_null_tracer_is_inert(self):
        tr = NullTracer()
        with tr.span("anything", k=1):
            tr.instant("nothing")
        assert tr.events == []
        assert not tr.enabled


class TestMetrics:
    def test_counter(self):
        c = Counter("repro_things_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name!")

    def test_gauge_aggs(self):
        for agg, expected in (("max", 5.0), ("min", 2.0), ("sum", 7.0), ("last", 2.0)):
            a = Gauge("g", agg=agg)
            b = Gauge("g", agg=agg)
            a.set(5)
            b.set(2)
            a.merge_from(b)
            assert a.value == expected, agg

    def test_histogram_buckets(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # upper bounds inclusive: 0.5 and 1.0 land in le=1
        assert h.counts == [2, 1, 1]
        assert h.stats.count == 4

    def test_histogram_merge_matches_single_stream(self):
        a = Histogram("h")
        b = Histogram("h")
        ref = TimingStats()
        for v in (0.001, 0.02, 0.3):
            a.observe(v)
            ref.add(v)
        for v in (1.5, 40.0):
            b.observe(v)
            ref.add(v)
        a.merge_from(b)
        assert a.stats.count == ref.count
        assert a.stats.mean == pytest.approx(ref.mean)
        assert a.stats.variance == pytest.approx(ref.variance)
        assert sum(a.counts) == 5

    def test_histogram_merge_bucket_mismatch(self):
        a = Histogram("h", buckets=(1.0,))
        b = Histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge_from(b)

    def test_registry_get_or_create(self):
        reg = MetricsRegistry()
        c1 = reg.counter("c")
        c2 = reg.counter("c")
        assert c1 is c2
        with pytest.raises(TypeError):
            reg.gauge("c")

    def test_registry_merge_leaves_other_unchanged(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.merge(b)
        assert a.get("c").value == 3
        assert b.get("c").value == 2

    def test_reduce_across_spmd_ranks(self):
        def body(comm):
            reg = MetricsRegistry(labels={"rank": str(comm.rank)})
            reg.counter("repro_steps_total").inc(comm.rank + 1)
            reg.histogram("repro_t", buckets=(1.0,)).observe(comm.rank)
            merged = reg.reduce(comm)
            return merged.get("repro_steps_total").value, merged.get("repro_t").stats.count

        results = run_spmd(3, body)
        # every rank sees the same merged totals: 1+2+3 and 3 samples
        assert all(r == (6.0, 3) for r in results)


class TestMemoryMeter:
    def test_allocate_free_peak(self):
        m = MemoryMeter()
        m.allocate("dev", 100)
        m.allocate("dev", 50)
        m.free("dev", 120)
        assert m.current("dev") == 30
        assert m.peak("dev") == 150

    def test_observe_sets_level(self):
        m = MemoryMeter()
        m.observe("staging", 100)
        m.observe("staging", 40)
        m.observe("staging", 70)
        assert m.current("staging") == 70
        assert m.peak("staging") == 100

    def test_over_free_clamps(self):
        m = MemoryMeter()
        m.allocate("q", 10)
        m.free("q", 50)
        assert m.current("q") == 0
        assert m.total_peak == 10

    def test_total_peak_vs_sum_of_peaks(self):
        m = MemoryMeter()
        m.observe("a", 100)
        m.observe("a", 0)
        m.observe("b", 100)
        # a and b never coexist: true HWM 100, decomposed sum 200
        assert m.total_peak == 100
        assert m.sum_of_peaks() == 200

    def test_aggregate_peaks(self):
        meters = [MemoryMeter(rank=r) for r in range(2)]
        meters[0].observe("solver", 100)
        meters[1].observe("solver", 150)
        meters[1].observe("staging", 30)
        assert aggregate_peaks(meters) == {"solver": 250, "staging": 30}


class TestTelemetryWiring:
    def teardown_method(self):
        uninstall()

    def test_default_is_noop(self):
        tel = get_telemetry()
        assert not tel.enabled
        with tel.tracer.span("x"):
            tel.metrics.counter("c").inc()
            tel.memory.allocate("m", 10)
        assert tel.tracer.events == []

    def test_install_uninstall(self):
        tel = Telemetry.create(rank=2)
        install(tel)
        assert get_telemetry() is tel
        uninstall()
        assert not get_telemetry().enabled

    def test_active_restores_previous(self):
        outer = Telemetry.create(rank=0)
        inner = Telemetry.create(rank=1)
        install(outer)
        with active(inner):
            assert get_telemetry() is inner
        assert get_telemetry() is outer

    def test_thread_local_isolation(self):
        session = TelemetrySession("iso")
        seen = {}

        def body(comm):
            with session.activate(comm.rank):
                get_telemetry().tracer.instant("mark", rank=comm.rank)
                seen[comm.rank] = get_telemetry().rank
            return get_telemetry().enabled

        enabled_after = run_spmd(3, body)
        assert seen == {0: 0, 1: 1, 2: 2}
        assert not any(enabled_after)  # activate() restored the no-op default
        for rank in range(3):
            events = session.rank(rank).tracer.events
            assert [e.args["rank"] for e in events] == [rank]

    def test_session_merged_views(self):
        clock = FakeClock()
        session = TelemetrySession("m", clock=clock)
        for rank in range(2):
            with session.activate(rank) as tel:
                with tel.tracer.span("work"):
                    pass
                tel.metrics.counter("repro_c_total").inc()
                tel.memory.observe("solver", 100)
        assert session.ranks == [0, 1]
        assert len(session.events()) == 2
        assert session.merged_metrics().get("repro_c_total").value == 2
        assert session.memory_aggregate() == {"solver": 200}
        assert session.memory_aggregate_total() == 200
        spans = [e for e in session.events() if isinstance(e, SpanEvent)]
        assert {e.rank for e in spans} == {0, 1}
