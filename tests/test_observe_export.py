"""Export-format tests: Chrome trace JSON round-trip, Prometheus text."""

import json
import re

import pytest

from repro.observe import (
    MetricsRegistry,
    TelemetrySession,
    chrome_trace,
    flame_summary,
    validate_nesting,
)
from repro.observe.tracer import InstantEvent, SpanEvent

from test_observe import FakeClock


def _traced_session() -> TelemetrySession:
    """Two ranks, deterministic clock, nested spans + one instant."""
    clock = FakeClock()
    session = TelemetrySession("golden", clock=clock)
    for rank in range(2):
        with session.activate(rank) as tel:
            with tel.tracer.span("solver.step", step=1):
                with tel.tracer.span("solver.pressure"):
                    pass
            tel.tracer.instant("fault.drop_step", step=1)
    return session


class TestChromeTrace:
    def test_golden_structure(self):
        # hand-built events with known timestamps -> exact golden JSON
        events = [
            SpanEvent(name="outer", path="outer", ts=10.0, dur=4.0, rank=0),
            SpanEvent(name="inner", path="outer/inner", ts=11.0, dur=2.0,
                      rank=0, args={"step": 3}),
            InstantEvent(name="fault.x", ts=12.0, rank=1),
        ]
        trace = chrome_trace(events, process_name="test")
        assert trace == {
            "traceEvents": [
                {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
                 "args": {"name": "test"}},
                {"ph": "M", "name": "thread_name", "pid": 0, "tid": 0,
                 "args": {"name": "rank 0"}},
                {"ph": "M", "name": "thread_sort_index", "pid": 0, "tid": 0,
                 "args": {"sort_index": 0}},
                {"ph": "M", "name": "thread_name", "pid": 0, "tid": 1,
                 "args": {"name": "rank 1"}},
                {"ph": "M", "name": "thread_sort_index", "pid": 0, "tid": 1,
                 "args": {"sort_index": 1}},
                {"ph": "X", "name": "outer", "cat": "repro", "ts": 0.0,
                 "dur": 4e6, "pid": 0, "tid": 0, "args": {}},
                {"ph": "X", "name": "inner", "cat": "repro", "ts": 1e6,
                 "dur": 2e6, "pid": 0, "tid": 0, "args": {"step": 3}},
                {"ph": "i", "name": "fault.x", "cat": "repro", "ts": 2e6,
                 "s": "t", "pid": 0, "tid": 1, "args": {}},
            ],
            "displayTimeUnit": "ms",
        }

    def test_round_trips_through_json(self):
        session = _traced_session()
        trace = json.loads(json.dumps(session.chrome_trace()))
        validate_nesting(trace)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(xs) == 4 and len(instants) == 2
        for e in xs:
            assert e["pid"] == 0
            assert e["tid"] in (0, 1)
            assert e["ts"] >= 0.0 and e["dur"] > 0.0
        for e in instants:
            assert e["s"] == "t"
        # one track per rank, named in metadata
        names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {0: "rank 0", 1: "rank 1"}

    def test_spans_nest_per_track(self):
        trace = _traced_session().chrome_trace()
        by_tid = {}
        for e in trace["traceEvents"]:
            if e["ph"] == "X":
                by_tid.setdefault(e["tid"], []).append(e)
        for tid, spans in by_tid.items():
            outer = next(s for s in spans if s["name"] == "solver.step")
            inner = next(s for s in spans if s["name"] == "solver.pressure")
            assert outer["ts"] <= inner["ts"]
            assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_validate_nesting_rejects_overlap(self):
        trace = {
            "traceEvents": [
                {"ph": "X", "name": "a", "ts": 0.0, "dur": 10.0, "pid": 0, "tid": 0},
                {"ph": "X", "name": "b", "ts": 5.0, "dur": 10.0, "pid": 0, "tid": 0},
            ]
        }
        with pytest.raises(ValueError, match="overlaps"):
            validate_nesting(trace)

    def test_write_chrome_trace(self, tmp_path):
        session = _traced_session()
        path = session.write_chrome_trace(tmp_path / "sub" / "trace.json")
        validate_nesting(json.loads(path.read_text()))


class TestFlameSummary:
    def test_tree_order_and_totals(self):
        session = _traced_session()
        text = session.flame_summary()
        lines = text.splitlines()
        assert "golden" in lines[0]
        # child line is indented and follows its parent
        step_idx = next(i for i, l in enumerate(lines) if l.startswith("solver.step"))
        assert lines[step_idx + 1].startswith("  solver.pressure")

    def test_empty(self):
        assert "no spans" in flame_summary([])


_PROM_LINE = re.compile(
    r"^(?:"
    r"# (?:HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+"
    r"|"
    r"[a-zA-Z_:][a-zA-Z0-9_:]*(?:_bucket|_sum|_count)?"
    r"(?:\{[^}]*\})? -?(?:[0-9.e+-]+|\+Inf)"
    r")$"
)


class TestPrometheus:
    def test_every_line_parses(self):
        reg = MetricsRegistry(labels={"rank": "0"})
        reg.counter("repro_steps_total", "Steps completed").inc(3)
        reg.gauge("repro_cfl", "CFL", agg="max").set(0.25)
        reg.histogram("repro_step_seconds", "Step wall time").observe(0.02)
        text = reg.to_prometheus()
        assert text.endswith("\n")
        for line in text.rstrip("\n").split("\n"):
            assert _PROM_LINE.match(line), f"unparseable line: {line!r}"

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'h_bucket{le="0.1"} 1' in text
        assert 'h_bucket{le="1"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text
        assert "h_count 3" in text

    def test_labels_stamped(self):
        reg = MetricsRegistry(labels={"rank": "2"})
        reg.counter("c").inc()
        assert 'c{rank="2"} 1' in reg.to_prometheus()
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(0.5)
        text = reg.to_prometheus()
        assert 'h_bucket{rank="2",le="1"} 1' in text
        assert 'h_sum{rank="2"} 0.5' in text

    def test_session_merged_prometheus(self):
        session = _traced_session()
        for rank in range(2):
            with session.activate(rank) as tel:
                tel.metrics.counter("repro_c_total").inc()
        merged = session.to_prometheus()
        assert "repro_c_total 2" in merged
        per_rank = session.to_prometheus(per_rank=True)
        assert 'repro_c_total{rank="0"} 1' in per_rank
        assert 'repro_c_total{rank="1"} 1' in per_rank

    def test_json_export(self, tmp_path):
        session = _traced_session()
        path = session.write_json(tmp_path / "telemetry.json")
        data = json.loads(path.read_text())
        assert data["label"] == "golden"
        assert data["ranks"] == [0, 1]
        assert "memory" in data and "metrics" in data
