"""End-to-end telemetry tests: traced runs, Fig. 3 agreement, overhead."""

import json
import time

import pytest

from repro.bench.measure import measure_insitu_profile, measure_intransit_profiles
from repro.nekrs.cases import lid_cavity_case, weak_scaled_rbc_case
from repro.observe import TelemetrySession, get_telemetry, validate_nesting
from repro.observe.tracer import SpanEvent

RANKS = 2
STEPS = 4
INTERVAL = 2


def _tiny_case():
    return lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3,
                           num_steps=STEPS)


@pytest.fixture(scope="module")
def traced_catalyst(tmp_path_factory):
    session = TelemetrySession("it-catalyst")
    profile = measure_insitu_profile(
        _tiny_case(),
        "catalyst",
        ranks=RANKS,
        steps=STEPS,
        interval=INTERVAL,
        output_dir=tmp_path_factory.mktemp("catalyst"),
        array="velocity_magnitude",
        color_array="pressure",
        image_size=64,
        session=session,
    )
    return profile, session


class TestTracedCatalystRun:
    def test_chrome_trace_valid_with_one_track_per_rank(self, traced_catalyst):
        _, session = traced_catalyst
        trace = json.loads(json.dumps(session.chrome_trace()))
        validate_nesting(trace)
        tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert tids == set(range(RANKS))

    def test_spans_nest_solver_bridge_render(self, traced_catalyst):
        _, session = traced_catalyst
        paths = {e.path for e in session.events() if isinstance(e, SpanEvent)}
        assert "solver.step" in paths
        assert "solver.step/solver.pressure" in paths
        assert "bridge.execute" in paths
        assert "bridge.execute/catalyst.render" in paths
        assert "bridge.execute/catalyst.gather" in paths

    def test_per_rank_span_counts(self, traced_catalyst):
        _, session = traced_catalyst
        for rank in range(RANKS):
            events = session.rank(rank).tracer.events
            steps = [e for e in events
                     if isinstance(e, SpanEvent) and e.name == "solver.step"]
            assert len(steps) == STEPS

    def test_metrics_match_run_shape(self, traced_catalyst):
        _, session = traced_catalyst
        merged = session.merged_metrics()
        assert merged.get("repro_solver_steps_total").value == RANKS * STEPS
        assert merged.get("repro_solver_step_seconds").stats.count == RANKS * STEPS
        invocations = STEPS // INTERVAL
        assert merged.get("repro_bridge_invocations_total").value == RANKS * invocations

    def test_memory_hwm_matches_fig3_profile_within_1pct(self, traced_catalyst):
        profile, session = traced_catalyst
        # the RunProfile's Fig. 3 inputs and the telemetry meters must
        # describe the same quantities, within 1%
        for rank in range(RANKS):
            peaks = session.rank(rank).memory.peaks()
            assert peaks["solver"] == pytest.approx(
                profile.solver_memory_bytes_per_rank, rel=0.01
            )
            assert peaks["sensei.staging"] == pytest.approx(
                profile.staging_memory_bytes_per_rank, rel=0.01
            )

    def test_prometheus_dump_nonempty(self, traced_catalyst):
        _, session = traced_catalyst
        text = session.to_prometheus()
        assert "repro_solver_step_seconds_bucket" in text
        assert "repro_catalyst_images_total" in text


class TestTracedInTransitRun:
    def test_sst_spans_and_queue_memory(self, tmp_path):
        session = TelemetrySession("it-sst")

        def case_builder(nsim):
            c = weak_scaled_rbc_case(nsim, elements_per_rank=4, order=3, dt=1e-3)
            return c.with_overrides(num_steps=3)

        measure_intransit_profiles(
            case_builder,
            "catalyst",
            total_ranks=3,
            steps=3,
            stream_interval=1,
            ratio=2,
            output_dir=tmp_path,
            image_size=64,
            session=session,
        )
        events = session.events()
        names = {e.name for e in events if isinstance(e, SpanEvent)}
        assert {"solver.step", "bridge.execute", "sst.put", "sst.get"} <= names
        # sim ranks put (nested under the bridge), the endpoint rank gets
        put_ranks = {e.rank for e in events
                     if isinstance(e, SpanEvent) and e.name == "sst.put"}
        get_ranks = {e.rank for e in events
                     if isinstance(e, SpanEvent) and e.name == "sst.get"}
        assert put_ranks == {0, 1} and get_ranks == {2}
        assert any(
            e.path == "bridge.execute/sst.put"
            for e in events if isinstance(e, SpanEvent)
        )
        # writer ranks account their staged-queue high-water mark
        for rank in put_ranks:
            assert session.rank(rank).memory.peak("sst.queue") > 0
        merged = session.merged_metrics()
        assert merged.get("repro_sst_steps_put_total").value == 6
        assert merged.get("repro_sst_steps_got_total").value == 6

    def test_fault_instants_appear_in_trace(self, tmp_path):
        from repro.faults.injector import FaultInjector

        session = TelemetrySession("it-faults")
        injector = FaultInjector(seed=1, schedule={"corrupt_payload": (1,)})

        def case_builder(nsim):
            c = weak_scaled_rbc_case(nsim, elements_per_rank=4, order=3, dt=1e-3)
            return c.with_overrides(num_steps=3)

        measure_intransit_profiles(
            case_builder,
            "checkpoint",
            total_ranks=3,
            steps=3,
            stream_interval=1,
            ratio=2,
            output_dir=tmp_path,
            injector=injector,
            session=session,
        )
        instants = [e for e in session.events() if not isinstance(e, SpanEvent)]
        assert any(e.name == "fault.corrupt_payload" for e in instants)


class TestOverheadGuard:
    def test_noop_spans_under_5pct_of_solver_run(self):
        """The no-op default must be invisible next to real solver work.

        Both sides are best-of-3 with a warmup pass: single
        measurements of sub-second work on a shared core are coin
        flips, and one descheduled slice used to fail this test.
        """
        from repro.nekrs.solver import NekRSSolver
        from repro.parallel import SerialCommunicator

        NekRSSolver(_tiny_case(), SerialCommunicator()).run(num_steps=1)
        run_seconds = None
        for _ in range(3):
            solver = NekRSSolver(_tiny_case(), SerialCommunicator())
            t0 = time.perf_counter()
            solver.run(num_steps=STEPS)
            elapsed = time.perf_counter() - t0
            run_seconds = elapsed if run_seconds is None else min(
                run_seconds, elapsed)

        # measure the raw per-call cost of the disabled telemetry path
        tel = get_telemetry()
        assert not tel.enabled
        trials = 10_000
        per_span = None
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(trials):
                with tel.tracer.span("solver.step", step=0):
                    pass
            cost = (time.perf_counter() - t0) / trials
            per_span = cost if per_span is None else min(per_span, cost)

        # spans the instrumentation adds per step: step + 4 phases,
        # plus bridge/catalyst spans on in situ steps; 16 is generous
        overhead = per_span * 16 * STEPS
        assert overhead < 0.05 * run_seconds, (
            f"no-op telemetry overhead {overhead:.6f}s is >= 5% of the "
            f"{run_seconds:.3f}s instrumented run"
        )


class TestBenchAndCli:
    def test_bench_telemetry_table(self):
        from repro.bench import telemetry

        telemetry.clear_cache()
        table = telemetry.run(
            measure_kwargs=dict(ranks=2, steps=2, interval=2, num_pebbles=2,
                                order=2, image_size=48)
        )
        text = table.render()
        assert "catalyst" in text and "original" in text
        rows = {r["mode"]: r for r in table.as_dicts()}
        assert rows["catalyst"]["solver HWM [MiB]"] > 0
        assert rows["checkpoint"]["checkpoint [s]"] > 0
        flame = telemetry.flame(
            measure_kwargs=dict(ranks=2, steps=2, interval=2, num_pebbles=2,
                                order=2, image_size=48)
        )
        assert "solver.step" in flame
        telemetry.clear_cache()

    def test_cli_trace_writes_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace_out"
        rc = main([
            "trace", "--case", "cavity", "--ranks", "2", "--steps", "2",
            "--interval", "2", "--output", str(out),
        ])
        assert rc == 0
        trace = json.loads((out / "trace.json").read_text())
        validate_nesting(trace)
        assert (out / "metrics.prom").read_text()
        assert json.loads((out / "telemetry.json").read_text())["ranks"] == [0, 1]
        captured = capsys.readouterr().out
        assert "span summary" in captured
        assert "memory high-water marks" in captured
