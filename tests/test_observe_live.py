"""Live telemetry plane tests: correlation, SLOs, exports, overhead.

The acceptance contract of ``repro.observe.live``:

- a fleet in-transit run reconstructs a complete seven-stage
  :class:`StepTimeline` for every committed step, with attributed
  stage seconds summing to no more than the step's wall time;
- ``/metrics``, ``/healthz``, ``/slo`` and ``/timeline`` serve live
  data from a running ``HttpFrameServer`` mid-run;
- an injected endpoint crash fires the recovery-time SLO alert, which
  the fleet autoscaler observes as scale-up pressure, and the dead
  endpoint's trace track is finalized at detection time;
- the adaptive sampler steps detail down under a forced overhead
  budget, and rendered artifacts are byte-identical with the plane
  on or off.

Marked ``observe``; the end-to-end classes reuse the ``fleet`` test
idiom (threaded SPMD ranks, seeded injector schedules).
"""

import http.client
import json
import threading
import time

import pytest

from repro.faults import FaultInjector, RetryPolicy
from repro.fleet import AutoscalerConfig, FleetConfig
from repro.insitu import InTransitRunner
from repro.nekrs.cases import weak_scaled_rbc_case
from repro.observe import TelemetrySession, naming_violations
from repro.observe.live import (
    LEVEL_COUNTERS,
    LEVEL_FULL,
    STAGES,
    AdaptiveSampler,
    LiveAggregator,
    LivePlane,
    SLOSpec,
    SLOWatchdog,
    Snapshot,
    StageEvent,
    StepTag,
    WireMark,
    build_timeline,
    default_slos,
)
from repro.parallel import run_spmd
from repro.serve import FrameHub, HttpFrameServer, SteeringBus

pytestmark = [pytest.mark.observe, pytest.mark.timeout(180)]


def _runner(tmp, session, steps=3, injector=None, retry=None, fleet=None):
    def case_builder(nsim):
        c = weak_scaled_rbc_case(nsim, elements_per_rank=2, order=3, dt=1e-3)
        return c.with_overrides(num_steps=steps)

    return InTransitRunner(
        case_builder,
        mode="catalyst",
        ratio=2,
        num_steps=steps,
        stream_interval=1,
        arrays=("temperature",),
        output_dir=tmp,
        image_size=48,
        session=session,
        injector=injector,
        retry=retry,
        fleet=fleet if fleet is not None else FleetConfig(),
    )


# -- unit: correlation tags and timelines -----------------------------------


class TestStepTag:
    def test_roundtrip(self):
        tag = StepTag(run_id="fleet-0007", step=12, stream=3)
        assert StepTag.decode(tag.encode()) == tag

    def test_run_id_may_contain_colons(self):
        tag = StepTag(run_id="lab:fleet-1", step=2, stream=0)
        assert StepTag.decode(tag.encode()) == tag


class TestTimelineAttribution:
    def test_overlap_charged_to_downstream_stage_once(self):
        events = [
            StageEvent(stage="solve", step=1, t0=0.0, t1=1.0),
            StageEvent(stage="marshal", step=1, t0=0.5, t1=1.5),
        ]
        tl = build_timeline("r", 1, events)
        att = tl.attributed_seconds
        # [0.5, 1.0) is covered by both; marshal (downstream) wins
        assert att["solve"] == pytest.approx(0.5)
        assert att["marshal"] == pytest.approx(1.0)
        assert sum(att.values()) == pytest.approx(tl.wall_seconds)

    def test_attributed_total_bounded_by_wall(self):
        events = [
            StageEvent(stage=s, step=1, t0=i * 0.1, t1=i * 0.1 + 0.15)
            for i, s in enumerate(STAGES)
        ]
        tl = build_timeline("r", 1, events)
        assert tl.complete
        assert sum(tl.attributed_seconds.values()) <= tl.wall_seconds + 1e-12

    def test_gaps_are_not_attributed(self):
        events = [
            StageEvent(stage="solve", step=1, t0=0.0, t1=0.2),
            StageEvent(stage="deliver", step=1, t0=0.8, t1=1.0),
        ]
        tl = build_timeline("r", 1, events)
        assert not tl.complete
        assert sum(tl.attributed_seconds.values()) == pytest.approx(0.4)
        assert tl.wall_seconds == pytest.approx(1.0)

    def test_to_json_shape(self):
        tl = build_timeline(
            "r", 4, [StageEvent(stage="solve", step=4, t0=0.0, t1=0.1)]
        )
        doc = tl.to_json()
        assert doc["run_id"] == "r" and doc["step"] == 4
        assert doc["stages"] == ["solve"] and not doc["complete"]
        assert doc["attributed_total"] <= doc["wall_seconds"] + 1e-12
        assert doc["events"][0]["stage"] == "solve"


# -- unit: adaptive sampler -------------------------------------------------


class TestAdaptiveSampler:
    def test_downgrades_when_budget_blown(self):
        sampler = AdaptiveSampler(budget=0.05)
        assert sampler.update(cost_s=0.02, wall_s=0.1) == LEVEL_FULL + 1
        assert sampler.downgrades == 1
        assert sampler.update(cost_s=0.02, wall_s=0.1) == LEVEL_COUNTERS
        # already at the floor: stays
        assert sampler.update(cost_s=0.02, wall_s=0.1) == LEVEL_COUNTERS
        assert sampler.downgrades == 2

    def test_upgrade_is_hysteretic(self):
        sampler = AdaptiveSampler(budget=0.05, patience=3)
        sampler.update(cost_s=0.02, wall_s=0.1)        # -> stage
        for _ in range(2):
            assert sampler.update(cost_s=1e-5, wall_s=0.1) != LEVEL_FULL
        assert sampler.update(cost_s=1e-5, wall_s=0.1) == LEVEL_FULL
        assert sampler.upgrades == 1

    def test_borderline_window_resets_calm(self):
        sampler = AdaptiveSampler(budget=0.05, patience=2)
        sampler.update(cost_s=0.02, wall_s=0.1)        # -> stage
        sampler.update(cost_s=1e-5, wall_s=0.1)        # calm 1
        sampler.update(cost_s=0.004, wall_s=0.1)       # in-budget, not calm
        sampler.update(cost_s=1e-5, wall_s=0.1)        # calm 1 again
        assert sampler.level != LEVEL_FULL

    def test_tiny_wall_ignored(self):
        sampler = AdaptiveSampler(budget=0.05, min_wall_s=1e-3)
        assert sampler.update(cost_s=1.0, wall_s=1e-6) == LEVEL_FULL
        assert sampler.downgrades == 0


# -- unit: aggregator wire pairing ------------------------------------------


class TestWirePairing:
    def _agg(self):
        return LiveAggregator("run-x")

    def test_put_then_got_builds_wire_stage(self):
        agg = self._agg()
        agg.ingest(Snapshot(
            rank=0, seq=0,
            wire_marks=(WireMark("put", step=1, stream=0, t=10.0,
                                 nbytes=100, rank=0),),
            counts={"wire_put_bytes": 100},
        ))
        assert agg.timeline(1) is None       # half a wire is no event
        agg.ingest(Snapshot(
            rank=2, seq=0,
            wire_marks=(WireMark("got", step=1, stream=0, t=10.25,
                                 nbytes=100, rank=2),),
            counts={"wire_got_bytes": 100},
        ))
        tl = agg.timeline(1)
        (wire,) = tl.stage_events("wire")
        assert wire.rank == 2                # attributed to the consumer
        assert wire.seconds == pytest.approx(0.25)
        assert agg.bytes_put == agg.bytes_got == 100
        assert agg.bytes_on_wire == 0

    def test_got_before_put_pairs_out_of_order(self):
        agg = self._agg()
        agg.ingest(Snapshot(
            rank=2, seq=0,
            wire_marks=(WireMark("got", step=3, stream=1, t=5.5, nbytes=0, rank=2),),
        ))
        agg.ingest(Snapshot(
            rank=1, seq=0,
            wire_marks=(WireMark("put", step=3, stream=1, t=5.0, nbytes=0, rank=1),),
        ))
        (wire,) = agg.timeline(3).stage_events("wire")
        assert wire.t0 == 5.0 and wire.t1 == 5.5

    def test_wire_duration_never_negative(self):
        agg = self._agg()
        agg.ingest(Snapshot(
            rank=0, seq=0,
            wire_marks=(WireMark("put", step=1, stream=0, t=2.0, nbytes=0),),
        ))
        agg.ingest(Snapshot(
            rank=1, seq=0,
            wire_marks=(WireMark("got", step=1, stream=0, t=1.9, nbytes=0, rank=1),),
        ))
        (wire,) = agg.timeline(1).stage_events("wire")
        assert wire.seconds == 0.0


# -- unit: SLO watchdog -----------------------------------------------------


class TestSLOWatchdog:
    def test_zero_budget_count_slo_fires_and_resolves(self):
        agg = LiveAggregator("r", horizon_s=60.0)
        dog = SLOWatchdog(specs=default_slos())
        agg.ingest(Snapshot(rank=0, seq=0, counts={"publish_stall": 1}))
        fired = dog.evaluate(agg)
        assert [a.slo for a in fired] == ["publish_stall"]
        assert dog.pressure() == 1
        # outside the window the count decays and the alert resolves
        later = agg._clock() + 120.0
        assert dog.evaluate(agg, now=later) == []
        assert dog.pressure() == 0
        assert dog.history[0].resolved_at is not None

    def test_step_latency_burn_needs_min_count(self):
        agg = LiveAggregator("r")
        spec = SLOSpec(name="step_latency", kind="step_latency",
                       objective=0.01, budget=0.1, min_count=4)
        dog = SLOWatchdog(specs=(spec,))
        agg.ingest(Snapshot(rank=0, seq=0, durations={"solve": [0.5] * 3}))
        assert dog.evaluate(agg) == []       # burning, but too few samples
        assert dog.burn_rates()["step_latency"] >= 1.0
        agg.ingest(Snapshot(rank=0, seq=1, durations={"solve": [0.5]}))
        assert [a.slo for a in dog.evaluate(agg)] == ["step_latency"]

    def test_recovery_alert_fires_at_detection(self):
        dog = SLOWatchdog(specs=default_slos(recovery_time_s=1.0))
        alert = dog.recovery_started(eid=2)
        assert alert.active and dog.pressure() == 1
        assert dog.recovery_finished(eid=2, seconds=0.2) is None
        assert dog.pressure() == 0
        assert alert.extra["phase"] == "complete"

    def test_blown_recovery_objective_escalates(self):
        dog = SLOWatchdog(specs=default_slos(recovery_time_s=0.1))
        dog.recovery_started(eid=1)
        breach = dog.recovery_finished(eid=1, seconds=0.5)
        assert breach is not None and breach.extra["phase"] == "breach"
        assert breach.burn_rate == pytest.approx(5.0)

    def test_alerts_reach_steering_bus_as_advisories(self):
        bus = SteeringBus()
        dog = SLOWatchdog(specs=default_slos(), bus=bus)
        dog.recovery_started(eid=0)
        (cmd,) = bus.drain()
        assert cmd.kind == "advisory"
        assert "endpoint 0" in cmd.value
        assert cmd.client == "slo-watchdog"


# -- metric naming convention (satellite) -----------------------------------


class TestNamingConvention:
    def test_violations_detected(self):
        from repro.observe import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("bad_counter")                 # prefix + suffix wrong
        reg.histogram("repro_thing_ms")            # unit suffix wrong
        reg.gauge("repro_queue_total")             # gauge posing as counter
        problems = naming_violations(reg)
        assert len(problems) == 4
        assert any("repro_ prefix" in p for p in problems)

    def test_clean_registry_passes(self):
        from repro.observe import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("repro_frames_total")
        reg.histogram("repro_step_seconds")
        reg.histogram("repro_payload_bytes")
        reg.gauge("repro_queue_depth")
        assert naming_violations(reg) == []


# -- end-to-end: clean instrumented fleet run -------------------------------


@pytest.fixture(scope="module")
def live_fleet_run(tmp_path_factory):
    """One clean 6-rank catalyst fleet run with the live plane attached."""
    session = TelemetrySession("live-accept")
    plane = LivePlane(session)
    runner = _runner(tmp_path_factory.mktemp("live"), session, steps=3)
    results = run_spmd(6, runner.run)
    plane.flush_all()
    return results, runner, session, plane


class TestLiveFleetAcceptance:
    def test_every_committed_step_has_complete_timeline(self, live_fleet_run):
        _results, runner, _session, plane = live_fleet_run
        committed = runner.last_coordinator.committed
        assert committed == {1, 2, 3}
        for step in sorted(committed):
            tl = plane.timeline(step)
            assert tl is not None, f"step {step} lost its timeline"
            assert tl.complete, (
                f"step {step} missing stages: "
                f"{set(STAGES) - set(tl.stages)}"
            )
            assert sum(tl.attributed_seconds.values()) <= (
                tl.wall_seconds + 1e-9
            )

    def test_stage_order_is_causal_per_step(self, live_fleet_run):
        *_ignored, plane = live_fleet_run
        tl = plane.timeline(1)
        solve = tl.stage_events("solve")
        deliver = tl.stage_events("deliver")
        assert min(e.t0 for e in solve) <= min(e.t0 for e in deliver)
        assert max(e.t1 for e in deliver) == pytest.approx(tl.wall_end)

    def test_all_ranks_reported(self, live_fleet_run):
        results, _runner, _session, plane = live_fleet_run
        num_sim = len([r for r in results if r.role == "simulation"])
        seen = plane.aggregator.ranks_seen
        # every simulation rank flushed snapshots (global-rank keyed);
        # endpoints report only if the ring routed them streams
        assert set(range(num_sim)) <= seen
        assert any(r >= num_sim for r in seen)
        assert seen <= {i for i in range(len(results))}

    def test_wire_bytes_balance(self, live_fleet_run):
        *_ignored, plane = live_fleet_run
        agg = plane.aggregator
        assert agg.bytes_put > 0
        assert agg.bytes_put == agg.bytes_got
        assert agg.bytes_on_wire == 0

    def test_prometheus_export_carries_live_metrics(self, live_fleet_run):
        *_ignored, plane = live_fleet_run
        text = plane.prometheus()
        assert "repro_live_snapshots_total" in text
        assert "repro_live_stage_solve_seconds" in text
        assert "repro_live_sampler_level" in text

    def test_no_metric_name_drift_anywhere(self, live_fleet_run):
        """Registry walk: merged per-rank metrics + the plane's extras."""
        *_ignored, plane = live_fleet_run
        assert naming_violations(plane.merged_metrics()) == []

    def test_live_summary_counts_agree(self, live_fleet_run):
        *_ignored, plane = live_fleet_run
        summary = plane.aggregator.summary()
        assert summary["snapshots"] == plane.aggregator.snapshots > 0
        assert "solve" in summary["stages"]
        assert summary["stages"]["solve"]["count"] >= 3


# -- end-to-end: crash fires the recovery SLO into the autoscaler -----------


class TestCrashRecoverySLO:
    def test_endpoint_crash_fires_recovery_alert_autoscaler_observes(
        self, tmp_path
    ):
        steps = 3
        session = TelemetrySession("live-crash")
        plane = LivePlane(session)
        injector = FaultInjector(schedule={"endpoint_crash": ((0, 2),)})
        runner = _runner(
            tmp_path, session, steps=steps, injector=injector,
            retry=RetryPolicy(max_attempts=20, base_delay=0.01,
                              attempt_timeout=0.1, max_elapsed_s=30.0),
            # autoscale_every=1: every poll ticks the autoscaler, so the
            # in-flight recovery alert is observed as pressure; the
            # pinned ratio clamp stops the idle fleet from parking the
            # victim as a *planned* leave before its lease ever lapses
            fleet=FleetConfig(lease_timeout=0.25, seed=7, autoscale=True,
                              autoscale_every=1,
                              autoscaler=AutoscalerConfig(min_ratio=2.0,
                                                          max_ratio=2.0)),
        )
        results = run_spmd(12, runner.run)
        plane.flush_all()

        coord = runner.last_coordinator
        assert coord.committed == set(range(1, steps + 1))
        assert coord.stats()["crashes_detected"] == 1

        recoveries = [
            a for a in plane.watchdog.history if a.kind == "recovery_time"
        ]
        assert recoveries, "endpoint crash fired no recovery_time alert"
        assert recoveries[0].extra["eid"] == 2
        assert recoveries[0].extra["phase"] in ("complete", "breach")
        assert recoveries[0].resolved_at is not None

        # the autoscaler saw the alert as pressure on at least one tick
        assert plane.pressure_reads > 0
        assert plane.autoscaler_pressure_seen >= 1

        # the dead endpoint's global rank track was finalized at
        # detection time (num_writers + eid), not left dangling
        num_sim = len([r for r in results if r.role == "simulation"])
        meta = session.track_meta()
        assert meta[num_sim + 2]["finalized"] is not None
        alive = [r for r in range(len(results)) if r != num_sim + 2]
        assert all(meta[r]["finalized"] is None for r in alive if r in meta)


# -- end-to-end: live HTTP exports mid-run ----------------------------------


def _http_get(server, path):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


@pytest.mark.serve
class TestLiveHttpExports:
    def test_routes_serve_live_data_mid_run(self, tmp_path):
        session = TelemetrySession("live-http")
        plane = LivePlane(session)
        hub = FrameHub()
        server = HttpFrameServer(hub, SteeringBus(), live=plane)
        server.start()
        runner = _runner(tmp_path, session, steps=3)
        worker = threading.Thread(target=run_spmd, args=(6, runner.run))
        worker.start()
        try:
            # scrape while the run is in flight; the run outlives at
            # least the first poll round on any machine
            saw_mid_run_health = False
            deadline = time.perf_counter() + 60.0
            while worker.is_alive() and time.perf_counter() < deadline:
                status, _headers, body = _http_get(server, "/healthz")
                assert status == 200
                doc = json.loads(body)
                assert doc["run_id"] == plane.run_id
                saw_mid_run_health = True
                status, _headers, _body = _http_get(server, "/slo")
                assert status == 200
                time.sleep(0.01)
            assert saw_mid_run_health
        finally:
            worker.join()

        status, headers, body = _http_get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert b"repro_live_snapshots_total" in body

        status, _headers, body = _http_get(server, "/slo")
        doc = json.loads(body)
        assert doc["run_id"] == plane.run_id
        assert "burn_rates" in doc and "sampler" in doc

        status, _headers, body = _http_get(server, "/timeline")
        assert status == 200
        latest = json.loads(body)
        assert latest["complete"]
        step = latest["step"]
        status, _headers, body = _http_get(server, f"/timeline?step={step}")
        assert status == 200 and json.loads(body)["step"] == step

        status, _headers, body = _http_get(server, "/timeline?step=9999")
        assert status == 404
        assert "steps" in json.loads(body)

        status, _headers, _body = _http_get(server, "/timeline?step=bogus")
        assert status == 400
        assert server.stop()

    def test_healthz_without_plane_still_answers(self):
        hub = FrameHub()
        server = HttpFrameServer(hub)
        server.start()
        try:
            status, _headers, body = _http_get(server, "/healthz")
            assert status == 200
            assert json.loads(body) == {
                "status": "ok", "run_id": None, "live": False,
            }
            status, _headers, _body = _http_get(server, "/metrics")
            assert status == 404
        finally:
            assert server.stop()


# -- overhead: sampler degradation and the 5% budget ------------------------


class TestOverheadGovernor:
    def test_sampler_steps_down_under_forced_pressure(self, tmp_path):
        """A near-zero budget must provably degrade span detail."""
        session = TelemetrySession("live-pressure")
        plane = LivePlane(session, overhead_budget=1e-7)
        runner = _runner(tmp_path, session, steps=2)
        run_spmd(3, runner.run)
        plane.flush_all()
        assert plane.sampler.downgrades >= 1
        assert plane.sampler.level > LEVEL_FULL
        # counters keep flowing even at degraded levels, so SLO
        # evaluation never goes blind
        assert plane.aggregator.snapshots > 0
        assert plane.watchdog.evaluations > 0

    @pytest.mark.perf
    def test_live_plane_overhead_under_5pct(self):
        """Median of 12 interleaved bare/instrumented pairs.

        The shared-core container drifts between fast and slow phases
        on a ~1 s timescale and throws occasional ~30 ms scheduler
        spikes, so single pairs are coin flips and even best-of blocks
        can land entirely in a bad phase; the median of a dozen
        adjacent pairs is immune to both.  One re-measure is allowed —
        a genuine >5% regression fails both medians, while a one-off
        noise burst does not take down the suite.  The absolute
        instrumented-run timing is pinned separately by the
        ``live_telemetry`` gate row in BENCH_9.json.
        """
        from repro.bench.live_telemetry import measure_overhead

        for _attempt in range(2):
            out = measure_overhead(repeats=12)
            assert out["timelines_complete"] >= 1
            if out["overhead_ratio"] < 0.05:
                break
        assert out["overhead_ratio"] < 0.05, (
            f"live plane cost {out['overhead_ratio'] * 100:.2f}% median "
            f"over {len(out['pair_ratios'])} pairs "
            f"(floors: bare {out['off_s']:.3f}s, "
            f"instrumented {out['on_s']:.3f}s)"
        )


# -- fidelity: telemetry must not change the pixels -------------------------


def _dir_bytes(root):
    return {
        p.relative_to(root).as_posix(): p.read_bytes()
        for p in sorted(root.rglob("*.png")) if p.is_file()
    }


class TestArtifactFidelity:
    def test_rendered_pngs_byte_identical_with_plane_on(self, tmp_path):
        plain_dir = tmp_path / "plain"
        live_dir = tmp_path / "live"

        run_spmd(6, _runner(plain_dir, session=None, steps=2).run)

        session = TelemetrySession("live-fidelity")
        plane = LivePlane(session)
        run_spmd(6, _runner(live_dir, session, steps=2).run)
        plane.flush_all()
        assert plane.timeline(1) is not None

        plain = _dir_bytes(plain_dir)
        live = _dir_bytes(live_dir)
        assert plain and plain.keys() == live.keys()
        assert all(plain[k] == live[k] for k in plain)


# -- session churn (satellite) ----------------------------------------------


class TestSessionChurn:
    def test_mid_run_joiner_gets_own_track_with_late_epoch(self):
        session = TelemetrySession("churn")
        early = session.rank(0)
        time.sleep(0.01)
        late = session.rank(7)
        assert late is not early
        meta = session.track_meta()
        # the pre-join gap is not billed: the joiner's epoch is its
        # join time, strictly after rank 0's
        assert meta[7]["started"] > meta[0]["started"]
        assert meta[7]["finalized"] is None

    def test_finalize_rank_pins_detection_time(self):
        session = TelemetrySession("churn")
        tel = session.rank(3)
        at = time.perf_counter()
        assert session.finalize_rank(3, at=at)
        meta = session.track_meta()
        assert meta[3]["finalized"] == at
        from repro.observe import InstantEvent

        names = [e.name for e in tel.tracer.events
                 if isinstance(e, InstantEvent)]
        assert "track.finalized" in names

    def test_finalize_is_idempotent_and_rejects_unknown(self):
        session = TelemetrySession("churn")
        session.rank(1)
        first = time.perf_counter()
        assert session.finalize_rank(1, at=first)
        # repeat finalize is a success but never moves the pinned time
        assert session.finalize_rank(1, at=first + 5.0)
        assert session.track_meta()[1]["finalized"] == first
        assert not session.finalize_rank(99)

    def test_plane_binds_ranks_created_after_attach(self):
        session = TelemetrySession("churn")
        before = session.rank(0)
        plane = LivePlane(session)
        after = session.rank(1)
        assert before.live.enabled and after.live.enabled
        assert before.live._plane is plane is after.live._plane


# -- frame store accounting (satellite) -------------------------------------


class TestFrameStoreAccounting:
    def test_deduped_payload_counted_once(self):
        from repro.serve.framestore import FrameStore

        store = FrameStore(history=8)
        data = b"x" * 1000
        store.put("a", step=0, time=0.0, data=data, seq=0)
        store.put("a", step=1, time=0.1, data=data, seq=1)
        stats = store.stats()
        assert stats["frames_deduped"] == 1
        # two frames share one interned payload: no double count
        assert stats["payload_bytes"] == 1000
        assert stats["peak_payload_bytes"] == 1000

    def test_peak_survives_eviction(self):
        from repro.serve.framestore import FrameStore

        store = FrameStore(history=1)
        store.put("a", step=0, time=0.0, data=b"a" * 500, seq=0)
        store.put("a", step=1, time=0.1, data=b"b" * 900, seq=1)
        store.put("a", step=2, time=0.2, data=b"c" * 100, seq=2)
        stats = store.stats()
        assert stats["payload_bytes"] == 100        # only the live frame
        # HWM caught the moment both old and new payloads were held
        assert stats["peak_payload_bytes"] >= 900

    def test_memory_meter_category_matches_store(self):
        from repro.observe import Telemetry, active
        from repro.serve.framestore import FrameStore

        tel = Telemetry.create(rank=0)
        store = FrameStore(history=4)
        with active(tel):
            for i in range(6):
                store.put("s", step=i, time=i * 0.1,
                          data=bytes([i]) * 256, seq=i)
        peak = tel.memory.peaks().get("serve.framestore", 0)
        assert peak == store.stats()["peak_payload_bytes"] > 0

    def test_serving_bench_surfaces_framestore_hwm(self):
        from repro.bench.serving import run_serving_load

        out = run_serving_load(clients=8, frames=6, workers=2,
                               payload_size=16)
        assert out["framestore_hwm_bytes"] > 0
        assert out["framestore_hwm_bytes"] == (
            out["store"]["peak_payload_bytes"]
        )


# -- CLI smoke (satellite) --------------------------------------------------


class TestCliObserveTop:
    def test_observe_top_once(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "observe", "top", "--once", "--ranks", "3", "--steps", "2",
            "--output", str(tmp_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "repro observe top — run" in out
        assert "solve" in out and "deliver" in out
        assert "SLO" in out and "recovery_time" in out
