"""Tests for the OCCA-style device layer."""

import numpy as np
import pytest

from repro.machine import POLARIS, PcieModel
from repro.occa import Device, KernelError


class TestDeviceBasics:
    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Device("vulkan")

    def test_malloc_zeroed(self):
        dev = Device("cuda-sim")
        mem = dev.malloc((4, 4))
        assert mem.shape == (4, 4)
        np.testing.assert_array_equal(mem.copy_to_host(), 0.0)

    def test_allocated_bytes_tracked(self):
        dev = Device("cuda-sim")
        dev.malloc(100)
        assert dev.allocated_bytes == 800


class TestTransfers:
    def test_roundtrip(self):
        dev = Device("cuda-sim")
        src = np.arange(12, dtype=float).reshape(3, 4)
        mem = dev.to_device(src)
        np.testing.assert_array_equal(mem.copy_to_host(), src)

    def test_cuda_sim_copy_is_not_alias(self):
        dev = Device("cuda-sim")
        mem = dev.to_device(np.ones(5))
        host = mem.copy_to_host()
        host[0] = 99.0
        np.testing.assert_array_equal(mem.copy_to_host(), 1.0)

    def test_ledger_counts_bytes(self):
        dev = Device("cuda-sim")
        mem = dev.to_device(np.zeros(10))   # h2d: 80 bytes
        mem.copy_to_host()                  # d2h: 80 bytes
        mem.copy_to_host()
        assert dev.transfers.h2d_bytes == 80
        assert dev.transfers.d2h_bytes == 160
        assert dev.transfers.h2d_count == 1
        assert dev.transfers.d2h_count == 2
        assert dev.transfers.total_bytes == 240

    def test_serial_mode_charges_nothing(self):
        dev = Device("serial")
        mem = dev.to_device(np.zeros(10))
        mem.copy_to_host()
        assert dev.transfers.total_bytes == 0

    def test_shape_mismatch_raises(self):
        dev = Device("cuda-sim")
        mem = dev.malloc((2, 2))
        with pytest.raises(ValueError):
            mem.copy_from_host(np.zeros(5))

    def test_copy_to_host_into_buffer(self):
        dev = Device("cuda-sim")
        mem = dev.to_device(np.arange(4.0))
        out = np.empty(4)
        result = mem.copy_to_host(out)
        assert result is out
        np.testing.assert_array_equal(out, np.arange(4.0))

    def test_copy_to_host_buffer_mismatch(self):
        dev = Device("cuda-sim")
        mem = dev.malloc(4)
        with pytest.raises(ValueError):
            mem.copy_to_host(np.empty(5))

    def test_modeled_seconds_with_pcie(self):
        pcie = PcieModel(POLARIS.node.gpu)
        dev = Device("cuda-sim", pcie=pcie)
        mem = dev.to_device(np.zeros(10**6))
        mem.copy_to_host()
        assert dev.transfers.modeled_seconds > 0

    def test_ledger_reset(self):
        dev = Device("cuda-sim")
        dev.to_device(np.zeros(4))
        dev.transfers.reset()
        assert dev.transfers.total_bytes == 0

    def test_fill_runs_device_side(self):
        dev = Device("cuda-sim")
        mem = dev.malloc(3)
        before = dev.transfers.total_bytes
        mem.fill(7.0)
        assert dev.transfers.total_bytes == before
        np.testing.assert_array_equal(mem.copy_to_host(), 7.0)


class TestKernels:
    def test_build_and_launch(self):
        dev = Device("cuda-sim")

        def axpy(y, x, alpha):
            y += alpha * x

        launch = dev.build_kernel("axpy", axpy)
        y = dev.to_device(np.ones(4))
        x = dev.to_device(np.full(4, 2.0))
        launch(y, x, 3.0)
        np.testing.assert_array_equal(y.copy_to_host(), 7.0)

    def test_kernel_sees_raw_arrays_no_transfer(self):
        dev = Device("cuda-sim")
        dev.build_kernel("touch", lambda a: a.fill(1.0))
        mem = dev.malloc(4)
        before = dev.transfers.total_bytes
        dev.kernel("touch")(mem)
        assert dev.transfers.total_bytes == before

    def test_duplicate_name_raises(self):
        dev = Device("serial")
        dev.build_kernel("k", lambda: None)
        with pytest.raises(KernelError):
            dev.build_kernel("k", lambda: None)

    def test_unknown_kernel_raises(self):
        with pytest.raises(KernelError):
            Device("serial").kernel("nope")

    def test_kernel_names(self):
        dev = Device("serial")
        dev.build_kernel("b", lambda: None)
        dev.build_kernel("a", lambda: None)
        assert dev.kernel_names == ["a", "b"]
