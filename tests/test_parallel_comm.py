"""Tests for the communicator layer (serial + reduce ops + metering)."""

import numpy as np
import pytest

from repro.parallel.comm import (
    ReduceOp,
    SerialCommunicator,
    TrafficMeter,
    _combine,
    payload_nbytes,
)


class TestCombine:
    def test_sum_scalars(self):
        assert _combine(ReduceOp.SUM, [1, 2, 3]) == 6

    def test_min_max(self):
        assert _combine(ReduceOp.MIN, [3, 1, 2]) == 1
        assert _combine(ReduceOp.MAX, [3, 1, 2]) == 3

    def test_prod(self):
        assert _combine(ReduceOp.PROD, [2, 3, 4]) == 24

    def test_logical(self):
        assert _combine(ReduceOp.LAND, [True, True]) is True
        assert _combine(ReduceOp.LAND, [True, False]) is False
        assert _combine(ReduceOp.LOR, [False, True]) is True
        assert _combine(ReduceOp.LOR, [False, False]) is False

    def test_arrays_elementwise(self):
        arrays = [np.array([1.0, 5.0]), np.array([2.0, 3.0])]
        np.testing.assert_array_equal(_combine(ReduceOp.SUM, arrays), [3.0, 8.0])
        np.testing.assert_array_equal(_combine(ReduceOp.MIN, arrays), [1.0, 3.0])
        np.testing.assert_array_equal(_combine(ReduceOp.MAX, arrays), [2.0, 5.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _combine(ReduceOp.SUM, [])


class TestPayloadNbytes:
    def test_none_is_zero(self):
        assert payload_nbytes(None) == 0

    def test_numpy_uses_nbytes(self):
        arr = np.zeros(10)
        assert payload_nbytes(arr) == 80

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_array_list(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40

    def test_object_uses_pickle_size(self):
        assert payload_nbytes({"a": 1}) > 0


class TestTrafficMeter:
    def test_record_and_totals(self):
        m = TrafficMeter()
        m.record("send", 100, 4, "solver")
        m.record("send", 50, 4, "sst")
        assert m.total_bytes() == 150
        assert m.total_bytes("solver") == 100
        assert m.count("send") == 2
        assert m.count() == 2

    def test_by_op(self):
        m = TrafficMeter()
        m.record("send", 10, 2)
        m.record("allgather", 20, 2)
        m.record("send", 5, 2)
        assert m.by_op() == {"send": 15, "allgather": 20}

    def test_clear(self):
        m = TrafficMeter()
        m.record("send", 10, 2)
        m.clear()
        assert m.total_bytes() == 0


class TestSerialCommunicator:
    def test_identity_collectives(self, comm):
        assert comm.rank == 0
        assert comm.size == 1
        assert comm.is_root
        assert comm.allgather(42) == [42]
        assert comm.bcast("x") == "x"
        assert comm.gather(1) == [1]
        assert comm.allreduce(5) == 5
        assert comm.scatter([7]) == 7
        assert comm.alltoall([9]) == [9]
        comm.barrier()

    def test_reduce_on_root(self, comm):
        assert comm.reduce(3) == 3

    def test_allreduce_array(self, comm):
        arr = np.array([1.0, 2.0])
        np.testing.assert_array_equal(comm.allreduce_array(arr), arr)

    def test_send_recv_raise(self, comm):
        with pytest.raises(RuntimeError):
            comm.send(1, 0)
        with pytest.raises(RuntimeError):
            comm.recv(0)

    def test_split_returns_serial(self, comm):
        sub = comm.split(0)
        assert isinstance(sub, SerialCommunicator)
        assert sub.size == 1

    def test_scatter_wrong_length_raises(self, comm):
        with pytest.raises(ValueError):
            comm.scatter([1, 2])
