"""Tests for block partitioning."""

import pytest

from repro.parallel.partition import block_partition, block_range, owner_of


class TestBlockRange:
    def test_even_split(self):
        assert [block_range(9, 3, r) for r in range(3)] == [(0, 3), (3, 6), (6, 9)]

    def test_remainder_goes_to_first_ranks(self):
        assert [block_range(10, 3, r) for r in range(3)] == [(0, 4), (4, 7), (7, 10)]

    def test_more_ranks_than_items(self):
        ranges = [block_range(2, 4, r) for r in range(4)]
        assert ranges == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_items(self):
        assert block_range(0, 3, 1) == (0, 0)

    def test_single_rank(self):
        assert block_range(7, 1, 0) == (0, 7)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            block_range(5, 2, 2)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            block_range(5, 0, 0)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            block_range(-1, 2, 0)


class TestBlockPartition:
    @pytest.mark.parametrize("n,size", [(10, 3), (7, 7), (5, 8), (100, 9), (0, 2)])
    def test_tiles_exactly(self, n, size):
        ranges = block_partition(n, size)
        covered = []
        for lo, hi in ranges:
            covered.extend(range(lo, hi))
        assert covered == list(range(n))

    def test_balanced(self):
        ranges = block_partition(100, 7)
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1


class TestOwnerOf:
    @pytest.mark.parametrize("n,size", [(10, 3), (17, 5), (4, 4), (23, 6)])
    def test_consistent_with_ranges(self, n, size):
        for idx in range(n):
            owner = owner_of(idx, n, size)
            lo, hi = block_range(n, size, owner)
            assert lo <= idx < hi

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            owner_of(10, 10, 2)
        with pytest.raises(ValueError):
            owner_of(-1, 10, 2)
