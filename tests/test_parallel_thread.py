"""Tests for the threaded SPMD communicator and runtime."""

import numpy as np
import pytest

from repro.parallel import ReduceOp, ThreadCommunicator, run_spmd
from repro.parallel.comm import TrafficMeter


class TestCollectives:
    def test_allgather(self):
        results = run_spmd(4, lambda c: c.allgather(c.rank))
        assert all(r == [0, 1, 2, 3] for r in results)

    def test_allreduce_sum(self):
        results = run_spmd(5, lambda c: c.allreduce(c.rank + 1))
        assert all(r == 15 for r in results)

    def test_allreduce_ops(self):
        def body(c):
            return (
                c.allreduce(c.rank, ReduceOp.MIN),
                c.allreduce(c.rank, ReduceOp.MAX),
                c.allreduce(c.rank + 1, ReduceOp.PROD),
            )

        results = run_spmd(3, body)
        assert all(r == (0, 2, 6) for r in results)

    def test_allreduce_array(self):
        def body(c):
            return c.allreduce_array(np.full(3, float(c.rank)))

        for r in run_spmd(4, body):
            np.testing.assert_array_equal(r, [6.0, 6.0, 6.0])

    def test_bcast(self):
        results = run_spmd(3, lambda c: c.bcast("hello" if c.rank == 0 else None))
        assert results == ["hello"] * 3

    def test_bcast_nonzero_root(self):
        results = run_spmd(3, lambda c: c.bcast(c.rank * 10, root=2))
        assert results == [20, 20, 20]

    def test_gather(self):
        results = run_spmd(3, lambda c: c.gather(c.rank**2))
        assert results[0] == [0, 1, 4]
        assert results[1] is None and results[2] is None

    def test_scatter(self):
        def body(c):
            data = [x * 10 for x in range(c.size)] if c.rank == 0 else None
            return c.scatter(data)

        assert run_spmd(4, body) == [0, 10, 20, 30]

    def test_alltoall(self):
        def body(c):
            return c.alltoall([(c.rank, dest) for dest in range(c.size)])

        results = run_spmd(3, body)
        for r, row in enumerate(results):
            assert row == [(src, r) for src in range(3)]

    def test_reduce_root_only(self):
        results = run_spmd(4, lambda c: c.reduce(1))
        assert results[0] == 4
        assert results[1:] == [None, None, None]

    def test_barrier_runs(self):
        run_spmd(4, lambda c: c.barrier())

    def test_repeated_collectives_stay_consistent(self):
        def body(c):
            out = []
            for i in range(20):
                out.append(c.allreduce(c.rank + i))
            return out

        results = run_spmd(3, body)
        expected = [sum(r + i for r in range(3)) for i in range(20)]
        assert all(r == expected for r in results)


class TestPointToPoint:
    def test_ring_exchange(self):
        def body(c):
            dest = (c.rank + 1) % c.size
            src = (c.rank - 1) % c.size
            return c.sendrecv(c.rank, dest, src)

        assert run_spmd(4, body) == [3, 0, 1, 2]

    def test_tags_keep_messages_separate(self):
        def body(c):
            if c.rank == 0:
                c.send("a", 1, tag=1)
                c.send("b", 1, tag=2)
                return None
            if c.rank == 1:
                # receive in the opposite order
                b = c.recv(0, tag=2)
                a = c.recv(0, tag=1)
                return (a, b)
            return None

        assert run_spmd(2, body)[1] == ("a", "b")

    def test_send_to_self_raises(self):
        def body(c):
            if c.rank == 0:
                with pytest.raises(ValueError):
                    c.send(1, 0)
            return True

        assert all(run_spmd(2, body))

    def test_send_out_of_range_raises(self):
        def body(c):
            with pytest.raises(ValueError):
                c.send(1, c.size + 3)
            return True

        assert all(run_spmd(2, body))


class TestSplit:
    def test_split_even_odd(self):
        def body(c):
            sub = c.split(c.rank % 2)
            return (sub.size, sub.rank, sub.allreduce(c.rank))

        results = run_spmd(6, body)
        for r, (size, subrank, total) in enumerate(results):
            assert size == 3
            assert total == (6 if r % 2 == 0 else 9)
            assert subrank == r // 2

    def test_split_single_color(self):
        def body(c):
            sub = c.split(0)
            return (sub.size, sub.allreduce(1))

        assert run_spmd(4, body) == [(4, 4)] * 4

    def test_split_with_key_reverses_order(self):
        def body(c):
            sub = c.split(0, key=-c.rank)
            return sub.rank

        assert run_spmd(3, body) == [2, 1, 0]

    def test_nested_split(self):
        def body(c):
            sub = c.split(c.rank // 2)
            subsub = sub.split(sub.rank % 2)
            return subsub.size

        assert run_spmd(4, body) == [1, 1, 1, 1]


class TestRuntime:
    def test_exception_propagates(self):
        def body(c):
            if c.rank == 1:
                raise RuntimeError("rank 1 exploded")
            c.barrier()  # would deadlock if abort didn't break the barrier
            return True

        with pytest.raises(RuntimeError, match="rank 1 exploded"):
            run_spmd(3, body)

    def test_single_rank_is_serial(self):
        from repro.parallel import SerialCommunicator

        results = run_spmd(1, lambda c: type(c).__name__)
        assert results == ["SerialCommunicator"]

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda c: None)

    def test_args_passed(self):
        results = run_spmd(2, lambda c, a, b: a + b + c.rank, args=(10, 5))
        assert results == [15, 16]

    def test_meter_shared(self):
        meter = TrafficMeter()

        def body(c):
            if c.rank == 0:
                c.send(np.zeros(10), 1)
            elif c.rank == 1:
                c.recv(0)
            c.barrier()
            return None

        run_spmd(2, body, meter=meter)
        assert meter.total_bytes() == 80

    def test_create_group_size(self):
        comms = ThreadCommunicator.create_group(3)
        assert [c.rank for c in comms] == [0, 1, 2]
        assert all(c.size == 3 for c in comms)

    def test_create_group_invalid_size(self):
        with pytest.raises(ValueError):
            ThreadCommunicator.create_group(0)
