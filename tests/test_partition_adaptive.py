"""Tests for Morton partitioning and the adaptive in situ trigger."""

import numpy as np
import pytest

from repro.insitu import AdaptiveTrigger, NekDataAdaptor
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.parallel import SerialCommunicator, run_spmd
from repro.parallel.partition import (
    morton_encode,
    morton_order,
    morton_partition,
)
from repro.sem import BoxMesh, SEMOperators
from repro.sem.gather_scatter import GatherScatter
from repro.sensei.analysis_adaptor import AnalysisAdaptor


class TestMortonEncode:
    def test_origin_is_zero(self):
        assert morton_encode([0], [0], [0])[0] == 0

    def test_unit_axes(self):
        assert morton_encode([1], [0], [0])[0] == 1
        assert morton_encode([0], [1], [0])[0] == 2
        assert morton_encode([0], [0], [1])[0] == 4

    def test_interleaving(self):
        # (3, 0, 0) -> bits 0 and 3 set: 0b001001 = 9
        assert morton_encode([3], [0], [0])[0] == 9

    def test_codes_unique(self, rng):
        ix = rng.integers(0, 64, 100)
        iy = rng.integers(0, 64, 100)
        iz = rng.integers(0, 64, 100)
        codes = morton_encode(ix, iy, iz)
        coords = set(zip(ix.tolist(), iy.tolist(), iz.tolist()))
        assert len(set(codes.tolist())) == len(coords)

    def test_locality(self):
        """Neighbors in space are close on the curve on average."""
        c0 = morton_encode([10], [10], [10])[0]
        c1 = morton_encode([11], [10], [10])[0]
        far = morton_encode([10], [10], [40])[0]
        assert abs(int(c1) - int(c0)) < abs(int(far) - int(c0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            morton_encode([-1], [0], [0])

    def test_range_rejected(self):
        with pytest.raises(ValueError):
            morton_encode([2**21], [0], [0])


class TestMortonPartition:
    def test_order_is_permutation(self):
        order = morton_order((3, 4, 5))
        assert sorted(order.tolist()) == list(range(60))

    @pytest.mark.parametrize("size", [1, 3, 7])
    def test_partition_tiles_elements(self, size):
        parts = morton_partition((4, 4, 4), size)
        combined = sorted(np.concatenate(parts).tolist())
        assert combined == list(range(64))

    def test_parts_spatially_compact(self):
        """Morton bricks touch fewer remote nodes than slabs do."""

        def interface_count(partition):
            def body(comm):
                mesh = BoxMesh((8, 8, 2), order=2, rank=comm.rank,
                               size=comm.size, partition=partition)
                gs = GatherScatter(mesh.global_ids, comm)
                return len(gs.interface_ids)

            return run_spmd(4, body)[0]

        assert interface_count("morton") < interface_count("slab")

    def test_bad_partition_name(self):
        with pytest.raises(ValueError):
            BoxMesh((2, 2, 2), partition="metis")


class TestMortonSolver:
    def test_physics_invariant_under_partition(self):
        """Slab and Morton runs produce identical global physics."""

        def body(comm, partition):
            case = lid_cavity_case(elements=2, order=3, dt=5e-3)
            solver = NekRSSolver(case, comm)
            # rebuild the mesh with the requested partition
            solver_mesh = BoxMesh(
                case.mesh_shape, case.extent, order=case.order,
                rank=comm.rank, size=comm.size, partition=partition,
            )
            # run through the normal solver (its own mesh uses slabs);
            # for the morton case construct a fresh solver around the
            # partitioned mesh pieces via the operators directly
            ops = SEMOperators(solver_mesh, comm)
            return ops.volume, ops.num_global_dofs

        slab = run_spmd(2, body, args=("slab",))[0]
        morton = run_spmd(2, body, args=("morton",))[0]
        assert slab == pytest.approx(morton)

    def test_gather_scatter_identical_result(self, rng):
        shape, order = (4, 2, 2), 3
        full = BoxMesh(shape, order=order)
        field = rng.normal(size=full.field_shape())
        expected = GatherScatter(full.global_ids, SerialCommunicator())(field)

        def body(comm):
            mesh = BoxMesh(shape, order=order, rank=comm.rank,
                           size=comm.size, partition="morton")
            gs = GatherScatter(mesh.global_ids, comm)
            local = field[mesh.elem_ids]
            out = gs(local)
            return mesh.elem_ids, out

        results = run_spmd(2, body)
        for ids, out in results:
            np.testing.assert_allclose(out, expected[ids], atol=1e-12)


class _CountingAnalysis(AnalysisAdaptor):
    def __init__(self):
        self.calls = 0
        self.finalized = False

    def execute(self, data):
        self.calls += 1
        return True

    def finalize(self):
        self.finalized = True


class TestAdaptiveTrigger:
    def _setup(self, comm, **kw):
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        solver = NekRSSolver(case, comm)
        adaptor = NekDataAdaptor(solver)
        child = _CountingAnalysis()
        trigger = AdaptiveTrigger(comm, child, **kw)
        return solver, adaptor, child, trigger

    def _offer(self, solver, adaptor, trigger, steps):
        for _ in range(steps):
            r = solver.step()
            adaptor.set_data_time_step(r.step)
            adaptor.set_data_time(r.time)
            trigger.execute(adaptor)
            adaptor.release_data()

    def test_first_offer_always_fires(self, comm):
        solver, adaptor, child, trigger = self._setup(comm)
        self._offer(solver, adaptor, trigger, 1)
        assert child.calls == 1

    def test_frozen_state_suppressed(self, comm):
        solver, adaptor, child, trigger = self._setup(
            comm, change_threshold=0.5
        )
        self._offer(solver, adaptor, trigger, 1)
        # offer the same state repeatedly without stepping
        for _ in range(3):
            trigger.execute(adaptor)
            adaptor.release_data()
        assert child.calls == 1
        assert trigger.suppressed == 3
        assert trigger.firing_rate == pytest.approx(0.25)

    def test_fast_transient_fires_often(self, comm):
        solver, adaptor, child, trigger = self._setup(
            comm, change_threshold=1e-6
        )
        self._offer(solver, adaptor, trigger, 4)
        assert child.calls == 4  # spin-up changes a lot every step

    def test_max_interval_safety_net(self, comm):
        solver, adaptor, child, trigger = self._setup(
            comm, change_threshold=1e9, max_interval=3
        )
        self._offer(solver, adaptor, trigger, 7)
        # fires at offers 1, 4, 7
        assert child.calls == 3

    def test_finalize_propagates(self, comm):
        _, _, child, trigger = self._setup(comm)
        trigger.finalize()
        assert child.finalized

    def test_validation(self, comm):
        child = _CountingAnalysis()
        with pytest.raises(ValueError):
            AdaptiveTrigger(comm, child, change_threshold=0)
        with pytest.raises(ValueError):
            AdaptiveTrigger(comm, child, max_interval=0)
