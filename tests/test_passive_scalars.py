"""Tests for passive scalar transport."""

import math

import numpy as np
import pytest

from repro.insitu import NekDataAdaptor
from repro.nekrs import CaseDefinition, NekRSSolver, PassiveScalar, ScalarBC
from repro.nekrs.restart import read_restart, write_restart
from repro.parallel import SerialCommunicator
from repro.sem.mesh import BoundaryTag


def advection_case(num_scalars=1, dt=0.01, diffusivity=1e-8, **scalar_kw):
    """Uniform flow u=1 in a periodic box carrying passive blobs."""
    L = 1.0

    def blob(x, y, z):
        return np.exp(-80.0 * ((x - 0.3) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2))

    scalars = tuple(
        PassiveScalar(name=f"s{i:02d}", diffusivity=diffusivity, initial=blob,
                      **scalar_kw)
        for i in range(1, num_scalars + 1)
    )
    return CaseDefinition(
        name="advect",
        mesh_shape=(4, 2, 2),
        extent=((0, 0, 0), (L, L, L)),
        order=5,
        periodic=(True, True, True),
        viscosity=1e-6,
        dt=dt,
        num_steps=10,
        time_order=2,
        initial_velocity=lambda x, y, z: (
            np.ones_like(x), np.zeros_like(x), np.zeros_like(x),
        ),
        passive_scalars=scalars,
    )


class TestConfig:
    def test_negative_diffusivity(self):
        with pytest.raises(ValueError):
            PassiveScalar(name="s01", diffusivity=-1.0)

    def test_reserved_name(self):
        with pytest.raises(ValueError, match="collides"):
            PassiveScalar(name="pressure", diffusivity=1.0)

    def test_duplicate_names(self):
        s = PassiveScalar(name="dye", diffusivity=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            advection_case().with_overrides(passive_scalars=(s, s))


class TestTransport:
    def test_blob_advects_downstream(self):
        case = advection_case(dt=0.01)
        solver = NekRSSolver(case, SerialCommunicator())
        s = solver.scalars["s01"]
        x = solver.mesh.x
        centroid0 = solver.ops.integrate(s * x) / solver.ops.integrate(s)
        solver.run(10)
        centroid1 = solver.ops.integrate(s * x) / solver.ops.integrate(s)
        # carried by u=1 for t=0.1: centroid moves ~0.1 downstream
        assert centroid1 - centroid0 == pytest.approx(0.1, abs=0.02)

    def test_mass_conserved_in_periodic_box(self):
        case = advection_case(dt=0.01)
        solver = NekRSSolver(case, SerialCommunicator())
        m0 = solver.ops.integrate(solver.scalars["s01"])
        solver.run(8)
        m1 = solver.ops.integrate(solver.scalars["s01"])
        assert m1 == pytest.approx(m0, rel=1e-3)

    def test_diffusion_decays_peak(self):
        fast = advection_case(diffusivity=5e-3, dt=0.01)
        slow = advection_case(diffusivity=1e-8, dt=0.01)
        peaks = {}
        for label, case in (("fast", fast), ("slow", slow)):
            solver = NekRSSolver(case, SerialCommunicator())
            solver.run(8)
            peaks[label] = solver.scalars["s01"].max()
        assert peaks["fast"] < peaks["slow"]

    def test_multiple_scalars_independent(self):
        case = advection_case(num_scalars=2)
        solver = NekRSSolver(case, SerialCommunicator())
        solver.run(3)
        np.testing.assert_allclose(
            solver.scalars["s01"], solver.scalars["s02"], atol=1e-12
        )

    def test_scalar_dirichlet_bc(self):
        """A scalar pinned to 1 at ZMIN holds that value."""
        case = CaseDefinition(
            name="bc",
            mesh_shape=(2, 2, 2),
            extent=((0, 0, 0), (1, 1, 1)),
            order=3,
            viscosity=1e-2,
            dt=5e-3,
            num_steps=3,
            passive_scalars=(
                PassiveScalar(
                    name="dye", diffusivity=1e-2,
                    bcs={BoundaryTag.ZMIN: ScalarBC(1.0)},
                ),
            ),
        )
        solver = NekRSSolver(case, SerialCommunicator())
        solver.run(3)
        bottom = solver.mesh.boundary_nodes(BoundaryTag.ZMIN)
        np.testing.assert_allclose(solver.scalars["dye"][bottom], 1.0, atol=1e-12)
        # diffusion pulls interior values up from zero
        assert solver.scalars["dye"].mean() > 0.0

    def test_step_reports_scalar_iterations(self):
        case = advection_case()
        solver = NekRSSolver(case, SerialCommunicator())
        report = solver.step()
        assert report.scalar_iterations > 0


class TestIntegration:
    def test_adaptor_serves_scalars(self):
        case = advection_case()
        solver = NekRSSolver(case, SerialCommunicator())
        solver.run(1)
        adaptor = NekDataAdaptor(solver)
        md = adaptor.get_mesh_metadata(0)
        assert "s01" in md.array_names
        mesh = adaptor.get_mesh("mesh")
        adaptor.add_array(mesh, "mesh", "point", "s01")
        np.testing.assert_array_equal(
            mesh.get_block(0).point_data["s01"].values,
            solver.scalars["s01"].ravel(),
        )

    def test_restart_with_scalars_bitexact(self, tmp_path):
        case = advection_case()
        direct = NekRSSolver(case, SerialCommunicator())
        direct.run(5)

        first = NekRSSolver(case, SerialCommunicator())
        first.run(3)
        write_restart(tmp_path, first)
        resumed = NekRSSolver(case, SerialCommunicator())
        read_restart(tmp_path, resumed)
        resumed.run(2)
        np.testing.assert_array_equal(
            resumed.scalars["s01"], direct.scalars["s01"]
        )

    def test_memory_counts_scalars(self):
        with_s = NekRSSolver(advection_case(), SerialCommunicator())
        without = NekRSSolver(
            advection_case().with_overrides(passive_scalars=()),
            SerialCommunicator(),
        )
        assert with_s.memory_bytes() > without.memory_bytes()
