"""Unit tests for the ``repro.perf`` layer.

Covers the plan cache, the workspace arena (including its MemoryMeter
integration and telemetry gauges), the naive-mode switch, zero-copy
marshaling semantics, and the perf-gate plumbing — everything except
actual wall-clock comparisons, which live behind the ``perf`` marker
in ``benchmarks/test_bench_gate.py``.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.observe import Telemetry, active
from repro.perf import (
    PlanCache,
    WorkspaceArena,
    enabled,
    get_arena,
    get_plan_cache,
    naive_mode,
    publish_stats,
    set_enabled,
)


class TestConfig:
    def test_enabled_by_default(self):
        assert enabled()

    def test_naive_mode_restores(self):
        assert enabled()
        with naive_mode():
            assert not enabled()
            with naive_mode():
                assert not enabled()
            assert not enabled()
        assert enabled()

    def test_set_enabled(self):
        try:
            set_enabled(False)
            assert not enabled()
        finally:
            set_enabled(True)

    def test_flag_is_per_thread(self):
        seen = {}

        def body():
            seen["worker"] = enabled()

        with naive_mode():
            t = threading.Thread(target=body)
            t.start()
            t.join()
        assert seen["worker"] is True


class TestPlanCache:
    def test_get_builds_once(self):
        cache = PlanCache()
        calls = []
        for _ in range(3):
            plan = cache.get(("op", (2, 3)), lambda: calls.append(1) or "plan")
        assert plan == "plan"
        assert calls == [1]
        assert cache.misses == 1 and cache.hits == 2
        assert len(cache) == 1

    def test_einsum_matches_numpy(self):
        cache = PlanCache()
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 7))
        b = rng.normal(size=(4, 7))
        expected = np.einsum("ij,kj->ik", a, b)
        got = cache.einsum("ij,kj->ik", a, b)
        np.testing.assert_allclose(got, expected, rtol=0, atol=1e-14)
        out = np.empty_like(expected)
        cache.einsum("ij,kj->ik", a, b, out=out)
        np.testing.assert_allclose(out, expected, rtol=0, atol=1e-14)
        assert cache.misses == 1 and cache.hits == 1

    def test_distinct_shapes_get_distinct_plans(self):
        cache = PlanCache()
        cache.einsum("ij,jk->ik", np.ones((2, 3)), np.ones((3, 4)))
        cache.einsum("ij,jk->ik", np.ones((5, 3)), np.ones((3, 4)))
        assert len(cache) == 2

    def test_clear(self):
        cache = PlanCache()
        cache.get("k", lambda: 1)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_thread_local_instances(self):
        main = get_plan_cache()
        other = {}

        def body():
            other["cache"] = get_plan_cache()

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert other["cache"] is not main


class TestArena:
    def test_borrow_release_roundtrip(self):
        arena = WorkspaceArena()
        a = arena.borrow((4, 5))
        assert a.shape == (4, 5) and a.dtype == np.float64
        assert arena.outstanding == 1
        arena.release(a)
        assert arena.outstanding == 0
        b = arena.borrow((4, 5))
        assert b is a  # pooled buffer reused
        assert arena.hits == 1 and arena.misses == 1
        arena.release(b)

    def test_distinct_shape_dtype_buckets(self):
        arena = WorkspaceArena()
        a = arena.borrow((3,))
        b = arena.borrow((3,), np.float32)
        assert a.dtype != b.dtype
        arena.release(a, b)
        assert arena.pooled_arrays() == 2
        assert arena.pooled_bytes() == a.nbytes + b.nbytes

    def test_scratch_contextmanager(self):
        arena = WorkspaceArena()
        with arena.scratch((2, 2)) as t:
            t.fill(0.0)
            assert arena.outstanding == 1
        assert arena.outstanding == 0
        with arena.scratch((2, 2), n=3) as (x, y, z):
            assert {id(x), id(y), id(z)} == {id(x), id(y), id(z)}
            assert arena.outstanding == 3
        assert arena.outstanding == 0

    def test_scratch_releases_on_exception(self):
        arena = WorkspaceArena()
        with pytest.raises(RuntimeError):
            with arena.scratch((2, 2)):
                raise RuntimeError("boom")
        assert arena.outstanding == 0

    def test_peak_tracking(self):
        arena = WorkspaceArena()
        a = arena.borrow((8,))
        b = arena.borrow((8,))
        peak = arena.peak_borrowed_bytes
        assert peak == a.nbytes + b.nbytes
        arena.release(a, b)
        arena.borrow((8,))
        assert arena.peak_borrowed_bytes == peak  # not reset by reuse

    def test_disabled_mode_is_plain_empty(self):
        arena = WorkspaceArena()
        with naive_mode():
            a = arena.borrow((4,))
            arena.release(a)
        assert arena.hits == 0 and arena.misses == 0
        assert arena.pooled_arrays() == 0

    def test_memory_meter_charging(self):
        tel = Telemetry.create(rank=0)
        arena = WorkspaceArena()
        with active(tel):
            a = arena.borrow((1024,))
            assert tel.memory.current("perf.arena") == a.nbytes
            arena.release(a)
            assert tel.memory.current("perf.arena") == 0
            assert tel.memory.peak("perf.arena") == a.nbytes

    def test_clear(self):
        arena = WorkspaceArena()
        arena.release(arena.borrow((4,)))
        arena.clear()
        assert arena.pooled_arrays() == 0
        assert arena.stats()["misses"] == 0

    def test_thread_local_instances(self):
        main = get_arena()
        other = {}

        def body():
            other["arena"] = get_arena()

        t = threading.Thread(target=body)
        t.start()
        t.join()
        assert other["arena"] is not main


class TestPublishStats:
    def test_gauges_exported(self):
        tel = Telemetry.create(rank=0)
        with active(tel):
            arena = get_arena()
            arena.release(arena.borrow((16,)))
            get_plan_cache().get(("publish-stats-test",), lambda: 1)
            publish_stats()
        reg = tel.metrics
        assert reg.get("repro_perf_arena_misses").value >= 1
        assert reg.get("repro_perf_plan_cache_misses").value >= 1
        assert reg.get("repro_perf_arena_pooled_bytes").value >= 16 * 8

    def test_noop_without_telemetry(self):
        publish_stats()  # must not raise against the null bundle


class TestZeroCopyMarshal:
    def _payload(self):
        from repro.adios.marshal import StepPayload

        rng = np.random.default_rng(42)
        return StepPayload(
            step=7, time=0.25, rank=3,
            variables={
                "vel": rng.normal(size=(4, 3, 3, 3)),
                "ids": np.arange(12, dtype=np.int32).reshape(3, 4),
            },
            attributes={"case": "cavity"},
        )

    def test_bytes_identical_to_reference(self):
        from repro.adios.marshal import marshal_step, marshal_step_reference

        payload = self._payload()
        assert bytes(marshal_step(payload)) == marshal_step_reference(payload)

    def test_marshal_returns_bytearray(self):
        from repro.adios.marshal import marshal_step

        assert isinstance(marshal_step(self._payload()), bytearray)

    def test_unmarshal_views_are_read_only(self):
        from repro.adios.marshal import marshal_step, unmarshal_step

        out = unmarshal_step(marshal_step(self._payload()))
        arr = out.variables["vel"]
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0, 0, 0, 0] = 1.0

    def test_ensure_writable_copy_on_write(self):
        from repro.adios.marshal import marshal_step, unmarshal_step

        out = unmarshal_step(marshal_step(self._payload()))
        view = out.variables["vel"]
        writable = out.ensure_writable("vel")
        assert writable.flags.writeable and writable is not view
        assert out.variables["vel"] is writable
        np.testing.assert_array_equal(writable, view)
        # second call is a no-op (already private)
        assert out.ensure_writable("vel") is writable

    def test_roundtrip_values(self):
        from repro.adios.marshal import marshal_step, unmarshal_step

        payload = self._payload()
        out = unmarshal_step(marshal_step(payload))
        assert out.step == payload.step and out.rank == payload.rank
        assert out.attributes == payload.attributes
        for name, arr in payload.variables.items():
            np.testing.assert_array_equal(out.variables[name], arr)

    def test_naive_mode_roundtrip_matches(self):
        from repro.adios.marshal import marshal_step, unmarshal_step

        payload = self._payload()
        fast = bytes(marshal_step(payload))
        with naive_mode():
            slow = marshal_step(payload)
            out = unmarshal_step(slow)
        assert fast == slow
        assert out.variables["vel"].flags.writeable  # reference copies
        np.testing.assert_array_equal(out.variables["vel"],
                                      payload.variables["vel"])


class TestGate:
    def test_compare_to_baseline_synthetic_regression(self):
        """A 25% regression against baseline must fail the 20% gate."""
        from repro.perf.gate import compare_to_baseline

        baseline = {"k": {"baseline_s": 1.0}}
        failures = compare_to_baseline(baseline, {"k": {"latest_s": 1.25}})
        assert len(failures) == 1 and failures[0].startswith("k:")
        # 15% slower stays inside the 20% threshold
        assert compare_to_baseline(baseline, {"k": {"latest_s": 1.15}}) == []

    def test_compare_ignores_unknown_kernels(self):
        from repro.perf.gate import compare_to_baseline

        assert compare_to_baseline({}, {"new": {"latest_s": 9.9}}) == []

    def test_run_gate_writes_baseline_and_passes(self, tmp_path):
        from repro.perf.gate import SCHEMA, run_gate

        path = tmp_path / "BENCH.json"
        kernels = {"noop": lambda: (lambda: None)}
        report = run_gate(path=path, repeats=1, kernels=kernels)
        assert report.ok
        data = json.loads(path.read_text())
        assert data["schema"] == SCHEMA
        kern = data["kernels"]["noop"]
        assert kern["baseline_s"] == kern["latest_s"]
        assert "arena" in data["allocation_stats"]
        assert "gate PASSED" in report.render()

    def test_run_gate_preserves_baseline_unless_updated(self, tmp_path):
        from repro.perf.gate import run_gate

        path = tmp_path / "BENCH.json"
        kernels = {"noop": lambda: (lambda: None)}
        run_gate(path=path, repeats=1, kernels=kernels)
        data = json.loads(path.read_text())
        data["kernels"]["noop"]["baseline_s"] = 123.0
        path.write_text(json.dumps(data))

        run_gate(path=path, repeats=1, kernels=kernels)
        kept = json.loads(path.read_text())["kernels"]["noop"]["baseline_s"]
        assert kept == 123.0

        run_gate(path=path, repeats=1, kernels=kernels, update_baseline=True)
        refreshed = json.loads(path.read_text())["kernels"]["noop"]
        assert refreshed["baseline_s"] == refreshed["latest_s"] != 123.0

    def test_run_gate_fails_on_doctored_baseline(self, tmp_path):
        from repro.perf.gate import run_gate

        path = tmp_path / "BENCH.json"

        def build():
            def body():
                x = 0
                for i in range(20000):
                    x += i
                return x

            return body

        kernels = {"spin": build}
        first = run_gate(path=path, repeats=1, kernels=kernels)
        assert first.ok
        data = json.loads(path.read_text())
        data["kernels"]["spin"]["baseline_s"] = (
            data["kernels"]["spin"]["latest_s"] / 1e6
        )
        path.write_text(json.dumps(data))

        report = run_gate(path=path, repeats=1, kernels=kernels)
        assert not report.ok
        assert report.kernels["spin"]["status"] == "FAIL"
        assert "FAIL" in report.render()

    def test_cli_gate_exit_codes(self, tmp_path, monkeypatch):
        from repro import cli

        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(
            "repro.perf.gate.KERNELS", {"noop": lambda: (lambda: None)}
        )
        from repro.perf import gate

        assert cli.main(["bench", "--gate"]) == 0
        data = json.loads((tmp_path / gate.BASELINE_FILE).read_text())
        data["kernels"]["noop"]["baseline_s"] = -1.0
        (tmp_path / gate.BASELINE_FILE).write_text(json.dumps(data))
        assert cli.main(["bench", "--gate"]) == 1

    def test_bench_requires_figure_or_gate(self):
        from repro import cli

        with pytest.raises(SystemExit):
            cli.main(["bench"])
