"""Optimized-vs-reference equivalence for every perf-layer hot path.

The acceptance bar for PR 3: plan-cached SEM kernels match the naive
reference to 1e-13 across randomized shapes, the batched rasterizer is
*bit-for-bit* identical to the per-triangle loop, gather-scatter setup
matches the dict-based discovery, and the allocation-free CG agrees
with the reference solver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import SerialCommunicator
from repro.perf import naive_mode
from repro.sem import BoxMesh, SEMOperators
from repro.sem.gather_scatter import find_interface_ids, interface_ids_reference
from repro.sem.krylov import cg_solve, cg_solve_reference
from repro.sem.tensor import (
    apply_1d_x,
    apply_1d_x_reference,
    apply_1d_y,
    apply_1d_y_reference,
    apply_1d_z,
    apply_1d_z_reference,
    apply_3d,
    local_grad,
    local_grad_transpose,
    local_grad_transpose_reference,
)

TOL = dict(rtol=0.0, atol=1e-13)

#: randomized (E, N) shapes, including rectangular (dealias) operators
SHAPES = [(1, 2), (3, 4), (8, 5), (2, 7), (13, 3)]


def _rand(shape, seed):
    return np.random.default_rng(seed).normal(size=shape)


class TestTensorKernels:
    @pytest.mark.parametrize("E,N", SHAPES)
    def test_apply_1d_matches_reference(self, E, N):
        nq = N + 1
        f = _rand((E, nq, nq, nq), seed=E * 31 + N)
        A = _rand((nq, nq), seed=E + N)
        for fast, ref in (
            (apply_1d_x, apply_1d_x_reference),
            (apply_1d_y, apply_1d_y_reference),
            (apply_1d_z, apply_1d_z_reference),
        ):
            np.testing.assert_allclose(fast(A, f), ref(A, f), **TOL)

    @pytest.mark.parametrize("E,N", SHAPES)
    def test_apply_1d_rectangular(self, E, N):
        """Dealias-style operators map nq -> mq != nq."""
        nq, mq = N + 1, N + 3
        f = _rand((E, nq, nq, nq), seed=N)
        A = _rand((mq, nq), seed=N + 1)
        np.testing.assert_allclose(
            apply_1d_x(A, f), apply_1d_x_reference(A, f), **TOL
        )
        np.testing.assert_allclose(
            apply_1d_y(A, f), apply_1d_y_reference(A, f), **TOL
        )
        np.testing.assert_allclose(
            apply_1d_z(A, f), apply_1d_z_reference(A, f), **TOL
        )

    @pytest.mark.parametrize("E,N", SHAPES[:3])
    def test_apply_1d_out_buffer(self, E, N):
        nq = N + 1
        f = _rand((E, nq, nq, nq), seed=9)
        A = _rand((nq, nq), seed=10)
        for fast, ref in (
            (apply_1d_x, apply_1d_x_reference),
            (apply_1d_y, apply_1d_y_reference),
            (apply_1d_z, apply_1d_z_reference),
        ):
            out = np.empty_like(f)
            res = fast(A, f, out=out)
            assert res is out
            np.testing.assert_allclose(out, ref(A, f), **TOL)

    @pytest.mark.parametrize("E,N", SHAPES)
    def test_apply_3d_matches_composition(self, E, N):
        nq, mq = N + 1, N + 2
        f = _rand((E, nq, nq, nq), seed=E)
        Ax = _rand((mq, nq), seed=1)
        Ay = _rand((mq, nq), seed=2)
        Az = _rand((mq, nq), seed=3)
        expected = apply_1d_z_reference(
            Az, apply_1d_y_reference(Ay, apply_1d_x_reference(Ax, f))
        )
        np.testing.assert_allclose(apply_3d(Ax, Ay, Az, f), expected, **TOL)

    @pytest.mark.parametrize("E,N", SHAPES)
    def test_local_grad_and_transpose(self, E, N):
        nq = N + 1
        f = _rand((E, nq, nq, nq), seed=E + 17)
        D = _rand((nq, nq), seed=N + 17)
        gr, gs, gt = local_grad(D, f)
        np.testing.assert_allclose(gr, apply_1d_x_reference(D, f), **TOL)
        np.testing.assert_allclose(gs, apply_1d_y_reference(D, f), **TOL)
        np.testing.assert_allclose(gt, apply_1d_z_reference(D, f), **TOL)
        np.testing.assert_allclose(
            local_grad_transpose(D, gr, gs, gt),
            local_grad_transpose_reference(D, gr, gs, gt),
            **TOL,
        )

    def test_non_contiguous_input_falls_back(self):
        """Strided fields must still produce correct results."""
        f = _rand((4, 6, 6, 12), seed=0)[..., ::2]
        A = _rand((6, 6), seed=1)
        np.testing.assert_allclose(
            apply_1d_x(A, f), apply_1d_x_reference(A, f), **TOL
        )


class TestOperatorsEquivalence:
    @pytest.fixture(scope="class")
    def ops(self):
        return SEMOperators(BoxMesh((2, 2, 2), order=4), SerialCommunicator())

    @pytest.fixture(scope="class")
    def f(self, ops):
        return _rand(ops.mesh.field_shape(), seed=5)

    def _pair(self, call):
        fast = call()
        with naive_mode():
            slow = call()
        return fast, slow

    def test_stiffness(self, ops, f):
        fast, slow = self._pair(lambda: ops.stiffness_apply(f))
        np.testing.assert_allclose(fast, slow, **TOL)

    def test_helmholtz(self, ops, f):
        fast, slow = self._pair(lambda: ops.helmholtz_apply(f, 2.5, 0.5))
        np.testing.assert_allclose(fast, slow, **TOL)

    def test_mass(self, ops, f):
        fast, slow = self._pair(lambda: ops.mass_apply(f))
        np.testing.assert_allclose(fast, slow, **TOL)

    def test_stiffness_diagonal(self, ops):
        fast, slow = self._pair(lambda: ops.stiffness_diagonal(1.0, 1.0))
        np.testing.assert_allclose(fast, slow, **TOL)

    def test_grad_div_convect(self, ops, f):
        u, v, w = (_rand(f.shape, seed=s) for s in (11, 12, 13))
        for call in (
            lambda: ops.grad(f),
            lambda: ops.div(u, v, w),
            lambda: ops.convect(f, u, v, w),
        ):
            fast, slow = self._pair(call)
            np.testing.assert_allclose(
                np.asarray(fast), np.asarray(slow), **TOL
            )

    def test_dot_bitwise(self, ops, f):
        g = _rand(f.shape, seed=21)
        fast, slow = self._pair(lambda: ops.dot(f, g))
        assert fast == slow  # same elementwise ops + pairwise sum

    def test_integrate_bitwise(self, ops, f):
        fast, slow = self._pair(lambda: ops.integrate(f))
        assert fast == slow


class TestCGEquivalence:
    def test_cg_bitwise_vs_reference(self):
        ops = SEMOperators(BoxMesh((2, 2, 2), order=4), SerialCommunicator())
        rng = np.random.default_rng(3)
        b = ops.assemble(rng.normal(size=ops.mesh.field_shape()))
        diag = ops.stiffness_diagonal(1.0, 1.0)
        pre = 1.0 / diag

        def apply_op(f):
            return ops.assemble(ops.helmholtz_apply(f, 1.0, 1.0))

        fast = cg_solve(apply_op, b, ops.dot, precond=pre, tol=1e-10,
                        max_iterations=50)
        slow = cg_solve_reference(apply_op, b, ops.dot, precond=pre, tol=1e-10,
                                  max_iterations=50)
        assert fast.iterations == slow.iterations
        assert fast.residual == slow.residual
        np.testing.assert_array_equal(fast.x, slow.x)

    def test_cg_unpreconditioned_and_x0(self):
        ops = SEMOperators(BoxMesh((2, 2, 2), order=3), SerialCommunicator())
        rng = np.random.default_rng(4)
        b = ops.assemble(rng.normal(size=ops.mesh.field_shape()))
        x0 = rng.normal(size=b.shape)

        def apply_op(f):
            return ops.assemble(ops.helmholtz_apply(f, 1.0, 1.0))

        fast = cg_solve(apply_op, b, ops.dot, x0=x0, tol=1e-9,
                        max_iterations=40)
        slow = cg_solve_reference(apply_op, b, ops.dot, x0=x0, tol=1e-9,
                                  max_iterations=40)
        assert fast.iterations == slow.iterations
        np.testing.assert_array_equal(fast.x, slow.x)
        np.testing.assert_array_equal(x0, x0)  # caller's x0 untouched


class TestGatherScatterSetup:
    def test_matches_reference_random_sets(self):
        rng = np.random.default_rng(8)
        for trial in range(5):
            sets = [
                np.unique(rng.integers(0, 500, size=rng.integers(10, 200)))
                for _ in range(rng.integers(2, 6))
            ]
            np.testing.assert_array_equal(
                find_interface_ids(sets), interface_ids_reference(sets)
            )

    def test_empty_and_disjoint(self):
        sets = [np.array([0, 1], dtype=np.int64),
                np.array([2, 3], dtype=np.int64)]
        assert len(find_interface_ids(sets)) == 0
        shared = [np.array([0, 1, 2], dtype=np.int64),
                  np.array([2, 3], dtype=np.int64),
                  np.array([2, 5], dtype=np.int64)]
        np.testing.assert_array_equal(find_interface_ids(shared), [2])

    def test_naive_mode_uses_reference(self):
        sets = [np.array([1, 2]), np.array([2, 3])]
        with naive_mode():
            np.testing.assert_array_equal(find_interface_ids(sets), [2])


class TestRasterizerEquivalence:
    def _soup(self, seed, nfaces, scale, width=96, height=80):
        from repro.catalyst.camera import Camera

        rng = np.random.default_rng(seed)
        centers = rng.uniform(-1.0, 1.0, size=(nfaces, 1, 3))
        vertices = (
            centers + rng.normal(scale=scale, size=(nfaces, 3, 3))
        ).reshape(-1, 3)
        faces = np.arange(3 * nfaces).reshape(nfaces, 3)
        colors = rng.integers(0, 256, size=(3 * nfaces, 3)).astype(np.uint8)
        camera = Camera.fit_bounds(
            np.array([[-1.5, 1.5]] * 3), width=width, height=height
        )
        return camera, vertices, faces, colors

    def _render_both(self, camera, vertices, faces, colors):
        from repro.catalyst.rasterizer import Rasterizer

        fast = Rasterizer(camera.width, camera.height)
        nfast = fast.draw_mesh(camera, vertices, faces, colors)
        slow = Rasterizer(camera.width, camera.height)
        with naive_mode():
            nslow = slow.draw_mesh(camera, vertices, faces, colors)
        return fast, nfast, slow, nslow

    @pytest.mark.parametrize("seed,nfaces,scale", [
        (0, 50, 0.08),   # small triangles (marching-tetrahedra shape)
        (1, 12, 0.8),    # large overlapping triangles
        (2, 200, 0.03),  # dense soup, heavy z-fighting
    ])
    def test_golden_image_equality(self, seed, nfaces, scale):
        fast, nfast, slow, nslow = self._render_both(
            *self._soup(seed, nfaces, scale)
        )
        assert nfast == nslow
        np.testing.assert_array_equal(fast.depth, slow.depth)
        np.testing.assert_array_equal(fast.color, slow.color)

    def test_degenerate_offscreen_and_behind(self):
        from repro.catalyst.camera import Camera

        camera = Camera.fit_bounds(np.array([[-1, 1]] * 3), width=64,
                                   height=64)
        vertices = np.array([
            [0.0, 0.0, 0.0], [0.2, 0.0, 0.0], [0.0, 0.2, 0.0],   # normal
            [0.5, 0.5, 0.0], [0.5, 0.5, 0.0], [0.5, 0.5, 0.0],   # degenerate
            [50.0, 50.0, 0.0], [51.0, 50.0, 0.0], [50.0, 51.0, 0.0],  # off
            [-9.0, 0.0, -9.0], [-9.1, 0.0, -9.0], [-9.0, 0.1, -9.0],  # behind
        ])
        faces = np.arange(12).reshape(4, 3)
        colors = np.full((12, 3), 200, dtype=np.uint8)
        fast, nfast, slow, nslow = self._render_both(
            camera, vertices, faces, colors
        )
        assert nfast == nslow
        np.testing.assert_array_equal(fast.depth, slow.depth)
        np.testing.assert_array_equal(fast.color, slow.color)

    def test_equal_depth_tie_breaks_identically(self):
        """Coplanar duplicated faces: later faces must lose ties."""
        from repro.catalyst.camera import Camera

        camera = Camera.fit_bounds(np.array([[-1, 1]] * 3), width=48,
                                   height=48)
        tri = np.array([[-0.5, -0.5, 0.0], [0.5, -0.5, 0.0], [0.0, 0.6, 0.0]])
        vertices = np.vstack([tri, tri, tri])
        faces = np.arange(9).reshape(3, 3)
        colors = np.array(
            [[255, 0, 0]] * 3 + [[0, 255, 0]] * 3 + [[0, 0, 255]] * 3,
            dtype=np.uint8,
        )
        fast, nfast, slow, nslow = self._render_both(
            camera, vertices, faces, colors
        )
        assert nfast == nslow
        np.testing.assert_array_equal(fast.color, slow.color)

    def test_render_pipeline_end_to_end(self):
        """Full contour render agrees between batched and loop paths."""
        from repro.catalyst import RenderPipeline, RenderSpec
        from repro.vtkdata import DataArray, ImageData

        n = 12
        image = ImageData((n, n, n), origin=(0, 0, 0),
                          spacing=(1 / (n - 1),) * 3)
        g = np.linspace(0, 1, n)
        Z, Y, X = np.meshgrid(g, g, g, indexing="ij")
        sphere = np.sqrt((X - 0.5) ** 2 + (Y - 0.5) ** 2 + (Z - 0.5) ** 2)
        image.add_array(DataArray("phi", sphere.ravel()))
        spec = [RenderSpec(kind="contour", array="phi", isovalue=0.3)]

        fast_pipe = RenderPipeline(specs=spec, width=96, height=96, name="eq")
        fast_frames = dict(fast_pipe.render(image, 0, 0.0))
        slow_pipe = RenderPipeline(specs=spec, width=96, height=96, name="eq")
        with naive_mode():
            slow_frames = dict(slow_pipe.render(image, 0, 0.0))
        assert fast_frames.keys() == slow_frames.keys()
        for name in fast_frames:
            np.testing.assert_array_equal(fast_frames[name],
                                          slow_frames[name])
