"""Deeper physics validation: analytic solutions and convergence laws.

- Poiseuille channel: forced laminar flow between plates converges to
  the parabolic profile.
- Spectral (p-) convergence: Poisson error falls exponentially with
  polynomial order — the property SEM exists for.
- Heat equation: the slowest diffusion mode decays at its analytic
  rate.
"""

import math

import numpy as np
import pytest

from repro.nekrs import CaseDefinition, NekRSSolver, ScalarBC, VelocityBC
from repro.parallel import SerialCommunicator
from repro.sem import BoundaryTag, BoxMesh, SEMOperators, cg_solve


class TestPoiseuille:
    def test_parabolic_profile(self):
        """dp/dx = -G between no-slip plates: u(z) = G z(1-z) / (2 nu)."""
        nu, G = 0.1, 1.0
        case = CaseDefinition(
            name="channel",
            mesh_shape=(2, 2, 3),
            extent=((0, 0, 0), (1, 1, 1)),
            order=5,
            periodic=(True, True, False),
            viscosity=nu,
            dt=0.05,
            num_steps=240,   # ~12 viscous time units: well into steady state
            time_order=2,
            velocity_bcs={
                BoundaryTag.ZMIN: VelocityBC(),
                BoundaryTag.ZMAX: VelocityBC(),
            },
            forcing=lambda x, y, z, t, T: (
                np.full_like(x, G), np.zeros_like(x), np.zeros_like(x),
            ),
        )
        solver = NekRSSolver(case, SerialCommunicator())
        solver.run(240)
        z = solver.mesh.z
        exact = G * z * (1.0 - z) / (2.0 * nu)
        err = solver.ops.norm(solver.u - exact) / solver.ops.norm(exact)
        assert err < 1e-3
        # transverse components stay at solver-tolerance level
        assert solver.ops.norm(solver.v) < 1e-6
        assert solver.ops.norm(solver.w) < 1e-6

    def test_flow_rate_grows_with_forcing(self):
        rates = {}
        for G in (0.5, 1.0):
            case = CaseDefinition(
                name="channel",
                mesh_shape=(2, 2, 2),
                extent=((0, 0, 0), (1, 1, 1)),
                order=4,
                periodic=(True, True, False),
                viscosity=0.1,
                dt=0.05,
                num_steps=40,
                velocity_bcs={
                    BoundaryTag.ZMIN: VelocityBC(),
                    BoundaryTag.ZMAX: VelocityBC(),
                },
                forcing=lambda x, y, z, t, T, G=G: (
                    np.full_like(x, G), np.zeros_like(x), np.zeros_like(x),
                ),
            )
            solver = NekRSSolver(case, SerialCommunicator())
            solver.run(40)
            rates[G] = solver.ops.integrate(solver.u)
        assert rates[1.0] == pytest.approx(2.0 * rates[0.5], rel=1e-3)


class TestSpectralConvergence:
    def _poisson_error(self, order: int) -> float:
        mesh = BoxMesh((2, 2, 2), order=order)
        ops = SEMOperators(mesh, SerialCommunicator())
        x, y, z = mesh.coords()
        ue = np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
        mask = ~mesh.boundary_union(list(BoundaryTag))
        b = ops.assemble(ops.mass_apply(3 * np.pi**2 * ue)) * mask
        diag = ops.stiffness_diagonal()
        res = cg_solve(
            lambda u: ops.assemble(ops.stiffness_apply(u)) * mask,
            b, ops.dot,
            precond=np.where(diag > 0, 1.0 / np.where(diag > 0, diag, 1), 0) * mask,
            tol=1e-13, max_iterations=3000,
        )
        return ops.norm(res.x - ue * mask) / ops.norm(ue)

    def test_exponential_error_decay(self):
        errors = {order: self._poisson_error(order) for order in (2, 4, 6, 8)}
        # each +2 in order gains at least a factor ~10
        assert errors[4] < errors[2] / 10
        assert errors[6] < errors[4] / 10
        assert errors[8] < errors[6] / 5  # approaching CG tolerance floor
        assert errors[8] < 1e-7


class TestHeatEquation:
    def test_fundamental_mode_decay(self):
        """dT/dt = kappa lap T with T = sin(pi z): decays at kappa pi^2."""
        kappa = 0.05
        case = CaseDefinition(
            name="heat",
            mesh_shape=(2, 2, 2),
            extent=((0, 0, 0), (1, 1, 1)),
            order=6,
            periodic=(True, True, False),
            viscosity=1e-3,
            conductivity=kappa,
            dt=0.01,
            num_steps=40,
            time_order=2,
            temperature_bcs={
                BoundaryTag.ZMIN: ScalarBC(0.0),
                BoundaryTag.ZMAX: ScalarBC(0.0),
            },
            initial_temperature=lambda x, y, z: np.sin(np.pi * z),
        )
        solver = NekRSSolver(case, SerialCommunicator())
        solver.run(40)
        z = solver.mesh.z
        expected = np.sin(np.pi * z) * math.exp(-kappa * math.pi**2 * solver.time)
        err = solver.ops.norm(solver.T - expected) / solver.ops.norm(expected)
        assert err < 5e-3

    def test_insulated_box_conserves_heat(self):
        """No-flux walls: total thermal energy is invariant."""
        case = CaseDefinition(
            name="insulated",
            mesh_shape=(2, 2, 2),
            extent=((0, 0, 0), (1, 1, 1)),
            order=4,
            viscosity=1e-2,
            conductivity=1e-2,
            dt=0.01,
            num_steps=20,
            initial_temperature=lambda x, y, z: 1.0 + 0.5 * np.cos(np.pi * x),
        )
        solver = NekRSSolver(case, SerialCommunicator())
        q0 = solver.ops.integrate(solver.T)
        solver.run(20)
        assert solver.ops.integrate(solver.T) == pytest.approx(q0, rel=1e-6)
