"""Tests for spectral point evaluation and history points."""

import numpy as np
import pytest

from repro.insitu import Bridge, NekDataAdaptor
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.parallel import SerialCommunicator, run_spmd
from repro.sem import BoxMesh
from repro.sem.pointeval import PointLocator
from repro.sensei.analyses import HistoryPoints


class TestLocate:
    def test_element_assignment(self):
        mesh = BoxMesh((2, 2, 2), ((0, 0, 0), (1, 1, 1)), order=3)
        loc = PointLocator(mesh)
        elem, ref = loc.locate(np.array([[0.25, 0.25, 0.25], [0.75, 0.75, 0.75]]))
        assert elem[0] == 0
        assert elem[1] == 7
        np.testing.assert_allclose(ref[0], 0.0, atol=1e-12)

    def test_outside_domain(self):
        mesh = BoxMesh((2, 2, 2), order=2)
        loc = PointLocator(mesh)
        elem, _ = loc.locate(np.array([[2.0, 0.5, 0.5]]))
        assert elem[0] == -1

    def test_boundary_points_assigned(self):
        mesh = BoxMesh((2, 2, 2), order=2)
        loc = PointLocator(mesh)
        elem, ref = loc.locate(np.array([[1.0, 1.0, 1.0], [0.0, 0.0, 0.0]]))
        assert elem[0] == 7 and elem[1] == 0
        np.testing.assert_allclose(ref[0], 1.0, atol=1e-9)
        np.testing.assert_allclose(ref[1], -1.0, atol=1e-9)


class TestEvaluate:
    def test_exact_for_polynomials(self):
        mesh = BoxMesh((2, 3, 2), ((0, 0, 0), (2, 3, 2)), order=4)
        loc = PointLocator(mesh)
        x, y, z = mesh.coords()
        field = x**3 - 2 * y * z + y**2
        rng = np.random.default_rng(5)
        pts = rng.uniform(0.01, 1.99, size=(20, 3)) * [1.0, 1.5, 1.0]
        vals = loc.evaluate(field, pts, SerialCommunicator())
        expected = pts[:, 0] ** 3 - 2 * pts[:, 1] * pts[:, 2] + pts[:, 1] ** 2
        np.testing.assert_allclose(vals, expected, atol=1e-10)

    def test_spectral_accuracy_on_sin(self):
        mesh = BoxMesh((2, 2, 2), order=8)
        loc = PointLocator(mesh)
        x, _, _ = mesh.coords()
        field = np.sin(2 * np.pi * x)
        pts = np.array([[0.123, 0.5, 0.5], [0.777, 0.1, 0.9]])
        vals = loc.evaluate(field, pts, SerialCommunicator())
        np.testing.assert_allclose(vals, np.sin(2 * np.pi * pts[:, 0]), atol=1e-7)

    def test_out_of_domain_nan(self):
        mesh = BoxMesh((2, 2, 2), order=2)
        loc = PointLocator(mesh)
        vals = loc.evaluate(
            np.ones(mesh.field_shape()), np.array([[5.0, 5.0, 5.0]]),
            SerialCommunicator(),
        )
        assert np.isnan(vals[0])

    def test_distributed_matches_serial(self):
        shape, order = (4, 2, 2), 3
        full = BoxMesh(shape, order=order)
        x, y, z = full.coords()
        field_full = x * y + z**2
        pts = np.array([[0.1, 0.5, 0.5], [0.6, 0.2, 0.8], [0.95, 0.95, 0.1]])
        expected = PointLocator(full).evaluate(
            field_full, pts, SerialCommunicator()
        )

        def body(comm):
            mesh = BoxMesh(shape, order=order, rank=comm.rank, size=comm.size)
            xx, yy, zz = mesh.coords()
            local = xx * yy + zz**2
            return PointLocator(mesh).evaluate(local, pts, comm)

        for vals in run_spmd(2, body):
            np.testing.assert_allclose(vals, expected, atol=1e-12)

    def test_field_shape_mismatch(self):
        mesh = BoxMesh((2, 2, 2), order=2)
        loc = PointLocator(mesh)
        with pytest.raises(ValueError):
            loc.evaluate_local(np.zeros((1, 2, 2, 2)), np.zeros((1, 3)))


class TestHistoryPoints:
    def _run_with_probes(self, comm, tmp_path, steps=3):
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        solver = NekRSSolver(case, comm)
        probes = HistoryPoints(
            comm,
            points=np.array([[0.5, 0.5, 0.9], [0.5, 0.5, 0.1]]),
            arrays=("velocity_x", "pressure"),
            output_dir=tmp_path,
        )
        bridge = Bridge(solver, analysis=probes)
        solver.run(steps, observer=bridge.observer)
        bridge.finalize()
        return solver, probes

    def test_series_recorded(self, comm, tmp_path):
        _, probes = self._run_with_probes(comm, tmp_path)
        assert len(probes.samples) == 3
        near_lid = probes.series("velocity_x", 0)
        near_bottom = probes.series("velocity_x", 1)
        # the lid drives flow: the upper probe sees far more x-velocity
        assert abs(near_lid[-1]) > 10 * abs(near_bottom[-1])

    def test_csv_written(self, comm, tmp_path):
        self._run_with_probes(comm, tmp_path)
        lines = (tmp_path / "history_points.csv").read_text().splitlines()
        assert lines[0].startswith("step,time,probe")
        assert len(lines) == 1 + 3 * 2  # header + steps x probes

    def test_requires_solver_adaptor(self, comm):
        probes = HistoryPoints(comm, points=np.array([[0.5, 0.5, 0.5]]))

        class Fake:
            def get_data_time_step(self):
                return 0

            def get_data_time(self):
                return 0.0

        with pytest.raises(TypeError):
            probes.execute(Fake())

    def test_xml_registration(self, comm, tmp_path, tiny_solver):
        xml = (
            '<sensei><analysis type="history_points" '
            'points="0.5,0.5,0.5; 0.1,0.2,0.3" arrays="pressure" '
            'frequency="1"/></sensei>'
        )
        bridge = Bridge(tiny_solver, config_xml=xml, output_dir=tmp_path)
        tiny_solver.run(2, observer=bridge.observer)
        probes = bridge.analysis.adaptors[0][1]
        assert probes.points.shape == (2, 3)
        assert len(probes.samples) == 2

    def test_validation(self, comm):
        with pytest.raises(ValueError):
            HistoryPoints(comm, points=np.zeros((0, 3)))
        with pytest.raises(ValueError):
            HistoryPoints(comm, points=np.zeros((2, 2)))

    def test_parallel_matches_serial(self, tmp_path):
        def body(comm):
            case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
            solver = NekRSSolver(case, comm)
            probes = HistoryPoints(
                comm, points=np.array([[0.5, 0.5, 0.9]]),
                arrays=("velocity_x",),
            )
            bridge = Bridge(solver, analysis=probes)
            solver.run(2, observer=bridge.observer)
            return probes.series("velocity_x", 0)

        serial = run_spmd(1, body)[0]
        par = run_spmd(2, body)[0]
        np.testing.assert_allclose(par, serial, atol=1e-12)
