"""Tests for the posthoc series/stats/movie tooling."""

import numpy as np
import pytest

from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.nekrs.checkpoint import write_checkpoint
from repro.parallel import SerialCommunicator, run_spmd
from repro.posthoc import FldSeries, render_series, temporal_mean, temporal_rms


@pytest.fixture
def series_dir(tmp_path):
    """A 3-dump series written from a real 2-rank run."""
    case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)

    def body(comm):
        solver = NekRSSolver(case, comm)
        for _ in range(3):
            report = solver.step()
            write_checkpoint(
                tmp_path, case.name, report.step, report.time,
                comm.rank, comm.size,
                {"velocity_x": solver.u, "pressure": solver.p},
            )
        return solver.ops.integrate(solver.u)

    final_flux = run_spmd(2, body)[0]
    return tmp_path, case, final_flux


class TestDiscovery:
    def test_finds_all_dumps(self, series_dir):
        directory, case, _ = series_dir
        series = FldSeries.discover(directory)
        assert series.case == case.name
        assert series.steps == [1, 2, 3]
        assert series.field_names == ("velocity_x", "pressure")

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FldSeries.discover(tmp_path)

    def test_case_filter(self, series_dir, tmp_path):
        directory, case, _ = series_dir
        with pytest.raises(FileNotFoundError):
            FldSeries.discover(directory, case="othercase")

    def test_incomplete_dump_detected(self, series_dir):
        directory, case, _ = series_dir
        # delete one rank file of step 2
        victim = next(directory.glob(f"{case.name}0.f00002.r0001"))
        victim.unlink()
        with pytest.raises(ValueError, match="incomplete"):
            FldSeries.discover(directory)

    def test_mixed_cases_rejected(self, series_dir):
        directory, _, _ = series_dir
        write_checkpoint(
            directory, "intruder", 1, 0.0, 0, 1,
            {"pressure": np.zeros((1, 4, 4, 4))},
        )
        with pytest.raises(ValueError, match="multiple cases"):
            FldSeries.discover(directory)


class TestLoading:
    def test_global_reassembly(self, series_dir):
        """The 2-rank dump reloads identical to the live global field."""
        directory, case, _ = series_dir
        series = FldSeries.discover(directory)
        # replay the run on 1 rank to get the reference global state
        solver = NekRSSolver(case, SerialCommunicator())
        solver.run(3)
        _, fields = series.load(3)
        np.testing.assert_allclose(fields["velocity_x"], solver.u, atol=1e-12)
        np.testing.assert_allclose(fields["pressure"], solver.p, atol=1e-10)

    def test_missing_step(self, series_dir):
        series = FldSeries.discover(series_dir[0])
        with pytest.raises(KeyError):
            series.load(99)

    def test_iter_loaded_in_order(self, series_dir):
        series = FldSeries.discover(series_dir[0])
        steps = [h.step for h, _ in series.iter_loaded()]
        assert steps == [1, 2, 3]


class TestStats:
    def test_mean_matches_numpy(self, series_dir):
        series = FldSeries.discover(series_dir[0])
        stack = np.stack([f["velocity_x"] for _, f in series.iter_loaded()])
        np.testing.assert_allclose(
            temporal_mean(series, "velocity_x"), stack.mean(axis=0), atol=1e-12
        )

    def test_rms_matches_numpy(self, series_dir):
        series = FldSeries.discover(series_dir[0])
        stack = np.stack([f["velocity_x"] for _, f in series.iter_loaded()])
        np.testing.assert_allclose(
            temporal_rms(series, "velocity_x"), stack.std(axis=0), atol=1e-12
        )

    def test_unknown_array(self, series_dir):
        series = FldSeries.discover(series_dir[0])
        with pytest.raises(KeyError):
            temporal_mean(series, "vorticity")

    def test_spinup_has_fluctuation(self, series_dir):
        series = FldSeries.discover(series_dir[0])
        assert temporal_rms(series, "velocity_x").max() > 0


class TestMovie:
    def test_renders_frame_per_dump(self, series_dir, tmp_path):
        directory, case, _ = series_dir
        series = FldSeries.discover(directory)
        outputs = render_series(
            series, case, tmp_path / "frames",
            arrays=("velocity_x",), width=96, height=96,
        )
        pngs = [p for p in outputs if p.suffix == ".png"]
        apngs = [p for p in outputs if p.suffix == ".apng"]
        assert len(pngs) == 3        # one frame per dump
        assert len(apngs) == 1       # plus the assembled animation
        for f in outputs:
            assert f.exists()
            assert f.stat().st_size > 0

    def test_mesh_mismatch_rejected(self, series_dir, tmp_path):
        directory, _, _ = series_dir
        series = FldSeries.discover(directory)
        wrong = lid_cavity_case(elements=3, order=3, dt=1e-2)
        with pytest.raises(ValueError, match="does not match"):
            render_series(series, wrong, tmp_path / "frames")
