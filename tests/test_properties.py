"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.adios.marshal import StepPayload, marshal_step, unmarshal_step
from repro.catalyst.colormaps import apply_colormap
from repro.catalyst.contour import marching_tetrahedra
from repro.parallel.comm import ReduceOp, _combine
from repro.parallel.partition import block_partition, owner_of
from repro.sem.quadrature import gll_nodes_weights, lagrange_interpolation_matrix
from repro.util.png import decode_png, encode_png
from repro.util.sizes import format_bytes
from repro.util.timing import TimingStats


class TestPartitionProperties:
    @given(n=st.integers(0, 500), size=st.integers(1, 64))
    def test_partition_tiles_range(self, n, size):
        ranges = block_partition(n, size)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == n
        for (lo_a, hi_a), (lo_b, _) in zip(ranges, ranges[1:]):
            assert hi_a == lo_b
            assert hi_a >= lo_a

    @given(n=st.integers(1, 500), size=st.integers(1, 64))
    def test_balance_within_one(self, n, size):
        sizes = [hi - lo for lo, hi in block_partition(n, size)]
        assert max(sizes) - min(sizes) <= 1

    @given(data=st.data(), n=st.integers(1, 300), size=st.integers(1, 32))
    def test_owner_consistency(self, data, n, size):
        idx = data.draw(st.integers(0, n - 1))
        owner = owner_of(idx, n, size)
        lo, hi = block_partition(n, size)[owner]
        assert lo <= idx < hi


class TestPngProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        img=hnp.arrays(
            dtype=np.uint8,
            shape=st.tuples(
                st.integers(1, 12), st.integers(1, 12), st.sampled_from([1, 3, 4])
            ),
        )
    )
    def test_roundtrip(self, img):
        decoded = decode_png(encode_png(img))
        expected = img[:, :, 0] if img.shape[2] == 1 else img
        np.testing.assert_array_equal(decoded, expected)


class TestMarshalProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        step=st.integers(0, 10**6),
        time=st.floats(0, 1e6, allow_nan=False),
        rank=st.integers(0, 4096),
        arr=st.one_of(
            hnp.arrays(
                dtype=st.sampled_from([np.float64, np.float32]),
                shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=6),
                elements=st.floats(-1e6, 1e6, allow_nan=False, width=32),
            ),
            hnp.arrays(
                dtype=st.sampled_from([np.int64, np.int32]),
                shape=hnp.array_shapes(min_dims=1, max_dims=3, max_side=6),
            ),
        ),
    )
    def test_roundtrip(self, step, time, rank, arr):
        payload = StepPayload(step, time, rank, {"v": arr}, {"k": "val"})
        out = unmarshal_step(marshal_step(payload))
        assert out.step == step and out.rank == rank
        assert out.time == time
        np.testing.assert_array_equal(out.variables["v"], arr)
        assert out.variables["v"].dtype == arr.dtype


class TestReduceProperties:
    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=20))
    def test_sum_order_invariant(self, values):
        assert _combine(ReduceOp.SUM, values) == _combine(
            ReduceOp.SUM, list(reversed(values))
        )

    @given(values=st.lists(st.integers(-1000, 1000), min_size=1, max_size=20))
    def test_min_le_max(self, values):
        assert _combine(ReduceOp.MIN, values) <= _combine(ReduceOp.MAX, values)

    @given(values=st.lists(st.booleans(), min_size=1, max_size=10))
    def test_logical_consistency(self, values):
        assert _combine(ReduceOp.LAND, values) == all(values)
        assert _combine(ReduceOp.LOR, values) == any(values)


class TestQuadratureProperties:
    @given(order=st.integers(1, 10))
    def test_weights_positive_sum_two(self, order):
        x, w = gll_nodes_weights(order)
        assert (w > 0).all()
        assert w.sum() == pytest.approx(2.0)
        assert x[0] == -1.0 and x[-1] == 1.0

    @given(
        order=st.integers(1, 8),
        coeffs=st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=4),
    )
    def test_interpolation_reproduces_its_own_degree(self, order, coeffs):
        coeffs = coeffs[: order + 1]
        x, _ = gll_nodes_weights(order)
        targets = np.linspace(-1, 1, 7)
        J = lagrange_interpolation_matrix(x, targets)
        poly = np.polynomial.Polynomial(coeffs)
        np.testing.assert_allclose(J @ poly(x), poly(targets), atol=1e-8)


class TestColormapProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        vals=hnp.arrays(
            dtype=np.float64,
            shape=st.integers(1, 50),
            elements=st.floats(-1e3, 1e3, allow_nan=False),
        ),
        name=st.sampled_from(["viridis", "plasma", "coolwarm", "grayscale"]),
    )
    def test_output_always_valid_rgb(self, vals, name):
        rgb = apply_colormap(vals, name=name)
        assert rgb.dtype == np.uint8
        assert rgb.shape == vals.shape + (3,)

    @given(
        lo=st.floats(-100, 100, allow_nan=False),
        span=st.floats(0.1, 100, allow_nan=False),
    )
    def test_monotone_in_grayscale(self, lo, span):
        vals = np.linspace(lo, lo + span, 16)
        rgb = apply_colormap(vals, vmin=lo, vmax=lo + span, name="grayscale")
        assert (np.diff(rgb[:, 0].astype(int)) >= 0).all()


class TestContourProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        vol=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 5), st.integers(2, 5), st.integers(2, 5)),
            elements=st.floats(-1, 1, allow_nan=False),
        ),
        iso=st.floats(-0.5, 0.5, allow_nan=False),
    )
    def test_surface_vertices_sit_on_isovalue(self, vol, iso):
        """Every extracted vertex interpolates the scalar to the isovalue
        (up to degenerate edges where both endpoints equal iso)."""
        verts, faces, vals = marching_tetrahedra(vol, iso)
        if len(vals):
            np.testing.assert_allclose(vals, iso, atol=1e-9)
            assert faces.max() < len(verts)

    @settings(max_examples=20, deadline=None)
    @given(
        vol=hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 4), st.integers(2, 4), st.integers(2, 4)),
            elements=st.floats(-1, 1, allow_nan=False),
        )
    )
    def test_no_crossing_when_iso_outside_range(self, vol):
        verts, faces, _ = marching_tetrahedra(vol, vol.max() + 1.0)
        assert len(faces) == 0


class TestTimingStatsProperties:
    @given(
        a=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=20),
        b=st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=20),
    )
    def test_merge_equals_sequential(self, a, b):
        merged, seq = TimingStats(), TimingStats()
        other = TimingStats()
        for x in a:
            merged.add(x)
            seq.add(x)
        for x in b:
            other.add(x)
            seq.add(x)
        merged.merge(other)
        assert merged.count == seq.count
        assert merged.mean == pytest.approx(seq.mean, abs=1e-9)
        assert merged.variance == pytest.approx(seq.variance, abs=1e-6)


class TestSizesProperties:
    @given(n=st.integers(0, 2**50))
    def test_format_never_crashes_and_mentions_unit(self, n):
        out = format_bytes(n)
        assert any(u in out for u in ("B", "KiB", "MiB", "GiB", "TiB"))
