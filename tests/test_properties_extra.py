"""Additional property-based tests: dealiasing, point evaluation,
Morton partitioning, compression bounds under composition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import SerialCommunicator
from repro.parallel.partition import morton_encode, morton_partition
from repro.sem import BoxMesh
from repro.sem.dealias import dealiased_product, project_back, to_fine
from repro.sem.pointeval import PointLocator


class TestDealiasProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        order=st.integers(2, 6),
        seed=st.integers(0, 10**6),
    )
    def test_projection_is_idempotent_on_pn(self, order, seed):
        """to_fine/project_back round-trips any P_N field exactly."""
        rng = np.random.default_rng(seed)
        f = rng.normal(size=(1, order + 1, order + 1, order + 1))
        out = project_back(to_fine(f, order), order)
        np.testing.assert_allclose(out, f, atol=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(order=st.integers(2, 5), seed=st.integers(0, 10**6))
    def test_product_linearity(self, order, seed):
        """dealiased_product is bilinear: (2a, b) == 2 (a, b)."""
        rng = np.random.default_rng(seed)
        shape = (1, order + 1, order + 1, order + 1)
        a = rng.normal(size=shape)
        b = rng.normal(size=shape)
        one = dealiased_product(a, b, order)
        two = dealiased_product(2.0 * a, b, order)
        np.testing.assert_allclose(two, 2.0 * one, atol=1e-8)

    @settings(max_examples=10, deadline=None)
    @given(order=st.integers(2, 5), seed=st.integers(0, 10**6))
    def test_product_symmetric(self, order, seed):
        rng = np.random.default_rng(seed)
        shape = (1, order + 1, order + 1, order + 1)
        a = rng.normal(size=shape)
        b = rng.normal(size=shape)
        np.testing.assert_allclose(
            dealiased_product(a, b, order),
            dealiased_product(b, a, order),
            atol=1e-9,
        )


class TestPointEvalProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10**6),
        order=st.integers(2, 5),
    )
    def test_exact_on_random_linear_fields(self, seed, order):
        rng = np.random.default_rng(seed)
        a, b, c, d = rng.normal(size=4)
        mesh = BoxMesh((2, 2, 2), order=order)
        loc = PointLocator(mesh)
        x, y, z = mesh.coords()
        field = a * x + b * y + c * z + d
        pts = rng.uniform(0.0, 1.0, size=(8, 3))
        vals = loc.evaluate(field, pts, SerialCommunicator())
        expected = a * pts[:, 0] + b * pts[:, 1] + c * pts[:, 2] + d
        np.testing.assert_allclose(vals, expected, atol=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_located_element_contains_point(self, seed):
        rng = np.random.default_rng(seed)
        mesh = BoxMesh((3, 2, 4), ((0, 0, 0), (3.0, 1.0, 2.0)), order=2)
        loc = PointLocator(mesh)
        pts = rng.uniform(0.0, 1.0, size=(16, 3)) * [3.0, 1.0, 2.0]
        elem, ref = loc.locate(pts)
        assert (elem >= 0).all()
        assert (np.abs(ref) <= 1.0 + 1e-12).all()
        for p, e in zip(pts, elem):
            origin_idx = np.nonzero(mesh.elem_ids == e)[0]
            assert len(origin_idx) == 1
            org = mesh.elem_origins[origin_idx[0]]
            assert np.all(p >= org - 1e-9)
            assert np.all(p <= org + mesh.elem_sizes + 1e-9)


class TestMortonProperties:
    @given(
        ex=st.integers(1, 6), ey=st.integers(1, 6), ez=st.integers(1, 6),
        size=st.integers(1, 12),
    )
    def test_partition_always_tiles(self, ex, ey, ez, size):
        parts = morton_partition((ex, ey, ez), size)
        assert len(parts) == size
        combined = sorted(np.concatenate(parts).tolist())
        assert combined == list(range(ex * ey * ez))

    @given(
        ex=st.integers(1, 6), ey=st.integers(1, 6), ez=st.integers(1, 6),
        size=st.integers(1, 12),
    )
    def test_partition_balanced(self, ex, ey, ez, size):
        sizes = [len(p) for p in morton_partition((ex, ey, ez), size)]
        assert max(sizes) - min(sizes) <= 1

    @given(
        coords=st.lists(
            st.tuples(st.integers(0, 200), st.integers(0, 200),
                      st.integers(0, 200)),
            min_size=1, max_size=50, unique=True,
        )
    )
    def test_codes_injective(self, coords):
        ix, iy, iz = (np.array(c) for c in zip(*coords))
        codes = morton_encode(ix, iy, iz)
        assert len(set(codes.tolist())) == len(coords)
