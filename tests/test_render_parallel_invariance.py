"""Rank-count invariance of the full render path.

The strongest integration guarantee we can make: a frame rendered in
situ from a 2-rank run is byte-identical to the frame from the same
simulation on 1 rank — gather, assembly, pipeline, and PNG encoding
are all deterministic and partition-independent.
"""

import numpy as np
import pytest

from repro.insitu import Bridge
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.parallel import run_spmd

XML = """
<sensei>
  <analysis type="catalyst" mesh="uniform" array="velocity_magnitude"
            isovalue="0.2" slice_axis="y" width="96" height="96"
            frequency="2"/>
</sensei>
"""


def _render_run(nranks, outdir):
    def body(comm):
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3)
        solver = NekRSSolver(case, comm)
        bridge = Bridge(solver, config_xml=XML, output_dir=outdir)
        solver.run(2, observer=bridge.observer)
        bridge.finalize()
        return None

    run_spmd(nranks, body)
    return {p.name: p.read_bytes() for p in sorted(outdir.glob("*.png"))}


class TestRenderInvariance:
    def test_images_match_across_rank_counts(self, tmp_path):
        """Frames agree pixel-for-pixel up to the O(1e-16) reduction-
        order roundoff the parallel CG introduces (which can flip an
        isolated pixel near a contour crossing)."""
        from repro.util.png import decode_png

        serial = _render_run(1, tmp_path / "serial")
        parallel = _render_run(2, tmp_path / "parallel")
        assert serial.keys() == parallel.keys()
        assert len(serial) == 2  # surface + slice at step 2
        for name in serial:
            a = decode_png(serial[name]).astype(int)
            b = decode_png(parallel[name]).astype(int)
            # grid-aligned isosurface edges project through exact pixel
            # centers, so 1e-16 reduction-order roundoff flips the
            # edge-tie winner on a few percent of pixels; the frames
            # must still be visually indistinguishable in aggregate
            differing = (a != b).any(axis=-1).mean()
            mean_delta = np.abs(a - b).mean()
            assert differing < 0.06, f"{name}: {differing:.2%} pixels differ"
            assert mean_delta < 3.0, f"{name}: mean delta {mean_delta:.2f}"

    def test_histogram_identical_across_rank_counts(self, tmp_path):
        xml = (
            '<sensei><analysis type="histogram" array="pressure" '
            'bins="16" frequency="1"/></sensei>'
        )

        def body(comm):
            case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3)
            solver = NekRSSolver(case, comm)
            bridge = Bridge(solver, config_xml=xml, output_dir=tmp_path)
            solver.run(2, observer=bridge.observer)
            hist = bridge.analysis.adaptors[0][1]
            return hist.results[-1].counts

        serial = run_spmd(1, body)[0]
        parallel = run_spmd(2, body)[0]
        np.testing.assert_array_equal(serial, parallel)
