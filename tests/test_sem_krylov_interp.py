"""Tests for the CG solver and spectral resampling."""

import numpy as np
import pytest

from repro.parallel import SerialCommunicator, run_spmd
from repro.sem import BoxMesh, SEMOperators, cg_solve, BoundaryTag
from repro.sem.interp import (
    assemble_global_grid,
    grid_dims,
    grid_spacing,
    local_blocks,
    resample_field,
)


class TestCGOnSPDMatrix:
    """CG against a small dense SPD system (dot = plain dot)."""

    def _solve(self, n=20, seed=1, **kw):
        rng = np.random.default_rng(seed)
        M = rng.normal(size=(n, n))
        A = M @ M.T + n * np.eye(n)
        x_true = rng.normal(size=n)
        b = A @ x_true
        res = cg_solve(lambda v: A @ v, b, lambda u, v: float(u @ v), **kw)
        return res, x_true

    def test_converges(self):
        res, x_true = self._solve(tol=1e-12, max_iterations=200)
        assert res.converged
        np.testing.assert_allclose(res.x, x_true, atol=1e-8)

    def test_jacobi_preconditioner_helps(self):
        rng = np.random.default_rng(0)
        n = 40
        # badly scaled diagonal system + small coupling
        d = 10.0 ** rng.uniform(0, 4, size=n)
        A = np.diag(d) + 0.1 * np.ones((n, n))
        b = rng.normal(size=n)
        dot = lambda u, v: float(u @ v)
        plain = cg_solve(lambda v: A @ v, b, dot, tol=1e-10, max_iterations=3000)
        pre = cg_solve(
            lambda v: A @ v, b, dot, precond=1.0 / np.diag(A),
            tol=1e-10, max_iterations=3000,
        )
        assert pre.iterations < plain.iterations

    def test_zero_rhs(self):
        res, _ = self._solve()
        out = cg_solve(lambda v: v, np.zeros(5), lambda u, v: float(u @ v))
        assert out.converged and out.iterations == 0
        np.testing.assert_array_equal(out.x, 0.0)

    def test_x0_warm_start(self):
        rng = np.random.default_rng(3)
        n = 15
        M = rng.normal(size=(n, n))
        A = M @ M.T + n * np.eye(n)
        x_true = rng.normal(size=n)
        b = A @ x_true
        dot = lambda u, v: float(u @ v)
        cold = cg_solve(lambda v: A @ v, b, dot, tol=1e-10, max_iterations=300)
        warm = cg_solve(
            lambda v: A @ v, b, dot, x0=x_true + 1e-6, tol=1e-10, max_iterations=300
        )
        # a good initial guess starts with a far smaller residual (the
        # tolerance is relative, so iteration counts may match)
        assert warm.initial_residual < 1e-3 * cold.initial_residual
        np.testing.assert_allclose(warm.x, x_true, atol=1e-8)

    def test_max_iterations_reports_not_converged(self):
        res, _ = self._solve(tol=1e-14, max_iterations=1)
        assert not res.converged
        assert res.iterations == 1

    def test_indefinite_bails_out(self):
        A = np.diag([1.0, -1.0])
        b = np.array([1.0, 1.0])
        res = cg_solve(lambda v: A @ v, b, lambda u, v: float(u @ v), max_iterations=50)
        assert not res.converged


class TestCGOnSEM:
    def test_dirichlet_poisson_parallel_matches_serial(self):
        shape, order = (3, 2, 2), 4

        def body(comm):
            mesh = BoxMesh(shape, order=order, rank=comm.rank, size=comm.size)
            ops = SEMOperators(mesh, comm)
            x, y, z = mesh.coords()
            ue = np.sin(np.pi * x) * np.sin(np.pi * y) * np.sin(np.pi * z)
            mask = ~mesh.boundary_union(list(BoundaryTag))
            b = ops.assemble(ops.mass_apply(3 * np.pi**2 * ue)) * mask
            diag = ops.stiffness_diagonal()
            pre = np.where(diag > 0, 1.0 / np.where(diag > 0, diag, 1), 0) * mask
            res = cg_solve(
                lambda u: ops.assemble(ops.stiffness_apply(u)) * mask,
                b, ops.dot, precond=pre, tol=1e-10, max_iterations=500,
            )
            err = ops.norm(res.x - ue * mask) / ops.norm(ue)
            return res.iterations, err

        serial = run_spmd(1, body)[0]
        par = run_spmd(4, body)[0]
        assert serial[0] == par[0]          # identical iteration counts
        assert par[1] < 1e-4

    def test_periodic_neumann_poisson(self):
        """The all-Neumann problem converges with nullspace projection."""
        L = 2 * np.pi
        mesh = BoxMesh((2, 2, 2), ((0, 0, 0), (L, L, L)), order=6,
                       periodic=(True, True, True))
        ops = SEMOperators(mesh, SerialCommunicator())
        x, _, _ = mesh.coords()
        pe = np.sin(x)
        b = ops.assemble(ops.mass_apply(np.sin(x)))
        diag = ops.stiffness_diagonal()
        res = cg_solve(
            lambda u: ops.assemble(ops.stiffness_apply(u)),
            b, ops.dot, precond=1.0 / diag, tol=1e-10, max_iterations=500,
            project_nullspace=ops.project_out_nullspace,
        )
        assert res.converged
        err = ops.norm(ops.project_out_nullspace(res.x - pe)) / ops.norm(pe)
        assert err < 1e-4  # discretization error of sin(x) at order 6, E=2

    def test_cg_iterations_are_allocation_free(self):
        """Warmed-up solves borrow every scratch buffer from the arena.

        The CG loop itself must not allocate per iteration: after one
        warm-up solve has populated the arena pools and the operator
        plan cache, a second solve adds zero arena misses (every borrow
        is a pool hit) and returns every buffer (outstanding == 0).
        """
        from repro.perf import get_arena

        ops = SEMOperators(BoxMesh((2, 2, 2), order=5), SerialCommunicator())
        rng = np.random.default_rng(0)
        b = ops.assemble(rng.normal(size=ops.mesh.field_shape()))
        diag = ops.stiffness_diagonal(1.0, 1.0)

        def solve():
            return cg_solve(
                lambda u: ops.assemble(ops.helmholtz_apply(u, 1.0, 1.0)),
                b, ops.dot, precond=1.0 / diag, tol=1e-12, max_iterations=40,
            )

        solve()  # warm the arena pools and plan cache
        arena = get_arena()
        misses_before = arena.misses
        res = solve()
        assert res.iterations > 5  # the loop actually ran
        assert arena.misses == misses_before  # zero fresh allocations
        assert arena.outstanding == 0  # every borrow released


class TestResampling:
    def test_reproduces_polynomials_exactly(self):
        mesh = BoxMesh((2, 2, 2), order=4)
        x, y, z = mesh.coords()
        f = x**3 + 2 * y**2 * z
        res = resample_field(mesh, f, samples=5)
        # compare against the polynomial evaluated at the sample points
        blocks = local_blocks(mesh, f, samples=5)
        sp = grid_spacing(mesh, 5)
        for (ox, oy, oz), block in blocks:
            for k in range(5):
                for j in range(5):
                    for i in range(5):
                        px = (ox + i + 0.5) * sp[0]
                        py = (oy + j + 0.5) * sp[1]
                        pz = (oz + k + 0.5) * sp[2]
                        assert block[k, j, i] == pytest.approx(
                            px**3 + 2 * py**2 * pz, abs=1e-10
                        )

    def test_grid_dims(self):
        mesh = BoxMesh((2, 3, 4), order=3)
        assert grid_dims(mesh, 2) == (4, 6, 8)

    def test_assembled_grid_covers_domain(self):
        mesh = BoxMesh((2, 2, 1), order=2)
        f = np.ones(mesh.field_shape())
        grid = assemble_global_grid(mesh, local_blocks(mesh, f, 3), 3)
        assert grid.shape == (3, 6, 6)
        np.testing.assert_array_equal(grid, 1.0)

    def test_partitioned_blocks_fill_disjoint_regions(self):
        shape, order, s = (2, 2, 1), 2, 2

        def body(comm):
            mesh = BoxMesh(shape, order=order, rank=comm.rank, size=comm.size)
            f = np.full(mesh.field_shape(), float(comm.rank + 1))
            return local_blocks(mesh, f, s)

        results = run_spmd(2, body)
        full_mesh = BoxMesh(shape, order=order)
        grid = assemble_global_grid(full_mesh, results[0] + results[1], s, fill=0.0)
        assert (grid == 0).sum() == 0  # fully covered
        rounded = set(np.round(np.unique(grid), 9))
        assert rounded == {1.0, 2.0}

    def test_shape_mismatch_raises(self):
        mesh = BoxMesh((2, 1, 1), order=2)
        with pytest.raises(ValueError):
            resample_field(mesh, np.zeros((1, 3, 3, 3)), 2)
