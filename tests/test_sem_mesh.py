"""Tests for BoxMesh: coordinates, numbering, boundaries, partitioning."""

import numpy as np
import pytest

from repro.sem.mesh import BoundaryTag, BoxExtent, BoxMesh


class TestConstruction:
    def test_counts(self):
        mesh = BoxMesh((2, 3, 4), order=3)
        assert mesh.num_global_elements == 24
        assert mesh.num_elements == 24
        assert mesh.nq == 4
        assert mesh.field_shape() == (24, 4, 4, 4)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            BoxMesh((0, 1, 1))

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            BoxMesh((2, 2, 2), order=0)

    def test_degenerate_extent(self):
        with pytest.raises(ValueError):
            BoxExtent((0, 0, 0), (1, 0, 1))

    def test_periodic_single_element_raises(self):
        with pytest.raises(ValueError):
            BoxMesh((1, 2, 2), periodic=(True, False, False))


class TestCoordinates:
    def test_corner_coordinates(self):
        mesh = BoxMesh((2, 2, 2), ((0, 0, 0), (2.0, 4.0, 6.0)), order=2)
        assert mesh.x.min() == 0.0 and mesh.x.max() == 2.0
        assert mesh.y.min() == 0.0 and mesh.y.max() == 4.0
        assert mesh.z.min() == 0.0 and mesh.z.max() == 6.0

    def test_axis_convention(self):
        """x varies along the last field axis, z along the first."""
        mesh = BoxMesh((1, 1, 1), order=3)
        assert np.all(np.diff(mesh.x[0, 0, 0, :]) > 0)
        assert np.all(np.diff(mesh.y[0, 0, :, 0]) > 0)
        assert np.all(np.diff(mesh.z[0, :, 0, 0]) > 0)
        assert np.allclose(mesh.x[0, :, :, 0], mesh.x[0, 0, 0, 0])

    def test_gll_spacing_nonuniform(self):
        mesh = BoxMesh((1, 1, 1), order=4)
        dx = np.diff(mesh.x[0, 0, 0, :])
        assert dx[0] < dx[len(dx) // 2]

    def test_elements_tile_without_gaps(self):
        mesh = BoxMesh((3, 1, 1), ((0, 0, 0), (3, 1, 1)), order=2)
        # right edge of element e == left edge of element e+1
        assert mesh.x[0, 0, 0, -1] == pytest.approx(mesh.x[1, 0, 0, 0])
        assert mesh.x[1, 0, 0, -1] == pytest.approx(mesh.x[2, 0, 0, 0])


class TestGlobalNumbering:
    def test_interface_nodes_share_ids(self):
        mesh = BoxMesh((2, 1, 1), order=2)
        # face i = last of element 0 == face i = first of element 1
        np.testing.assert_array_equal(
            mesh.global_ids[0, :, :, -1], mesh.global_ids[1, :, :, 0]
        )

    def test_num_global_nodes(self):
        mesh = BoxMesh((2, 2, 2), order=2)
        assert mesh.num_global_nodes == 5**3

    def test_ids_in_range_and_cover(self):
        mesh = BoxMesh((2, 2, 1), order=3)
        ids = mesh.global_ids
        assert ids.min() == 0
        assert len(np.unique(ids)) == mesh.num_global_nodes

    def test_periodic_wrap(self):
        mesh = BoxMesh((2, 2, 2), order=2, periodic=(True, False, False))
        # with periodicity in x, xmax face of last element = xmin of first
        np.testing.assert_array_equal(
            mesh.global_ids[1, :, :, -1], mesh.global_ids[0, :, :, 0]
        )

    def test_periodic_node_count(self):
        full = BoxMesh((2, 2, 2), order=2)
        per = BoxMesh((2, 2, 2), order=2, periodic=(True, True, True))
        assert per.num_global_nodes == 4**3
        assert full.num_global_nodes == 5**3

    def test_ids_consistent_with_coordinates(self):
        """Nodes sharing an id must share physical coordinates."""
        mesh = BoxMesh((2, 2, 2), order=3)
        ids = mesh.global_ids.ravel()
        coords = np.stack([mesh.x.ravel(), mesh.y.ravel(), mesh.z.ravel()], axis=1)
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        sorted_coords = coords[order]
        same = sorted_ids[1:] == sorted_ids[:-1]
        np.testing.assert_allclose(
            sorted_coords[1:][same], sorted_coords[:-1][same], atol=1e-12
        )


class TestBoundaries:
    def test_face_node_counts(self):
        mesh = BoxMesh((2, 2, 2), order=3)
        nq = mesh.nq
        for tag in BoundaryTag:
            mask = mesh.boundary_nodes(tag)
            # 4 elements on each face, nq^2 nodes each
            assert mask.sum() == 4 * nq * nq

    def test_boundary_nodes_lie_on_face(self):
        mesh = BoxMesh((2, 3, 2), ((0, 0, 0), (1, 1, 1)), order=2)
        np.testing.assert_allclose(mesh.x[mesh.boundary_nodes(BoundaryTag.XMIN)], 0.0)
        np.testing.assert_allclose(mesh.x[mesh.boundary_nodes(BoundaryTag.XMAX)], 1.0)
        np.testing.assert_allclose(mesh.z[mesh.boundary_nodes(BoundaryTag.ZMAX)], 1.0)

    def test_periodic_direction_has_no_boundary(self):
        mesh = BoxMesh((2, 2, 2), order=2, periodic=(True, False, False))
        assert mesh.boundary_nodes(BoundaryTag.XMIN).sum() == 0
        assert mesh.boundary_nodes(BoundaryTag.YMIN).sum() > 0

    def test_union(self):
        mesh = BoxMesh((2, 2, 2), order=2)
        union = mesh.boundary_union([BoundaryTag.XMIN, BoundaryTag.XMAX])
        both = mesh.boundary_nodes(BoundaryTag.XMIN) | mesh.boundary_nodes(
            BoundaryTag.XMAX
        )
        np.testing.assert_array_equal(union, both)

    def test_all_faces_cover_shell(self):
        mesh = BoxMesh((2, 2, 2), order=3)
        shell = mesh.boundary_union(list(BoundaryTag))
        x, y, z = mesh.coords()
        on_shell = (
            np.isclose(x, 0) | np.isclose(x, 1)
            | np.isclose(y, 0) | np.isclose(y, 1)
            | np.isclose(z, 0) | np.isclose(z, 1)
        )
        np.testing.assert_array_equal(shell, on_shell)


class TestPartitioning:
    def test_slabs_tile_elements(self):
        all_ids = []
        for rank in range(3):
            mesh = BoxMesh((2, 2, 2), order=2, rank=rank, size=3)
            all_ids.extend(mesh.elem_ids.tolist())
        assert sorted(all_ids) == list(range(8))

    def test_local_coordinates_match_global_mesh(self):
        full = BoxMesh((2, 2, 2), order=2)
        part = BoxMesh((2, 2, 2), order=2, rank=1, size=2)
        lo = part.elem_ids[0]
        np.testing.assert_allclose(part.x[0], full.x[lo])
        np.testing.assert_allclose(part.global_ids[0], full.global_ids[lo])

    def test_zero_field(self):
        mesh = BoxMesh((2, 1, 1), order=2, rank=0, size=2)
        assert mesh.zero_field().shape == mesh.field_shape()
