"""Tests for geometric factors, gather-scatter, and SEM operators."""

import numpy as np
import pytest

from repro.parallel import SerialCommunicator, run_spmd
from repro.sem import BoxMesh, GatherScatter, GeometricFactors, SEMOperators


def make_ops(shape=(2, 2, 2), order=4, extent=((0, 0, 0), (1, 1, 1)), **kw):
    comm = SerialCommunicator()
    mesh = BoxMesh(shape, extent, order=order, **kw)
    return SEMOperators(mesh, comm)


class TestGeometricFactors:
    def test_mass_sums_to_volume(self):
        mesh = BoxMesh((2, 3, 1), ((0, 0, 0), (2.0, 3.0, 0.5)), order=4)
        geom = GeometricFactors(mesh)
        assert geom.mass.sum() == pytest.approx(3.0)
        assert geom.total_volume_local == pytest.approx(3.0)

    def test_metric_terms(self):
        mesh = BoxMesh((2, 1, 1), ((0, 0, 0), (1.0, 2.0, 4.0)), order=2)
        geom = GeometricFactors(mesh)
        # element sizes: 0.5, 2, 4 -> rx = 2/h
        assert geom.rx.flat[0] == pytest.approx(4.0)
        assert geom.sy.flat[0] == pytest.approx(1.0)
        assert geom.tz.flat[0] == pytest.approx(0.5)

    def test_jacobian_constant(self):
        mesh = BoxMesh((2, 2, 2), order=3)
        geom = GeometricFactors(mesh)
        assert np.allclose(geom.jacobian, geom.jacobian.flat[0])


class TestGatherScatter:
    def test_sums_shared_nodes(self):
        mesh = BoxMesh((2, 1, 1), order=2)
        gs = GatherScatter(mesh.global_ids, SerialCommunicator())
        ones = np.ones(mesh.field_shape())
        out = gs(ones)
        # interface nodes have multiplicity 2
        np.testing.assert_array_equal(out[0, :, :, -1], 2.0)
        np.testing.assert_array_equal(out[0, :, :, 0], 1.0)

    def test_multiplicity(self):
        mesh = BoxMesh((2, 2, 1), order=2)
        gs = GatherScatter(mesh.global_ids, SerialCommunicator())
        # the shared edge between 4 elements would have multiplicity 4
        assert gs.multiplicity.max() == 4.0
        assert gs.multiplicity.min() == 1.0

    def test_average_makes_single_valued(self, rng):
        mesh = BoxMesh((2, 2, 2), order=3)
        gs = GatherScatter(mesh.global_ids, SerialCommunicator())
        f = rng.normal(size=mesh.field_shape())
        avg = gs.average(f)
        # after averaging, another gs-average is idempotent
        np.testing.assert_allclose(gs.average(avg), avg, atol=1e-13)

    def test_shape_mismatch_raises(self):
        mesh = BoxMesh((2, 1, 1), order=2)
        gs = GatherScatter(mesh.global_ids, SerialCommunicator())
        with pytest.raises(ValueError):
            gs(np.zeros((1, 3, 3, 3)))

    def test_parallel_matches_serial(self, rng):
        """gs on 3 ranks must reproduce the single-rank result."""
        shape, order = (2, 2, 3), 3
        full_mesh = BoxMesh(shape, order=order)
        full = rng.normal(size=full_mesh.field_shape())
        gs_serial = GatherScatter(full_mesh.global_ids, SerialCommunicator())
        expected = gs_serial(full)

        def body(comm):
            mesh = BoxMesh(shape, order=order, rank=comm.rank, size=comm.size)
            gs = GatherScatter(mesh.global_ids, comm)
            local = full[mesh.elem_ids[0] : mesh.elem_ids[-1] + 1]
            return gs(local)

        results = run_spmd(3, body)
        stacked = np.concatenate(results, axis=0)
        np.testing.assert_allclose(stacked, expected, atol=1e-12)

    def test_assembled_norm_counts_nodes_once(self):
        mesh = BoxMesh((2, 1, 1), order=2)
        gs = GatherScatter(mesh.global_ids, SerialCommunicator())
        ones = np.ones(mesh.field_shape())
        assert gs.assembled_norm_sq(ones) == pytest.approx(mesh.num_global_nodes)


class TestOperators:
    def test_volume(self):
        ops = make_ops(extent=((0, 0, 0), (2.0, 1.0, 3.0)))
        assert ops.volume == pytest.approx(6.0)

    def test_integrate_polynomial(self):
        ops = make_ops(order=5)
        x, y, z = ops.mesh.coords()
        # int over unit cube of x^2 y = 1/3 * 1/2 = 1/6
        assert ops.integrate(x**2 * y) == pytest.approx(1.0 / 6.0)

    def test_mean_and_projection(self):
        ops = make_ops()
        x, _, _ = ops.mesh.coords()
        f = x + 3.0
        assert ops.mean(f) == pytest.approx(3.5)
        g = ops.project_out_mean(f)
        assert ops.mean(g) == pytest.approx(0.0, abs=1e-12)

    def test_project_out_nullspace_kills_constants(self):
        ops = make_ops()
        ones = np.ones(ops.mesh.field_shape())
        out = ops.project_out_nullspace(5.0 * ones)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_nullspace_projection_idempotent(self, rng):
        ops = make_ops()
        f = rng.normal(size=ops.mesh.field_shape())
        p1 = ops.project_out_nullspace(f)
        np.testing.assert_allclose(ops.project_out_nullspace(p1), p1, atol=1e-12)

    def test_grad_of_linear(self):
        ops = make_ops(extent=((0, 0, 0), (2.0, 1.0, 1.0)))
        x, y, z = ops.mesh.coords()
        fx, fy, fz = ops.grad(2 * x + 3 * y - z)
        np.testing.assert_allclose(fx, 2.0, atol=1e-10)
        np.testing.assert_allclose(fy, 3.0, atol=1e-10)
        np.testing.assert_allclose(fz, -1.0, atol=1e-10)

    def test_div_of_linear_field(self):
        ops = make_ops()
        x, y, z = ops.mesh.coords()
        div = ops.div(x, 2 * y, -3 * z)
        np.testing.assert_allclose(div, 0.0, atol=1e-10)

    def test_div_grad_consistent_with_stiffness(self, rng):
        """<A f, g> == integral grad f . grad g (weak form identity)."""
        ops = make_ops(order=5)
        x, y, z = ops.mesh.coords()
        f = np.sin(np.pi * x) * y
        g = np.cos(np.pi * y) * z * x
        fx, fy, fz = ops.grad(f)
        gx, gy, gz = ops.grad(g)
        weak = (f * ops.gs.inv_multiplicity * ops.assemble(ops.stiffness_apply(g))).sum()
        strong = ops.integrate(fx * gx + fy * gy + fz * gz)
        assert weak == pytest.approx(strong, rel=1e-10)

    def test_stiffness_annihilates_constants(self):
        ops = make_ops()
        out = ops.stiffness_apply(np.ones(ops.mesh.field_shape()))
        np.testing.assert_allclose(out, 0.0, atol=1e-10)

    def test_helmholtz_scalar_h0(self, rng):
        ops = make_ops(order=3)
        f = rng.normal(size=ops.mesh.field_shape())
        out = ops.helmholtz_apply(f, 2.0, 5.0)
        expected = 2.0 * ops.stiffness_apply(f) + 5.0 * ops.mass_apply(f)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_helmholtz_field_h0(self, rng):
        ops = make_ops(order=3)
        f = rng.normal(size=ops.mesh.field_shape())
        chi = rng.uniform(0, 10, size=ops.mesh.field_shape())
        out = ops.helmholtz_apply(f, 1.0, chi)
        expected = ops.stiffness_apply(f) + chi * ops.mass_apply(f)
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_stiffness_diagonal_matches_operator(self):
        """diag entries equal e_i^T A e_i on the assembled operator."""
        ops = make_ops(shape=(2, 1, 1), order=2)
        diag = ops.stiffness_diagonal()
        ids = ops.mesh.global_ids.ravel()
        uniq, inv = np.unique(ids, return_inverse=True)
        shape = ops.mesh.field_shape()
        for gid_idx in [0, len(uniq) // 2, len(uniq) - 1]:
            e = np.zeros(len(uniq))
            e[gid_idx] = 1.0
            ef = e[inv].reshape(shape)
            Ae = ops.assemble(ops.stiffness_apply(ef))
            expected = (Ae * ef * ops.gs.inv_multiplicity).sum()
            actual = diag.ravel()[np.nonzero(ef.ravel())[0][0]]
            assert actual == pytest.approx(expected, rel=1e-10)

    def test_convect_linear(self):
        ops = make_ops()
        x, y, z = ops.mesh.coords()
        ones = np.ones_like(x)
        # (u.grad) f with u=(1,0,0), f=x -> 1
        out = ops.convect(x, ones, 0 * ones, 0 * ones)
        np.testing.assert_allclose(out, 1.0, atol=1e-10)

    def test_dot_symmetric_positive(self, rng):
        ops = make_ops(order=3)
        f = rng.normal(size=ops.mesh.field_shape())
        g = rng.normal(size=ops.mesh.field_shape())
        assert ops.dot(f, g) == pytest.approx(ops.dot(g, f))
        assert ops.dot(f, f) > 0

    def test_norm_zero(self):
        ops = make_ops(order=2)
        assert ops.norm(np.zeros(ops.mesh.field_shape())) == 0.0

    def test_parallel_integrate_matches_serial(self):
        shape, order = (2, 2, 2), 3

        def body(comm):
            mesh = BoxMesh(shape, order=order, rank=comm.rank, size=comm.size)
            ops = SEMOperators(mesh, comm)
            x, y, z = mesh.coords()
            return ops.integrate(x * y + z)

        serial = run_spmd(1, body)[0]
        parallel = run_spmd(4, body)
        assert all(p == pytest.approx(serial) for p in parallel)
