"""Tests for GLL quadrature and spectral differentiation."""

import numpy as np
import pytest

from repro.sem.quadrature import (
    derivative_matrix,
    gll_nodes_weights,
    lagrange_interpolation_matrix,
    uniform_nodes,
)


class TestNodesWeights:
    def test_order_one(self):
        x, w = gll_nodes_weights(1)
        np.testing.assert_allclose(x, [-1, 1])
        np.testing.assert_allclose(w, [1, 1])

    def test_order_two_known_values(self):
        x, w = gll_nodes_weights(2)
        np.testing.assert_allclose(x, [-1, 0, 1])
        np.testing.assert_allclose(w, [1 / 3, 4 / 3, 1 / 3])

    def test_order_four_known_interior(self):
        x, _ = gll_nodes_weights(4)
        np.testing.assert_allclose(x[1], -np.sqrt(3 / 7), atol=1e-13)

    @pytest.mark.parametrize("order", range(1, 12))
    def test_weights_sum_to_two(self, order):
        _, w = gll_nodes_weights(order)
        assert w.sum() == pytest.approx(2.0)

    @pytest.mark.parametrize("order", range(2, 10))
    def test_nodes_sorted_symmetric(self, order):
        x, w = gll_nodes_weights(order)
        assert np.all(np.diff(x) > 0)
        np.testing.assert_allclose(x, -x[::-1], atol=1e-13)
        np.testing.assert_allclose(w, w[::-1], atol=1e-13)

    @pytest.mark.parametrize("order", [3, 5, 8])
    def test_quadrature_exact_to_2n_minus_1(self, order):
        """GLL integrates polynomials up to degree 2N-1 exactly."""
        x, w = gll_nodes_weights(order)
        for deg in range(2 * order):
            exact = 0.0 if deg % 2 else 2.0 / (deg + 1)
            assert w @ x**deg == pytest.approx(exact, abs=1e-12), deg

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            gll_nodes_weights(0)


class TestDerivativeMatrix:
    @pytest.mark.parametrize("order", [2, 4, 7])
    def test_exact_on_polynomials(self, order):
        x, _ = gll_nodes_weights(order)
        D = derivative_matrix(order)
        for deg in range(order + 1):
            f = x**deg
            df = deg * x ** max(deg - 1, 0) if deg else np.zeros_like(x)
            np.testing.assert_allclose(D @ f, df, atol=1e-10)

    def test_constant_maps_to_zero(self):
        D = derivative_matrix(6)
        np.testing.assert_allclose(D @ np.ones(7), 0.0, atol=1e-12)

    def test_spectral_accuracy_on_sin(self):
        order = 12
        x, _ = gll_nodes_weights(order)
        D = derivative_matrix(order)
        np.testing.assert_allclose(D @ np.sin(x), np.cos(x), atol=1e-9)


class TestInterpolation:
    def test_exact_at_nodes(self):
        x, _ = gll_nodes_weights(5)
        J = lagrange_interpolation_matrix(x, x)
        np.testing.assert_allclose(J, np.eye(6), atol=1e-12)

    @pytest.mark.parametrize("order", [3, 6])
    def test_reproduces_polynomials(self, order):
        x, _ = gll_nodes_weights(order)
        targets = np.linspace(-1, 1, 17)
        J = lagrange_interpolation_matrix(x, targets)
        for deg in range(order + 1):
            np.testing.assert_allclose(J @ x**deg, targets**deg, atol=1e-10)

    def test_partition_of_unity(self):
        x, _ = gll_nodes_weights(7)
        J = lagrange_interpolation_matrix(x, np.linspace(-1, 1, 11))
        np.testing.assert_allclose(J.sum(axis=1), 1.0, atol=1e-12)

    def test_scalar_target(self):
        x, _ = gll_nodes_weights(3)
        J = lagrange_interpolation_matrix(x, 0.3)
        assert J.shape == (1, 4)


class TestUniformNodes:
    def test_with_ends(self):
        np.testing.assert_allclose(uniform_nodes(3), [-1, 0, 1])

    def test_without_ends_cell_centers(self):
        np.testing.assert_allclose(uniform_nodes(2, include_ends=False), [-0.5, 0.5])

    def test_single_point(self):
        np.testing.assert_allclose(uniform_nodes(1), [0.0])
        np.testing.assert_allclose(uniform_nodes(1, include_ends=False), [0.0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_nodes(0)
