"""Tests for tensor-product operator application."""

import numpy as np
import pytest

from repro.sem.quadrature import derivative_matrix, gll_nodes_weights
from repro.sem.tensor import (
    apply_1d_x,
    apply_1d_y,
    apply_1d_z,
    apply_3d,
    flops_local_grad,
    local_grad,
    local_grad_transpose,
)


@pytest.fixture
def field(rng):
    return rng.normal(size=(3, 5, 5, 5))


class TestApply1D:
    def test_identity(self, field):
        I = np.eye(5)
        for op in (apply_1d_x, apply_1d_y, apply_1d_z):
            np.testing.assert_allclose(op(I, field), field)

    def test_axis_independence(self, field, rng):
        """Applying along x must not mix y/z indices."""
        A = rng.normal(size=(5, 5))
        out = apply_1d_x(A, field)
        np.testing.assert_allclose(out[0, 1, 2], A @ field[0, 1, 2])

    def test_y_axis(self, field, rng):
        A = rng.normal(size=(5, 5))
        out = apply_1d_y(A, field)
        np.testing.assert_allclose(out[1, 3, :, 2], A @ field[1, 3, :, 2])

    def test_z_axis(self, field, rng):
        A = rng.normal(size=(5, 5))
        out = apply_1d_z(A, field)
        np.testing.assert_allclose(out[2, :, 0, 4], A @ field[2, :, 0, 4])

    def test_rectangular_operator(self, field, rng):
        A = rng.normal(size=(3, 5))
        assert apply_1d_x(A, field).shape == (3, 5, 5, 3)
        assert apply_1d_y(A, field).shape == (3, 5, 3, 5)
        assert apply_1d_z(A, field).shape == (3, 3, 5, 5)


class TestApply3D:
    def test_matches_kron(self, rng):
        """Tensor apply equals the explicit Kronecker-product matrix."""
        n = 3
        f = rng.normal(size=(1, n, n, n))
        Ax, Ay, Az = (rng.normal(size=(n, n)) for _ in range(3))
        out = apply_3d(Ax, Ay, Az, f)
        K = np.kron(Az, np.kron(Ay, Ax))
        np.testing.assert_allclose(out.ravel(), K @ f.ravel())


class TestLocalGrad:
    def test_gradient_of_linear_fields(self):
        order = 4
        x1, _ = gll_nodes_weights(order)
        D = derivative_matrix(order)
        X, Y, Z = np.meshgrid(x1, x1, x1, indexing="ij")
        # field axes are [e, k(z), j(y), i(x)]
        f = (2 * X + 3 * Y - Z).transpose(2, 1, 0)[None]
        fr, fs, ft = local_grad(D, f)
        np.testing.assert_allclose(fr, 2.0, atol=1e-11)
        np.testing.assert_allclose(fs, 3.0, atol=1e-11)
        np.testing.assert_allclose(ft, -1.0, atol=1e-11)

    def test_transpose_is_adjoint(self, rng):
        """<grad f, g> == <f, grad^T g> for the stacked operator."""
        order = 3
        D = derivative_matrix(order)
        f = rng.normal(size=(2, 4, 4, 4))
        gr, gs, gt = (rng.normal(size=(2, 4, 4, 4)) for _ in range(3))
        fr, fs, ft = local_grad(D, f)
        lhs = (fr * gr + fs * gs + ft * gt).sum()
        rhs = (f * local_grad_transpose(D, gr, gs, gt)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-12)


class TestFlops:
    def test_formula(self):
        assert flops_local_grad(10, 6) == 10 * 3 * 2 * 6**4
