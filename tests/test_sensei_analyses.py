"""Tests for the stock SENSEI analyses against a live solver adaptor."""

import numpy as np
import pytest

from repro.insitu import NekDataAdaptor
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case
from repro.parallel import SerialCommunicator, run_spmd
from repro.sensei.analyses import (
    AutocorrelationAnalysis,
    HistogramAnalysis,
    SliceExtract,
    VTKPosthocIO,
)


@pytest.fixture
def adaptor(tiny_solver):
    tiny_solver.run(2)
    a = NekDataAdaptor(tiny_solver)
    a.set_data_time_step(2)
    a.set_data_time(tiny_solver.time)
    return a


class TestHistogram:
    def test_counts_every_gridpoint(self, comm, adaptor, tiny_solver):
        h = HistogramAnalysis(comm, array_name="pressure", bins=8)
        assert h.execute(adaptor)
        result = h.results[-1]
        assert result.total == tiny_solver.local_gridpoints()
        assert len(result.edges) == 9

    def test_edges_cover_data(self, comm, adaptor, tiny_solver):
        h = HistogramAnalysis(comm, array_name="velocity_x", bins=4)
        h.execute(adaptor)
        r = h.results[-1]
        assert r.edges[0] <= tiny_solver.u.min()
        assert r.edges[-1] >= tiny_solver.u.max()

    def test_writes_file_on_root(self, comm, adaptor, tmp_path):
        h = HistogramAnalysis(comm, array_name="pressure", bins=4, output_dir=tmp_path)
        h.execute(adaptor)
        out = tmp_path / "histogram_pressure.txt"
        assert out.exists()
        assert "step 2" in out.read_text()

    def test_constant_field_degenerate_range(self, comm, adaptor, tiny_solver):
        tiny_solver.p[:] = 7.0
        h = HistogramAnalysis(comm, array_name="pressure", bins=4)
        adaptor.release_data()
        h.execute(adaptor)
        assert h.results[-1].total == tiny_solver.local_gridpoints()

    def test_parallel_matches_serial(self):
        def body(comm):
            case = lid_cavity_case(elements=2, order=3, dt=5e-3)
            s = NekRSSolver(case, comm)
            s.run(2)
            a = NekDataAdaptor(s)
            a.set_data_time_step(2)
            h = HistogramAnalysis(comm, array_name="pressure", bins=8)
            h.execute(a)
            return h.results[-1].counts

        serial = run_spmd(1, body)[0]
        par = run_spmd(2, body)[0]
        np.testing.assert_array_equal(serial, par)

    def test_invalid_bins(self, comm):
        with pytest.raises(ValueError):
            HistogramAnalysis(comm, bins=0)

    def test_unknown_array_raises(self, comm, adaptor):
        h = HistogramAnalysis(comm, array_name="vorticity_q")
        with pytest.raises(KeyError):
            h.execute(adaptor)


class TestAutocorrelation:
    def test_lag_coeffs_for_constant_signal_nan(self, comm, tiny_solver):
        a = AutocorrelationAnalysis(comm, array_name="pressure", window=5)
        adaptor = NekDataAdaptor(tiny_solver)
        for step in range(3):
            adaptor.set_data_time_step(step)
            a.execute(adaptor)
            adaptor.release_data()
        # constant (zero) signal: zero variance -> NaN coefficients
        assert np.isnan(a.results[-1].coefficients).all()

    def test_perfectly_correlated_signal(self, comm, tiny_solver):
        a = AutocorrelationAnalysis(comm, array_name="pressure", window=8, k_max=2)
        adaptor = NekDataAdaptor(tiny_solver)
        for step in range(8):
            tiny_solver.p[:] = float(step)  # linear ramp in time
            adaptor.release_data()
            adaptor.set_data_time_step(step)
            a.execute(adaptor)
        c = a.results[-1].coefficients
        assert c[0] > 0.5  # strong lag-1 correlation of a ramp

    def test_window_validation(self, comm):
        with pytest.raises(ValueError):
            AutocorrelationAnalysis(comm, window=1)
        with pytest.raises(ValueError):
            AutocorrelationAnalysis(comm, window=5, k_max=5)

    def test_mean_tracks_field(self, comm, tiny_solver):
        tiny_solver.p[:] = 3.5
        a = AutocorrelationAnalysis(comm, array_name="pressure")
        adaptor = NekDataAdaptor(tiny_solver)
        a.execute(adaptor)
        assert a.results[-1].mean == pytest.approx(3.5)


class TestVTKPosthocIO:
    def test_writes_vtu_and_vtm(self, comm, adaptor, tmp_path):
        io = VTKPosthocIO(comm, tmp_path, arrays=("pressure", "velocity_x"))
        assert io.execute(adaptor)
        vtus = list(tmp_path.glob("*.vtu"))
        vtms = list(tmp_path.glob("*.vtm"))
        assert len(vtus) == 1
        assert len(vtms) == 1
        assert io.files_written == 2
        assert io.bytes_written == sum(p.stat().st_size for p in vtus + vtms)

    def test_bytes_scale_with_arrays(self, comm, adaptor, tmp_path):
        one = VTKPosthocIO(comm, tmp_path / "a", arrays=("pressure",))
        four = VTKPosthocIO(
            comm, tmp_path / "b",
            arrays=("pressure", "velocity_x", "velocity_y", "velocity_z"),
        )
        one.execute(adaptor)
        four.execute(adaptor)
        assert four.bytes_written > one.bytes_written

    def test_multiple_dumps_accumulate(self, comm, adaptor, tmp_path):
        io = VTKPosthocIO(comm, tmp_path, arrays=("pressure",))
        io.execute(adaptor)
        adaptor.set_data_time_step(3)
        io.execute(adaptor)
        assert io.dumps == 2
        assert len(list(tmp_path.glob("*.vtu"))) == 2

    def test_parallel_one_file_per_rank(self, tmp_path):
        def body(comm):
            case = lid_cavity_case(elements=2, order=3, dt=5e-3)
            s = NekRSSolver(case, comm)
            s.run(1)
            a = NekDataAdaptor(s)
            a.set_data_time_step(1)
            io = VTKPosthocIO(comm, tmp_path, arrays=("pressure",))
            io.execute(a)
            return io.total_bytes_global()

        totals = run_spmd(2, body)
        assert len(list(tmp_path.glob("*.vtu"))) == 2
        vtm = list(tmp_path.glob("*.vtm"))
        assert len(vtm) == 1
        assert b'index="1"' in vtm[0].read_bytes()
        assert totals[0] == totals[1] > 0


class TestSliceExtract:
    def test_writes_vti_slice(self, comm, adaptor, tmp_path):
        s = SliceExtract(comm, array_name="pressure", axis="z", output_dir=tmp_path)
        assert s.execute(adaptor)
        files = list(tmp_path.glob("slice_pressure_z_*.vti"))
        assert len(files) == 1
        assert s.bytes_written == files[0].stat().st_size

    def test_bad_axis(self, comm):
        with pytest.raises(ValueError):
            SliceExtract(comm, axis="w")

    def test_explicit_position(self, comm, adaptor, tmp_path):
        s = SliceExtract(
            comm, array_name="velocity_x", axis="y", position=0.5, output_dir=tmp_path
        )
        s.execute(adaptor)
        assert s.slices_written == 1
