"""Tests for SENSEI metadata, XML configuration, and dispatch."""

import pytest

from repro.parallel import SerialCommunicator
from repro.sensei import ConfigurableAnalysis, MeshMetadata, parse_analysis_xml
from repro.sensei.analysis_adaptor import AnalysisAdaptor
from repro.sensei.configurable import ConfigError
from repro.sensei.metadata import ArrayMetadata

PAPER_LISTING_1 = """
<sensei>
 <analysis type="catalyst" pipeline="pythonscript" filename="analysis.py"
  frequency="100" />
</sensei>
"""


class TestMetadata:
    def test_array_lookup(self):
        md = MeshMetadata(
            name="mesh", num_blocks=4, local_block_ids=(1,),
            num_points_local=10, num_cells_local=2,
            arrays=(ArrayMetadata("pressure", "point"),),
        )
        assert md.array("pressure").components == 1
        assert md.array_names == ("pressure",)
        with pytest.raises(KeyError):
            md.array("nope")

    def test_bad_association(self):
        with pytest.raises(ValueError):
            ArrayMetadata("x", "face")

    def test_bad_components(self):
        with pytest.raises(ValueError):
            ArrayMetadata("x", "point", 0)


class TestParseXML:
    def test_paper_listing_1_parses(self):
        specs = parse_analysis_xml(PAPER_LISTING_1)
        assert len(specs) == 1
        assert specs[0].type == "catalyst"
        assert specs[0].frequency == 100
        assert specs[0].attributes["pipeline"] == "pythonscript"
        assert specs[0].attributes["filename"] == "analysis.py"

    def test_from_file(self, tmp_path):
        path = tmp_path / "cfg.xml"
        path.write_text(PAPER_LISTING_1)
        assert parse_analysis_xml(str(path))[0].type == "catalyst"

    def test_default_frequency(self):
        specs = parse_analysis_xml('<sensei><analysis type="histogram"/></sensei>')
        assert specs[0].frequency == 1

    def test_enabled_flag(self):
        specs = parse_analysis_xml(
            '<sensei><analysis type="histogram" enabled="0"/></sensei>'
        )
        assert not specs[0].enabled

    def test_missing_type_raises(self):
        with pytest.raises(ConfigError):
            parse_analysis_xml('<sensei><analysis frequency="5"/></sensei>')

    def test_bad_frequency_raises(self):
        with pytest.raises(ConfigError):
            parse_analysis_xml(
                '<sensei><analysis type="x" frequency="soon"/></sensei>'
            )

    def test_zero_frequency_raises(self):
        with pytest.raises(ConfigError):
            parse_analysis_xml('<sensei><analysis type="x" frequency="0"/></sensei>')

    def test_wrong_root_raises(self):
        with pytest.raises(ConfigError):
            parse_analysis_xml("<catalyst/>")

    def test_invalid_xml_raises(self):
        with pytest.raises(ConfigError):
            parse_analysis_xml("<sensei><analysis></sensei>")

    def test_empty_config_ok(self):
        assert parse_analysis_xml("<sensei></sensei>") == []


class _RecordingAnalysis(AnalysisAdaptor):
    def __init__(self):
        self.steps = []
        self.finalized = False

    def execute(self, data):
        self.steps.append(data.get_data_time_step())
        return True

    def finalize(self):
        self.finalized = True


class _StopAnalysis(AnalysisAdaptor):
    def execute(self, data):
        return False


class _FakeData:
    """Minimal DataAdaptor stand-in for dispatch tests."""

    def __init__(self, step):
        self._step = step

    def get_data_time_step(self):
        return self._step

    def get_data_time(self):
        return float(self._step)


def _factories(recorder=None):
    recorder = recorder or _RecordingAnalysis()
    return recorder, {
        "recorder": lambda comm, attrs, outdir: recorder,
        "stopper": lambda comm, attrs, outdir: _StopAnalysis(),
    }


class TestConfigurableAnalysis:
    def test_frequency_gating(self, comm):
        rec, factories = _factories()
        ca = ConfigurableAnalysis(
            comm,
            '<sensei><analysis type="recorder" frequency="3"/></sensei>',
            extra_factories=factories,
        )
        for step in range(1, 10):
            ca.execute(_FakeData(step))
        assert rec.steps == [3, 6, 9]

    def test_disabled_analysis_never_runs(self, comm):
        rec, factories = _factories()
        ca = ConfigurableAnalysis(
            comm,
            '<sensei><analysis type="recorder" enabled="no"/></sensei>',
            extra_factories=factories,
        )
        ca.execute(_FakeData(1))
        assert rec.steps == []
        assert ca.active_types == []

    def test_unknown_type_raises(self, comm):
        with pytest.raises(ConfigError, match="unknown analysis"):
            ConfigurableAnalysis(
                comm, '<sensei><analysis type="warp-drive"/></sensei>'
            )

    def test_stop_request_propagates(self, comm):
        _, factories = _factories()
        ca = ConfigurableAnalysis(
            comm,
            '<sensei><analysis type="stopper"/></sensei>',
            extra_factories=factories,
        )
        assert ca.execute(_FakeData(1)) is False

    def test_finalize_fans_out(self, comm):
        rec, factories = _factories()
        ca = ConfigurableAnalysis(
            comm,
            '<sensei><analysis type="recorder"/></sensei>',
            extra_factories=factories,
        )
        ca.finalize()
        assert rec.finalized

    def test_multiple_analyses_dispatch_independently(self, comm):
        rec1, rec2 = _RecordingAnalysis(), _RecordingAnalysis()
        factories = {
            "a1": lambda c, a, o: rec1,
            "a2": lambda c, a, o: rec2,
        }
        ca = ConfigurableAnalysis(
            comm,
            '<sensei><analysis type="a1" frequency="2"/>'
            '<analysis type="a2" frequency="3"/></sensei>',
            extra_factories=factories,
        )
        for step in range(1, 7):
            ca.execute(_FakeData(step))
        assert rec1.steps == [2, 4, 6]
        assert rec2.steps == [3, 6]

    def test_runtime_swappability(self, comm):
        """The paper's headline: swap the analysis by editing XML only."""
        rec, factories = _factories()
        for xml_type in ("recorder", "stopper"):
            ca = ConfigurableAnalysis(
                comm,
                f'<sensei><analysis type="{xml_type}"/></sensei>',
                extra_factories=factories,
            )
            assert ca.active_types == [xml_type]
