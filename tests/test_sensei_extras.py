"""Tests for the extended analyses: binning, particles, steering."""

import numpy as np
import pytest

from repro.insitu import NekDataAdaptor
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case, rayleigh_benard_case
from repro.parallel import SerialCommunicator, run_spmd
from repro.sensei import ConfigurableAnalysis
from repro.sensei.analyses import (
    DataBinning,
    DivergenceGuard,
    ParticleTracer,
    SteadyStateDetector,
)


@pytest.fixture
def rbc_adaptor(comm):
    case = rayleigh_benard_case(
        rayleigh=1e4, aspect=(1, 1), elements_per_unit=2, order=3,
        dt=5e-3, num_steps=4,
    )
    solver = NekRSSolver(case, comm)
    solver.run(2)
    adaptor = NekDataAdaptor(solver)
    adaptor.set_data_time_step(2)
    adaptor.set_data_time(solver.time)
    return solver, adaptor


class TestDataBinning:
    def test_z_profile_reproduces_stratification(self, comm, rbc_adaptor):
        """Bin temperature by z: hot at the bottom, cold at the top."""
        _, adaptor = rbc_adaptor
        # 4 bins: GLL nodes cluster at element boundaries, so finer bins
        # can be legitimately empty (NaN mean)
        binning = DataBinning(comm, array_name="temperature", axes=("z",), bins=4)
        binning.execute(adaptor)
        r = binning.results[-1]
        assert r.mean[0] > 0.25      # near the hot plate
        assert r.mean[-1] < -0.25    # near the cold plate
        valid = r.mean[np.isfinite(r.mean)]
        assert (np.diff(valid) <= 1e-6).all()  # monotone decrease

    def test_counts_cover_all_points(self, comm, rbc_adaptor):
        solver, adaptor = rbc_adaptor
        binning = DataBinning(comm, array_name="temperature", axes=("z",), bins=4)
        binning.execute(adaptor)
        assert binning.results[-1].count.sum() == solver.local_gridpoints()

    def test_two_axis_binning(self, comm, rbc_adaptor):
        _, adaptor = rbc_adaptor
        binning = DataBinning(
            comm, array_name="temperature", axes=("x", "z"), bins=4
        )
        binning.execute(adaptor)
        assert binning.results[-1].mean.shape == (4, 4)

    def test_writes_profile_file(self, comm, rbc_adaptor, tmp_path):
        _, adaptor = rbc_adaptor
        binning = DataBinning(
            comm, array_name="temperature", axes=("z",), bins=4,
            output_dir=tmp_path,
        )
        binning.execute(adaptor)
        assert (tmp_path / "binning_temperature_z.txt").exists()

    def test_parallel_matches_serial(self):
        case = rayleigh_benard_case(
            rayleigh=1e4, aspect=(1, 1), elements_per_unit=2, order=3,
            dt=5e-3, num_steps=2,
        )

        def body(comm):
            solver = NekRSSolver(case, comm)
            solver.run(1)
            adaptor = NekDataAdaptor(solver)
            binning = DataBinning(comm, array_name="temperature", bins=6)
            binning.execute(adaptor)
            return binning.results[-1].mean

        serial = run_spmd(1, body)[0]
        par = run_spmd(2, body)[0]
        np.testing.assert_allclose(par, serial, atol=1e-12)

    def test_validation(self, comm):
        with pytest.raises(ValueError):
            DataBinning(comm, axes=())
        with pytest.raises(ValueError):
            DataBinning(comm, axes=("w",))
        with pytest.raises(ValueError):
            DataBinning(comm, bins=0)


class TestParticleTracer:
    def _advected(self, comm, steps=4):
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        solver = NekRSSolver(case, comm)
        adaptor = NekDataAdaptor(solver)
        tracer = ParticleTracer(comm, num_particles=16, seed=3)
        for _ in range(steps):
            report = solver.step()
            adaptor.set_data_time_step(report.step)
            adaptor.set_data_time(report.time)
            tracer.execute(adaptor)
            adaptor.release_data()
        return solver, tracer

    def test_particles_move_with_flow(self, comm):
        _, tracer = self._advected(comm)
        assert len(tracer.trajectory) == 4
        disp = np.linalg.norm(tracer.displacement, axis=1)
        assert disp.max() > 0  # the lid drags nearby tracers

    def test_particles_stay_in_domain(self, comm):
        _, tracer = self._advected(comm)
        for snap in tracer.trajectory:
            assert (snap >= -1e-9).all()
            assert (snap <= 1.0 + 1e-9).all()

    def test_deterministic_by_seed(self, comm):
        _, a = self._advected(comm)
        _, b = self._advected(comm)
        np.testing.assert_array_equal(a.trajectory[-1], b.trajectory[-1])

    def test_csv_output(self, comm, tmp_path):
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        solver = NekRSSolver(case, comm)
        adaptor = NekDataAdaptor(solver)
        tracer = ParticleTracer(comm, num_particles=4, output_dir=tmp_path)
        for _ in range(2):
            r = solver.step()
            adaptor.set_data_time_step(r.step)
            adaptor.set_data_time(r.time)
            tracer.execute(adaptor)
            adaptor.release_data()
        tracer.finalize()
        csv = (tmp_path / "tracers.csv").read_text().splitlines()
        assert csv[0] == "snapshot,particle,x,y,z"
        assert len(csv) == 1 + 2 * 4

    def test_seed_box(self, comm):
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        solver = NekRSSolver(case, comm)
        adaptor = NekDataAdaptor(solver)
        tracer = ParticleTracer(
            comm, num_particles=8,
            seed_box=((0.4, 0.4, 0.4), (0.6, 0.6, 0.6)),
        )
        r = solver.step()
        adaptor.set_data_time_step(r.step)
        tracer.execute(adaptor)
        assert (tracer.positions >= 0.4).all()
        assert (tracer.positions <= 0.6).all()

    def test_invalid_count(self, comm):
        with pytest.raises(ValueError):
            ParticleTracer(comm, num_particles=0)


class TestDivergenceGuard:
    def test_healthy_run_continues(self, comm, rbc_adaptor):
        _, adaptor = rbc_adaptor
        guard = DivergenceGuard(comm, array_name="temperature", limit=10.0)
        assert guard.execute(adaptor) is True
        assert guard.tripped_at is None

    def test_blowup_trips(self, comm, rbc_adaptor):
        solver, adaptor = rbc_adaptor
        solver.u[:] = 1e9
        adaptor.release_data()
        guard = DivergenceGuard(comm, array_name="velocity_magnitude", limit=1e6)
        assert guard.execute(adaptor) is False
        assert guard.tripped_at == 2

    def test_nan_trips(self, comm, rbc_adaptor):
        solver, adaptor = rbc_adaptor
        solver.p[0, 0, 0, 0] = np.nan
        adaptor.release_data()
        guard = DivergenceGuard(comm, array_name="pressure", limit=1e20)
        assert guard.execute(adaptor) is False

    def test_stops_run_through_bridge(self, comm, tmp_path):
        from repro.insitu import Bridge

        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        solver = NekRSSolver(case, comm)
        xml = (
            '<sensei><analysis type="divergence_guard" '
            'array="velocity_magnitude" limit="1e-12"/></sensei>'
        )
        bridge = Bridge(solver, config_xml=xml, output_dir=tmp_path)
        report = solver.step()
        assert bridge.update(report.step, report.time) is False
        assert bridge.stop_requested


class TestSteadyStateDetector:
    def test_frozen_field_converges(self, comm, rbc_adaptor):
        _, adaptor = rbc_adaptor
        det = SteadyStateDetector(
            comm, array_name="temperature", tolerance=1e-9, patience=2
        )
        # same state offered repeatedly -> zero change -> stop after patience
        assert det.execute(adaptor) is True   # first sight: no history
        assert det.execute(adaptor) is True   # quiet 1
        assert det.execute(adaptor) is False  # quiet 2 -> stop
        assert det.converged_at == 2

    def test_changing_field_keeps_running(self, comm):
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        solver = NekRSSolver(case, comm)
        adaptor = NekDataAdaptor(solver)
        det = SteadyStateDetector(
            comm, array_name="velocity_magnitude", tolerance=1e-12, patience=1
        )
        for _ in range(3):
            r = solver.step()
            adaptor.set_data_time_step(r.step)
            assert det.execute(adaptor) is True
            adaptor.release_data()
        assert det.converged_at is None
        assert all(h > 1e-12 for h in det.history)

    def test_validation(self, comm):
        with pytest.raises(ValueError):
            SteadyStateDetector(comm, tolerance=0)
        with pytest.raises(ValueError):
            SteadyStateDetector(comm, patience=0)


class TestXMLRegistration:
    def test_new_types_constructible_from_xml(self, comm, tmp_path):
        xml = """
        <sensei>
          <analysis type="binning" array="pressure" axes="z" bins="4"/>
          <analysis type="particles" count="8"/>
          <analysis type="divergence_guard" limit="1e9"/>
          <analysis type="steady_state" tolerance="1e-9"/>
        </sensei>
        """
        ca = ConfigurableAnalysis(comm, xml, output_dir=tmp_path)
        assert ca.active_types == [
            "binning", "particles", "divergence_guard", "steady_state"
        ]
