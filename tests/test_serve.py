"""Tests for repro.serve: frame store, sessions, hub, steering.

Unit layers first (store / session / hub semantics), then the
acceptance scenarios from the serving design: backpressure that never
stalls the publisher, loopback frames byte-identical to the on-disk
PNGs, and steering commands applied collectively at step boundaries.
"""

import threading
import time

import numpy as np
import pytest

from repro.insitu import Bridge
from repro.nekrs import NekRSSolver
from repro.nekrs.cases import lid_cavity_case, pebble_bed_case
from repro.parallel import SerialCommunicator, run_spmd
from repro.perf.config import naive_mode
from repro.serve import (
    STEER_KINDS,
    FrameHub,
    FrameStore,
    HubFull,
    LoopbackClient,
    Session,
    SteerCommand,
    SteeringBus,
    SteeringEndpoint,
    attach_serving,
)


def _png(tag: int = 0) -> bytes:
    from repro.util.png import encode_png

    img = np.full((8, 8, 3), tag % 256, dtype=np.uint8)
    return encode_png(img)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ---------------------------------------------------------------------------
# FrameStore
# ---------------------------------------------------------------------------


class TestFrameStore:
    def test_latest_and_ring(self):
        store = FrameStore(history=3)
        for i in range(5):
            store.put("s", step=i, time=i * 0.1, data=_png(i), seq=i)
        assert store.latest("s").step == 4
        assert [f.step for f in store.frames("s")] == [2, 3, 4]
        assert store.streams() == ["s"]
        assert store.latest("other") is None

    def test_dedup_interns_identical_payloads(self):
        store = FrameStore(history=8)
        a = store.put("s", 0, 0.0, _png(7), seq=0)
        b = store.put("s", 1, 0.1, _png(7), seq=1)
        assert store.frames_deduped == 1
        assert a.data is b.data          # one interned payload, shared
        assert a.digest == b.digest

    def test_naive_mode_copies_per_frame(self):
        store = FrameStore(history=8)
        with naive_mode():
            a = store.put("s", 0, 0.0, _png(7), seq=0)
            b = store.put("s", 1, 0.1, _png(7), seq=1)
        assert store.frames_deduped == 1  # still counted, not shared
        assert a.data == b.data
        assert a.data is not b.data

    def test_payload_bytes_is_dedup_aware(self):
        store = FrameStore(history=8)
        payload = _png(3)
        for i in range(4):
            store.put("s", i, 0.0, payload, seq=i)
        assert store.payload_bytes == len(payload)

    def test_eviction_releases_interned_payloads(self):
        store = FrameStore(history=2)
        for i in range(6):
            store.put("s", i, 0.0, _png(i), seq=i)  # all distinct
        # only the two ring frames remain interned
        assert store.payload_bytes == sum(f.nbytes for f in store.frames("s"))

    def test_stats(self):
        store = FrameStore(history=4)
        store.put("a", 0, 0.0, _png(0), seq=0)
        store.put("b", 0, 0.0, _png(1), seq=1)
        stats = store.stats()
        assert stats["streams"] == ["a", "b"]
        assert stats["frames_stored"] == 2
        assert stats["ring_depth"] == {"a": 1, "b": 1}

    def test_history_validation(self):
        with pytest.raises(ValueError):
            FrameStore(history=0)


# ---------------------------------------------------------------------------
# Session
# ---------------------------------------------------------------------------


def _frame(step: int, stream: str = "s", published_at: float = 0.0):
    from repro.serve.framestore import Frame, content_digest

    data = _png(step)
    return Frame(stream=stream, step=step, time=step * 0.1, data=data,
                 digest=content_digest(data), seq=step,
                 published_at=published_at)


class TestSession:
    def test_drop_to_latest_keeps_newest(self):
        s = Session(0, depth=2)
        for i in range(5):
            s.offer(_frame(i))
        assert [f.step for f in s.drain()] == [3, 4]
        assert s.stats.dropped == 3
        assert s.stats.offered == 5

    def test_delivered_steps_strictly_increasing(self):
        s = Session(0, depth=2)
        delivered = []
        for i in range(20):
            s.offer(_frame(i))
            if i % 3 == 0:                # slow consumer wakes sometimes
                delivered.extend(f.step for f in s.drain())
        delivered.extend(f.step for f in s.drain())
        assert delivered == sorted(delivered)
        assert len(set(delivered)) == len(delivered)

    def test_stream_filter(self):
        s = Session(0, streams=("a",), depth=8)
        s.offer(_frame(0, stream="a"))
        s.offer(_frame(1, stream="b"))
        assert [f.stream for f in s.drain()] == ["a"]
        assert s.stats.offered == 1       # unwanted streams aren't offers

    def test_rate_limit_defers_newest(self):
        clock = FakeClock()
        s = Session(0, depth=8, max_fps=10, clock=clock)
        s.offer(_frame(0))                 # enqueued at t=0
        clock.now = 0.01
        s.offer(_frame(1))                 # inside the interval: deferred
        clock.now = 0.02
        s.offer(_frame(2))                 # supersedes frame 1
        assert s.stats.rate_limited == 1
        assert [f.step for f in s.drain()] == [0]
        clock.now = 0.2                    # interval elapsed: promote
        assert [f.step for f in s.drain()] == [2]
        assert s.stats.delivered == 2

    def test_take_timeout_returns_none(self):
        s = Session(0)
        assert s.take(timeout=0.05) is None

    def test_take_blocks_until_offer(self):
        s = Session(0)
        got = []

        def consumer():
            got.append(s.take(timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.02)
        s.offer(_frame(9))
        t.join(5.0)
        assert got and got[0].step == 9

    def test_closed_session_rejects_offers(self):
        s = Session(0)
        s.close()
        assert s.offer(_frame(0)) is False
        assert s.take(block=False) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            Session(0, depth=0)
        with pytest.raises(ValueError):
            Session(0, max_fps=0)


# ---------------------------------------------------------------------------
# FrameHub
# ---------------------------------------------------------------------------


class TestFrameHub:
    def test_publish_fans_out_to_all_sessions(self):
        hub = FrameHub()
        a = hub.connect(depth=8)
        b = hub.connect(depth=8)
        hub.publish("s", 0, 0.0, _png(0))
        hub.publish("s", 1, 0.1, _png(1))
        assert [f.step for f in a.drain()] == [0, 1]
        assert [f.step for f in b.drain()] == [0, 1]
        assert hub.frames_published == 2

    def test_shared_payload_across_sessions(self):
        hub = FrameHub()
        a = hub.connect(depth=8)
        b = hub.connect(depth=8)
        hub.publish("s", 0, 0.0, _png(0))
        fa, fb = a.drain()[0], b.drain()[0]
        assert fa.data is fb.data          # interned once, shared

    def test_naive_mode_copies_per_client(self):
        hub = FrameHub()
        a = hub.connect(depth=8)
        b = hub.connect(depth=8)
        with naive_mode():
            hub.publish("s", 0, 0.0, _png(0))
        fa, fb = a.drain()[0], b.drain()[0]
        assert fa.data == fb.data
        assert fa.data is not fb.data

    def test_max_clients_enforced(self):
        hub = FrameHub(max_clients=2)
        hub.connect()
        hub.connect()
        with pytest.raises(HubFull):
            hub.connect()

    def test_disconnect_frees_a_slot(self):
        hub = FrameHub(max_clients=1)
        s = hub.connect()
        hub.disconnect(s)
        hub.connect()                      # no raise
        assert hub.peak_clients == 1

    def test_closed_hub_refuses_connections(self):
        hub = FrameHub()
        hub.close()
        with pytest.raises(HubFull):
            hub.connect()

    def test_session_close_frees_the_slot_immediately(self):
        # churn regression: a client that closes its own session (no
        # hub.disconnect round-trip, e.g. a viewer dropping mid-publish)
        # must release its budget slot at close time, not at the next
        # hub sweep — otherwise reconnect churn wedges at max_clients
        hub = FrameHub(max_clients=1)
        s = hub.connect(label="churny")
        hub.publish("s", 0, 0.0, _png(0))
        s.close()
        assert hub.clients == 0
        hub.connect(label="churny")        # immediate reconnect: no raise

    def test_mid_publish_disconnect_releases_budget(self):
        # the disconnect lands between two publishes; the very next
        # connect must succeed even though the hub never ran a sweep
        hub = FrameHub(max_clients=2)
        a = hub.connect(label="a")
        b = hub.connect(label="b")
        hub.publish("s", 0, 0.0, _png(0))
        b.close()
        c = hub.connect(label="c")
        hub.publish("s", 1, 0.0, _png(1))
        assert [f.step for f in a.drain()] == [0, 1]
        assert [f.step for f in c.drain()] == [1]

    def test_stats_shape(self):
        hub = FrameHub()
        hub.connect(label="viewer")
        hub.publish("s", 0, 0.0, _png(0))
        stats = hub.stats()
        assert stats["clients"] == 1
        assert stats["frames_published"] == 1
        assert stats["stalls"] == 0
        assert "viewer" in stats["sessions"]
        assert stats["store"]["frames_stored"] == 1


# ---------------------------------------------------------------------------
# Backpressure acceptance
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_slow_client_skips_fast_client_does_not(self):
        """The SST-Discard analog: a slow viewer sees a strictly
        increasing subsequence of steps (frames skipped, never
        reordered or duplicated); a fast viewer sees every frame; the
        publisher never blocks on either."""
        nframes = 60
        hub = FrameHub(default_depth=2, stall_threshold_s=0.25)
        fast = hub.connect(depth=nframes, label="fast")
        slow = hub.connect(depth=2, label="slow")
        slow_steps = []
        for i in range(nframes):
            hub.publish("s", i, i * 0.01, _png(i % 4))
            if i % 7 == 0:                 # slow viewer wakes rarely
                slow_steps.extend(f.step for f in slow.drain())
        slow_steps.extend(f.step for f in slow.drain())

        assert [f.step for f in fast.drain()] == list(range(nframes))
        assert slow_steps == sorted(set(slow_steps))
        assert len(slow_steps) < nframes
        assert slow.stats.dropped > 0
        assert hub.stalls == 0

    def test_publisher_latency_is_bounded_by_slow_clients(self):
        """Publishing to 50 never-draining clients must stay in the
        non-blocking regime — the guard the hub's stall counter
        formalizes (style of the telemetry overhead check: generous
        bound, hard invariant)."""
        hub = FrameHub(default_depth=2)
        for i in range(50):
            hub.connect(label=f"stuck-{i}")
        for i in range(30):
            hub.publish("s", i, 0.0, _png(i % 4))
        assert hub.stalls == 0
        assert hub.max_publish_s < hub.stall_threshold_s


# ---------------------------------------------------------------------------
# End-to-end: loopback frames byte-identical to the on-disk PNGs
# ---------------------------------------------------------------------------


PEBBLE_XML = """
<sensei>
  <analysis type="catalyst" mesh="uniform" array="temperature"
            slice_axis="y" width="64" height="64" frequency="1"
            name="pebble"/>
</sensei>
"""


class TestLoopbackByteIdentical:
    def test_streamed_frames_match_disk(self, tmp_path):
        """Pebble-bed analog, 2 ranks: every frame the loopback client
        receives is byte-identical to the PNG the Catalyst adaptor
        wrote for that step (encode-once)."""
        hub = FrameHub(history=16)
        client = LoopbackClient(hub, depth=64, label="viewer")
        case = pebble_bed_case(
            num_pebbles=3, elements_per_unit=2, order=3, num_steps=3
        )

        def body(comm):
            solver = NekRSSolver(case, comm)
            bridge = Bridge(solver, config_xml=PEBBLE_XML, output_dir=tmp_path)
            attach_serving(bridge.analysis, hub, comm=comm)
            solver.run(observer=bridge.observer)
            bridge.finalize()
            return solver.time

        run_spmd(2, body)
        client.drain()
        assert len(client.frames) == 3
        for frame in client.frames:
            disk = (tmp_path / f"{frame.stream}_{frame.step:06d}.png").read_bytes()
            assert frame.data == disk

    def test_history_replay_matches_disk(self, tmp_path):
        """The hub's history ring holds the same bytes, oldest first."""
        hub = FrameHub(history=16)
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3,
                               num_steps=3)
        xml = ('<sensei><analysis type="catalyst" mesh="uniform" '
               'array="pressure" slice_axis="y" width="48" height="48" '
               'frequency="1" name="cav"/></sensei>')

        def body(comm):
            solver = NekRSSolver(case, comm)
            bridge = Bridge(solver, config_xml=xml, output_dir=tmp_path)
            attach_serving(bridge.analysis, hub, comm=comm)
            solver.run(observer=bridge.observer)
            bridge.finalize()

        run_spmd(1, body)
        frames = hub.store.frames("cav_slice0_pressure")
        assert [f.step for f in frames] == [1, 2, 3]
        for frame in frames:
            disk = (tmp_path / f"{frame.stream}_{frame.step:06d}.png").read_bytes()
            assert frame.data == disk


# ---------------------------------------------------------------------------
# Steering
# ---------------------------------------------------------------------------


CONTOUR_XML = """
<sensei>
  <analysis type="catalyst" mesh="uniform" array="velocity_magnitude"
            isovalue="0.2" slice_axis="y" width="64" height="64"
            frequency="1" name="steer"/>
</sensei>
"""


def _steered_run(tmp_path, hub, bus, nranks=2, steps=3, commands=()):
    case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=5e-3,
                           num_steps=steps)
    for cmd in commands:
        bus.submit(cmd)

    def body(comm):
        solver = NekRSSolver(case, comm)
        bridge = Bridge(solver, config_xml=CONTOUR_XML, output_dir=tmp_path)
        endpoint = attach_serving(bridge.analysis, hub, bus, comm=comm)
        reports = solver.run(observer=bridge.observer)
        bridge.finalize()
        return {
            "steps": len(reports),
            "stopped_at": endpoint.stopped_at,
            "applied": endpoint.commands_applied,
            "stop_requested": bridge.stop_requested,
        }

    return run_spmd(nranks, body)


class TestSteering:
    def test_command_validation(self):
        with pytest.raises(ValueError):
            SteerCommand(kind="warp")
        for kind in STEER_KINDS:
            SteerCommand(kind=kind, value=1.0)

    def test_stop_halts_all_ranks_at_next_boundary(self, tmp_path):
        hub, bus = FrameHub(), SteeringBus()
        results = _steered_run(
            tmp_path, hub, bus, nranks=2, steps=5,
            commands=[SteerCommand(kind="stop", client="test")],
        )
        # steering runs before the first render: the stop lands at the
        # first step boundary, identically on both ranks
        assert [r["steps"] for r in results] == [1, 1]
        assert all(r["stopped_at"] == 1 for r in results)
        assert all(r["stop_requested"] for r in results)
        assert bus.applied and bus.applied[0].kind == "stop"

    def test_isovalue_changes_next_frame(self, tmp_path):
        baseline_hub = FrameHub()
        _steered_run(tmp_path / "a", baseline_hub, SteeringBus(), nranks=2)
        steered_hub, bus = FrameHub(), SteeringBus()
        _steered_run(
            tmp_path / "b", steered_hub, bus, nranks=2,
            commands=[SteerCommand(kind="isovalue", value=0.05)],
        )
        base = {f.step: f.data for f in baseline_hub.store.frames("steer_surface")}
        steered = {f.step: f.data for f in steered_hub.store.frames("steer_surface")}
        assert base.keys() == steered.keys()
        # the command applied before step 1's render: every frame differs
        assert all(steered[s] != base[s] for s in base)

    def test_pause_resume_roundtrip(self, tmp_path):
        hub, bus = FrameHub(), SteeringBus()
        bus.submit(SteerCommand(kind="pause", client="test"))
        timer = threading.Timer(
            0.25, lambda: bus.submit(SteerCommand(kind="resume", client="test"))
        )
        timer.start()
        try:
            results = _steered_run(tmp_path, hub, bus, nranks=2, steps=3)
        finally:
            timer.cancel()
        assert [r["steps"] for r in results] == [3, 3]   # resumed, ran out
        kinds = [c.kind for c in bus.applied]
        assert kinds[:2] == ["pause", "resume"]

    def test_parameter_application_unit(self):
        from repro.catalyst.pipeline import RenderPipeline, RenderSpec

        pipe = RenderPipeline(specs=[
            RenderSpec(kind="contour", array="q", isovalue=0.5),
            RenderSpec(kind="slice", array="q", axis="y"),
        ])
        endpoint = SteeringEndpoint(SerialCommunicator(), SteeringBus(),
                                    pipelines=[pipe])
        endpoint._apply(SteerCommand(kind="isovalue", value=0.9))
        assert pipe.specs[0].isovalue == 0.9
        assert pipe.specs[1].kind == "slice"            # untouched
        endpoint._apply(SteerCommand(kind="colormap", value="plasma"))
        assert all(s.colormap == "plasma" for s in pipe.specs)
        before = pipe.view_direction
        endpoint._apply(SteerCommand(kind="camera_orbit", value=90.0))
        after = pipe.view_direction
        assert after != before
        assert after[2] == pytest.approx(before[2])      # z preserved
        assert np.hypot(after[0], after[1]) == pytest.approx(
            np.hypot(before[0], before[1])
        )

    def test_loopback_steer_requires_bus(self):
        hub = FrameHub()
        client = LoopbackClient(hub)
        with pytest.raises(RuntimeError):
            client.steer("stop")
        client.close()


# ---------------------------------------------------------------------------
# Steering trips observability
# ---------------------------------------------------------------------------


class TestSteeringTrips:
    def _tripping_run(self, session, guard_xml, nan=False):
        from repro.observe.session import active

        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2,
                               num_steps=3)
        comm = SerialCommunicator()
        with active(session.rank(0)):
            solver = NekRSSolver(case, comm)
            bridge = Bridge(solver, config_xml=guard_xml, output_dir=".")
            report = solver.step()
            if nan:
                solver.u[:] = np.nan
            return bridge.update(report.step, report.time)

    def test_divergence_guard_counts_runaway_norm(self):
        from repro.observe import TelemetrySession

        session = TelemetrySession("trips")
        # a healthy lid cavity has |u| ~ 1, far above this limit
        xml = ('<sensei><analysis type="divergence_guard" '
               'array="velocity_magnitude" limit="1e-6"/></sensei>')
        assert self._tripping_run(session, xml) is False
        metrics = session.merged_metrics().to_json()["metrics"]
        assert metrics["repro_steering_trips_runaway_norm_total"]["value"] == 1
        instants = [e for e in session.events()
                    if getattr(e, "name", "") == "steering.trip"]
        assert instants and instants[0].args["reason"] == "runaway_norm"

    def test_divergence_guard_counts_nan(self):
        from repro.observe import TelemetrySession

        session = TelemetrySession("trips")
        xml = ('<sensei><analysis type="divergence_guard" '
               'array="velocity_magnitude" limit="1e6"/></sensei>')
        assert self._tripping_run(session, xml, nan=True) is False
        metrics = session.merged_metrics().to_json()["metrics"]
        assert metrics["repro_steering_trips_nan_total"]["value"] == 1

    def test_steady_state_counts_steady(self, tmp_path):
        from repro.observe import TelemetrySession
        from repro.observe.session import active
        from repro.insitu.adaptor import NekDataAdaptor
        from repro.sensei.analyses.steering import SteadyStateDetector

        session = TelemetrySession("trips")
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        comm = SerialCommunicator()
        with active(session.rank(0)):
            solver = NekRSSolver(case, comm)
            solver.step()              # non-zero pressure, else change=inf
            adaptor = NekDataAdaptor(solver)
            adaptor.set_data_time_step(1)
            det = SteadyStateDetector(comm, array_name="pressure",
                                      tolerance=1e-9, patience=1)
            assert det.execute(adaptor) is True
            assert det.execute(adaptor) is False
        metrics = session.merged_metrics().to_json()["metrics"]
        assert metrics["repro_steering_trips_steady_total"]["value"] == 1

    def test_adaptive_trigger_counts_firings(self):
        from repro.insitu.adaptive import AdaptiveTrigger
        from repro.insitu.adaptor import NekDataAdaptor
        from repro.observe import TelemetrySession
        from repro.observe.session import active
        from repro.sensei.analysis_adaptor import AnalysisAdaptor

        class Sink(AnalysisAdaptor):
            def execute(self, data):
                return True

        session = TelemetrySession("trips")
        case = lid_cavity_case(reynolds=100, elements=2, order=3, dt=1e-2)
        comm = SerialCommunicator()
        with active(session.rank(0)):
            solver = NekRSSolver(case, comm)
            adaptor = NekDataAdaptor(solver)
            adaptor.set_data_time_step(1)
            trig = AdaptiveTrigger(comm, Sink(), monitor_array="pressure",
                                   change_threshold=1e9)
            assert trig.execute(adaptor) is True    # first offer always fires
            assert trig.execute(adaptor) is True    # suppressed: no change
        metrics = session.merged_metrics().to_json()["metrics"]
        assert metrics["repro_steering_trips_trigger_total"]["value"] == 1
        assert trig.suppressed == 1

    def test_record_trip_rejects_unknown_reason(self):
        from repro.sensei.analyses.steering import record_trip

        with pytest.raises(ValueError):
            record_trip(SerialCommunicator(), "gremlins", step=1)
