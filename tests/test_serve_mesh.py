"""Tests for repro.serve.mesh: relay hubs, edge cache, session pump.

Unit layers first (EdgeCache / MeshSession / SessionPump invariants),
then the mesh acceptance scenarios from the serving design: O(1)
publisher wakeups per publish, consistent-hash placement with bounded
movement on join, crash-driven lease-expiry migration that never loses
or repeats a committed step, naive-mode byte equivalence with the flat
PR 5 hub, the cache counters and relay gauges flowing through the
metric-naming audit, and the HTTP transport exposing the shard map and
routing steering through the client's relay.
"""

import http.client
import json
import time

import numpy as np
import pytest

from repro.observe import naming_violations
from repro.observe.session import Telemetry, active
from repro.perf.config import naive_mode
from repro.serve import (
    EdgeCache,
    FrameHub,
    HttpFrameServer,
    HubFull,
    MeshSession,
    ServeMesh,
    SteeringBus,
)
from repro.serve.framestore import Frame, content_digest
from repro.util.png import encode_png

pytestmark = [pytest.mark.timeout(120)]


def _png(tag: int = 0) -> bytes:
    img = np.full((6, 6, 3), tag % 256, dtype=np.uint8)
    return encode_png(img)


def _frame(step: int, stream: str = "s") -> Frame:
    data = _png(step)
    return Frame(stream=stream, step=step, time=step * 0.1, data=data,
                 digest=content_digest(data), seq=step, published_at=0.0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def _pump_all(mesh) -> None:
    """Service every relay once (start=False meshes pump manually)."""
    for relay in mesh._relays.values():
        relay.pump.pump_once()


def _quiet_mesh(**kwargs) -> ServeMesh:
    """A mesh with no relay threads and no lease pressure.

    start=False registers the relays without running their pump
    threads, so tests drive ``pump_once`` deterministically; the long
    lease keeps the publish-path ``check()`` from expiring the
    non-heartbeating relays mid-test.
    """
    kwargs.setdefault("relays", 3)
    kwargs.setdefault("lease_timeout_s", 300.0)
    return ServeMesh(start=False, **kwargs)


# ---------------------------------------------------------------------------
# EdgeCache
# ---------------------------------------------------------------------------


class TestEdgeCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EdgeCache(capacity=0)

    def test_get_counts_hit_and_miss(self):
        cache = EdgeCache(capacity=4)
        f = _frame(0)
        assert cache.put(f) is True          # new digest: a miss
        assert cache.get(f.digest) is f
        assert cache.get("nope") is None
        assert (cache.hits, cache.misses) == (1, 2)

    def test_reinserted_digest_counts_as_hit(self):
        # a converged flow republishing identical pixels costs nothing
        cache = EdgeCache(capacity=4)
        a, b = _frame(0), _frame(0)
        assert a.digest == b.digest
        assert cache.put(a) is True
        assert cache.put(b) is False
        assert cache.hits == 1
        # newest metadata wins for the shared bytes
        assert cache.get(a.digest) is b

    def test_lru_eviction(self):
        cache = EdgeCache(capacity=2)
        f0, f1, f2 = _frame(0), _frame(1), _frame(2)
        cache.put(f0)
        cache.put(f1)
        cache.get(f0.digest)                 # refresh f0: f1 is now LRU
        cache.put(f2)
        assert cache.evictions == 1
        assert f0.digest in cache
        assert f1.digest not in cache

    def test_stats_and_payload_bytes(self):
        cache = EdgeCache(capacity=4)
        f = _frame(3)
        cache.put(f)
        stats = cache.stats()
        assert stats["entries"] == 1
        assert cache.payload_bytes == f.nbytes


# ---------------------------------------------------------------------------
# MeshSession
# ---------------------------------------------------------------------------


class TestMeshSession:
    def test_depth_validation(self):
        with pytest.raises(ValueError):
            MeshSession(0, depth=0)

    def test_max_fps_zero_rejected(self):
        with pytest.raises(ValueError):
            MeshSession(0, max_fps=0)

    def test_max_fps_negative_rejected(self):
        with pytest.raises(ValueError):
            MeshSession(0, max_fps=-5.0)

    def test_placement_key_defaults_to_label(self):
        s = MeshSession(7, label="viewer-a")
        assert s.key == "viewer-a"
        assert MeshSession(8, key="pin", label="viewer-b").key == "pin"

    def test_seq_cursor_skips_replayed_frames(self):
        # the cross-relay dedup cursor: re-offering an already-seen
        # frame (relay handoff backfill) is a no-op
        clock = FakeClock()
        mesh = _quiet_mesh(clock=clock)
        try:
            s = mesh.connect(label="v")
            mesh.publish("s", step=0, time=0.0, data=_png(0))
            _pump_all(mesh)
            pump = s._pump
            with pump.cond:
                assert s._offer_locked(mesh.store.latest("s"), clock()) is True
            assert [f.step for f in s.drain()] == [0]
            assert s.stats.offered == 1      # the replay never counted
        finally:
            mesh.close()


# ---------------------------------------------------------------------------
# Placement, shard map, O(1) publish
# ---------------------------------------------------------------------------


class TestMeshPlacement:
    def test_sessions_land_on_ring_assigned_relay(self):
        mesh = _quiet_mesh(relays=4)
        try:
            for i in range(32):
                s = mesh.connect(label=f"viewer-{i}")
                rid = mesh.ring.assign(s.key)
                assert s._pump is mesh._relays[rid].pump
        finally:
            mesh.close()

    def test_shard_map_counts_every_client(self):
        mesh = _quiet_mesh(relays=4)
        try:
            for i in range(32):
                mesh.connect(label=f"viewer-{i}")
            shard_map = mesh.shard_map()
            assert sum(e["clients"] for e in shard_map.values()) == 32
            assert set(shard_map) == {"0", "1", "2", "3"}
            assert all(e["state"] == "active" for e in shard_map.values())
        finally:
            mesh.close()

    def test_publish_wakeups_are_o1_per_relay(self):
        # the tentpole invariant: publish cost is O(relays), not
        # O(clients) — each publish issues exactly one notify per relay
        # no matter how many sessions the relay carries
        mesh = _quiet_mesh(relays=3)
        try:
            for i in range(60):
                mesh.connect(label=f"viewer-{i}", depth=8)
            for step in range(5):
                mesh.publish("s", step=step, time=0.0, data=_png(step))
            for relay in mesh._relays.values():
                assert relay.pump.notifies == 5
        finally:
            mesh.close()

    def test_max_clients_budget_enforced(self):
        mesh = _quiet_mesh(relays=2, max_clients=2)
        try:
            mesh.connect(label="a")
            b = mesh.connect(label="b")
            with pytest.raises(HubFull):
                mesh.connect(label="c")
            # immediate slot release on disconnect, same as the flat hub
            mesh.disconnect(b)
            mesh.connect(label="c")
        finally:
            mesh.close()

    def test_join_rebalance_moves_only_the_new_arc(self):
        mesh = _quiet_mesh(relays=3)
        try:
            sessions = [mesh.connect(label=f"viewer-{i}") for i in range(48)]
            before = {s.sid: s._pump.rid for s in sessions}
            rid = mesh.add_relay(start=False)
            moved = [s for s in sessions if s._pump.rid != before[s.sid]]
            # everything that moved landed on the new relay, nothing
            # shuffled between the old ones
            assert moved
            assert all(s._pump.rid == rid for s in moved)
            assert any(m["kind"] == "join" for m in mesh.migrations)
        finally:
            mesh.close()


# ---------------------------------------------------------------------------
# Edge cache serving: backfill, replay, late joiners
# ---------------------------------------------------------------------------


class TestEdgeServing:
    def test_late_joiner_backfills_from_edge_cache(self):
        mesh = _quiet_mesh(relays=2)
        try:
            for step in range(4):
                mesh.publish("s", step=step, time=0.0, data=_png(step))
            _pump_all(mesh)
            published = mesh.frames_published
            s = mesh.connect(label="late", depth=8, backfill=True)
            # served entirely from the relay's retained ring: the
            # publisher never saw the join
            assert [f.step for f in s.drain()] == [0, 1, 2, 3]
            assert mesh.frames_published == published
            assert mesh.stats()["cache"]["hits"] >= 4
        finally:
            mesh.close()

    def test_relay_replay_prefers_edge_over_origin(self):
        mesh = _quiet_mesh(relays=2)
        try:
            for step in range(3):
                mesh.publish("s", step=step, time=0.0, data=_png(step))
            _pump_all(mesh)
            frames = mesh.relay_replay("s", key="edge")
            assert [f.step for f in frames] == [0, 1, 2]
            relay = mesh.relay_for("edge")
            assert relay.origin_fetches == 0
            latest = mesh.relay_latest("s", key="edge")
            assert latest.step == 2
        finally:
            mesh.close()

    def test_unserviced_relay_falls_back_to_origin(self):
        mesh = _quiet_mesh(relays=2)
        try:
            mesh.publish("s", step=0, time=0.0, data=_png(0))
            # no pump pass: the edge is cold, origin answers
            relay = mesh.relay_for("edge")
            assert mesh.relay_latest("s", key="edge").step == 0
            assert relay.origin_fetches == 1
        finally:
            mesh.close()


# ---------------------------------------------------------------------------
# max_fps through the pump
# ---------------------------------------------------------------------------


class TestMaxFpsThroughPump:
    def test_newest_wins_deferred_slot(self):
        clock = FakeClock()
        mesh = _quiet_mesh(relays=2, clock=clock)
        try:
            s = mesh.connect(label="v", max_fps=10.0, depth=4)
            for step in range(3):
                mesh.publish("s", step=step, time=0.0, data=_png(step))
            _pump_all(mesh)
            # step 0 enqueued; 1 deferred; 2 supersedes 1 (newest wins)
            assert [f.step for f in s.drain()] == [0]
            assert s.stats.rate_limited == 1
            clock.now += 0.2
            assert [f.step for f in s.drain()] == [2]
        finally:
            mesh.close()

    def test_deferred_slot_survives_relay_migration(self):
        clock = FakeClock()
        mesh = _quiet_mesh(relays=2, clock=clock)
        try:
            s = mesh.connect(label="v", max_fps=10.0, depth=4)
            for step in range(3):
                mesh.publish("s", step=step, time=0.0, data=_png(step))
            _pump_all(mesh)
            assert [f.step for f in s.drain()] == [0]
            old_rid = s._pump.rid
            mesh.remove_relay(old_rid)
            assert s._pump.rid != old_rid
            # the deferred newest frame travelled with the session and
            # the backfill replay did not resurrect the superseded one
            clock.now += 0.2
            assert [f.step for f in s.drain()] == [2]
            steps = list(s.stats.steps)
            assert steps == sorted(set(steps)) == [0, 2]
        finally:
            mesh.close()

    def test_delivered_steps_strictly_increase_across_handoff(self):
        clock = FakeClock()
        mesh = _quiet_mesh(relays=2, clock=clock)
        try:
            s = mesh.connect(label="v", depth=16)
            for step in range(4):
                mesh.publish("s", step=step, time=0.0, data=_png(step))
            _pump_all(mesh)
            assert [f.step for f in s.drain()] == [0, 1, 2, 3]
            # handoff: the new relay's backfill re-offers 0..3, the
            # cursor drops them all, then fresh frames keep flowing
            mesh.remove_relay(s._pump.rid)
            for step in range(4, 7):
                mesh.publish("s", step=step, time=0.0, data=_png(step))
            _pump_all(mesh)
            assert [f.step for f in s.drain()] == [4, 5, 6]
            steps = list(s.stats.steps)
            assert steps == sorted(steps)
            assert len(set(steps)) == len(steps)
        finally:
            mesh.close()


# ---------------------------------------------------------------------------
# Relay loss: lease expiry, migration, no lost committed steps
# ---------------------------------------------------------------------------


class TestRelayLoss:
    def test_crash_detected_by_lease_expiry_and_sessions_migrate(self):
        mesh = ServeMesh(
            relays=3, lease_timeout_s=0.15, poll_interval_s=0.001
        )
        try:
            sessions = [
                mesh.connect(label=f"viewer-{i}", depth=64) for i in range(12)
            ]
            for step in range(3):
                mesh.publish("s", step=step, time=0.0, data=_png(step))
                time.sleep(0.01)
            victim_rid = sessions[0]._pump.rid
            displaced = [s for s in sessions if s._pump.rid == victim_rid]
            mesh.kill_relay(victim_rid)
            deadline = time.monotonic() + 5.0
            while victim_rid in mesh._relays and time.monotonic() < deadline:
                mesh.check()
                time.sleep(0.02)
            assert victim_rid not in mesh._relays, "lease never expired"
            record = mesh.migrations[-1]
            assert record["kind"] == "crash"
            assert record["sessions_moved"] == len(displaced)
            for step in range(3, 6):
                mesh.publish("s", step=step, time=0.0, data=_png(step))
                time.sleep(0.01)
            # surviving relays carry everyone; committed steps are
            # strictly increasing with nothing lost after the handoff
            for s in sessions:
                assert s._pump.rid != victim_rid
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    s.drain()
                    steps = list(s.stats.steps)
                    if steps and steps[-1] == 5:
                        break
                    time.sleep(0.01)
                steps = list(s.stats.steps)
                assert steps == sorted(steps)
                assert len(set(steps)) == len(steps)
                assert steps[-1] == 5
            assert victim_rid in mesh.stats()["lost_relays"]
        finally:
            mesh.close()

    def test_last_relay_loss_closes_orphans(self):
        mesh = _quiet_mesh(relays=1)
        try:
            s = mesh.connect(label="v")
            mesh.remove_relay(0)
            assert s.closed
            with pytest.raises(HubFull):
                mesh.connect(label="w")
        finally:
            mesh.close()


# ---------------------------------------------------------------------------
# Naive-mode equivalence with the flat hub
# ---------------------------------------------------------------------------


class TestNaiveEquivalence:
    def test_naive_mesh_is_byte_identical_to_flat_hub(self):
        with naive_mode():
            mesh = ServeMesh(relays=4, history=8)
            flat = FrameHub(history=8)
        try:
            ms = mesh.connect(label="v", depth=8)
            fs = flat.connect(label="v", depth=8)
            for step in range(5):
                data = _png(step)
                mesh.publish("s", step=step, time=step * 0.1, data=data)
                flat.publish("s", step=step, time=step * 0.1, data=data)
            got_mesh = [(f.step, f.data) for f in ms.drain()]
            got_flat = [(f.step, f.data) for f in fs.drain()]
            assert got_mesh == got_flat
            assert mesh.stats()["naive"] is True
            # the flat surface delegates: store, clients, closed
            assert mesh.store.latest("s").data == flat.store.latest("s").data
            assert mesh.clients == 1
            assert mesh.shard_map() == {}
        finally:
            mesh.close()
            flat.close()

    def test_naive_mesh_steer_routes_to_hub(self):
        from repro.serve import SteerCommand

        with naive_mode():
            mesh = ServeMesh(relays=2)
        try:
            bus = SteeringBus()
            mesh.attach_bus(bus)
            assert mesh.route_steer(SteerCommand("pause", client="v")) == "hub"
            assert bus.submitted == 1
        finally:
            mesh.close()


# ---------------------------------------------------------------------------
# Steering through the client's relay
# ---------------------------------------------------------------------------


class TestSteering:
    def test_route_steer_uses_clients_relay(self):
        from repro.serve import SteerCommand

        mesh = _quiet_mesh(relays=3)
        try:
            bus = SteeringBus()
            mesh.attach_bus(bus)
            s = mesh.connect(label="viewer-7")
            rid = mesh.route_steer(SteerCommand("pause", client="viewer-7"))
            assert rid == s._pump.rid
            assert mesh._relays[rid].steer_forwarded == 1
            assert bus.submitted == 1
            # unknown client falls back to ring placement of its label
            rid2 = mesh.route_steer(SteerCommand("resume", client="ghost"))
            assert rid2 == mesh.ring.assign("ghost")
        finally:
            mesh.close()

    def test_route_steer_without_bus_raises(self):
        from repro.serve import SteerCommand

        mesh = _quiet_mesh(relays=2)
        try:
            with pytest.raises(RuntimeError):
                mesh.route_steer(SteerCommand("pause"))
        finally:
            mesh.close()


# ---------------------------------------------------------------------------
# Telemetry: cache counters, relay gauges, naming audit, serve line
# ---------------------------------------------------------------------------


class TestMeshTelemetry:
    def test_cache_counters_and_relay_gauges_pass_naming_audit(self):
        tel = Telemetry.create(rank=0)
        with active(tel):
            mesh = ServeMesh(
                relays=2, lease_timeout_s=300.0, poll_interval_s=0.001,
                telemetry=tel,
            )
            try:
                mesh.connect(label="v", depth=8)
                for step in range(4):
                    # identical payload: interned once, cache hits after
                    mesh.publish("s", step=step, time=0.0, data=_png(1))
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    if (
                        tel.metrics.get("repro_serve_cache_hits_total")
                        is not None
                    ):
                        break
                    time.sleep(0.01)
            finally:
                mesh.close()
        hits = tel.metrics.get("repro_serve_cache_hits_total")
        assert hits is not None and hits.value >= 1
        gauges = [
            m for m in tel.metrics if m.name == "repro_serve_relay_clients"
        ]
        assert {g.const_labels["relay"] for g in gauges} == {"0", "1"}
        assert naming_violations(tel.metrics) == []

    def test_observe_top_serve_line(self):
        from repro.observe.live.export import _serve_line

        tel = Telemetry.create(rank=0)
        tel.metrics.counter("repro_serve_cache_hits_total").inc(9)
        tel.metrics.counter("repro_serve_cache_misses_total").inc(1)
        tel.metrics.gauge(
            "repro_serve_relay_clients", const_labels={"relay": "0"}
        ).set(40)
        tel.metrics.gauge(
            "repro_serve_relay_clients", const_labels={"relay": "1"}
        ).set(60)

        class _Plane:
            def merged_metrics(self):
                return tel.metrics

        line = _serve_line(_Plane())
        assert line == "serve: cache 9 hit / 1 miss (90%)  relays 0:40  1:60"

    def test_serve_line_absent_without_mesh_metrics(self):
        from repro.observe.live.export import _serve_line

        tel = Telemetry.create(rank=0)

        class _Plane:
            def merged_metrics(self):
                return tel.metrics

        assert _serve_line(_Plane()) is None


# ---------------------------------------------------------------------------
# HTTP transport: shard map in /status, steering via relay
# ---------------------------------------------------------------------------


class TestMeshTransport:
    def test_status_shard_map_and_steer_relay(self):
        mesh = ServeMesh(
            relays=2, lease_timeout_s=300.0, poll_interval_s=0.001
        )
        bus = SteeringBus()
        server = HttpFrameServer(mesh, bus)
        server.start()
        try:
            s = mesh.connect(label="viewer-0", depth=8)
            mesh.publish("flow", step=0, time=0.0, data=_png(0))

            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            try:
                conn.request("GET", "/status")
                doc = json.loads(conn.getresponse().read())
            finally:
                conn.close()
            shard_map = doc["hub"]["shard_map"]
            assert set(shard_map) == {"0", "1"}
            assert sum(e["clients"] for e in shard_map.values()) == 1

            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            try:
                conn.request(
                    "POST", "/steer",
                    body=json.dumps(
                        {"kind": "pause", "client": "viewer-0"}
                    ).encode(),
                    headers={"Content-Type": "application/json"},
                )
                reply = json.loads(conn.getresponse().read())
            finally:
                conn.close()
            assert reply["ok"] is True
            assert reply["relay"] == s._pump.rid
            assert bus.submitted == 1
        finally:
            assert server.stop()
            mesh.close()
