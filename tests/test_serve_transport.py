"""HTTP transport tests: the asyncio frame server end to end.

Exercises every route of :class:`repro.serve.transport.HttpFrameServer`
over real sockets with the stdlib ``http.client`` — no external HTTP
library.  Marked ``serve`` so the asyncio-heavy tests can be selected
or excluded as a group; the conftest guard asserts no event loop
outlives its test.
"""

import http.client
import json

import numpy as np
import pytest

from repro.serve import FrameHub, HttpFrameServer, SteeringBus
from repro.util.apng import apng_info
from repro.util.png import encode_png

pytestmark = [pytest.mark.serve, pytest.mark.timeout(60)]


def _png(tag: int = 0) -> bytes:
    img = np.full((6, 6, 3), tag % 256, dtype=np.uint8)
    return encode_png(img)


@pytest.fixture
def served_hub():
    """A hub with three published frames behind a running HTTP server."""
    hub = FrameHub(history=8)
    bus = SteeringBus()
    for i in range(3):
        hub.publish("flow", step=i, time=i * 0.1, data=_png(i))
    server = HttpFrameServer(hub, bus)
    server.start()
    yield hub, bus, server
    assert server.stop()


def _get(server, path):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def _post(server, path, obj):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        conn.request("POST", path, body=json.dumps(obj).encode(),
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


class TestRoutes:
    def test_status(self, served_hub):
        hub, _bus, server = served_hub
        status, headers, body = _get(server, "/status")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        doc = json.loads(body)
        assert doc["hub"]["frames_published"] == 3
        assert doc["hub"]["stalls"] == 0
        assert doc["steering"] == {"submitted": 0, "pending": 0, "applied": 0}

    def test_status_provider_is_merged(self):
        hub = FrameHub()
        server = HttpFrameServer(hub, status_provider=lambda: {"extra": 7})
        server.start()
        try:
            _status, _headers, body = _get(server, "/status")
            assert json.loads(body)["extra"] == 7
        finally:
            assert server.stop()

    def test_latest_frame_bytes(self, served_hub):
        hub, _bus, server = served_hub
        status, headers, body = _get(server, "/frame/flow")
        assert status == 200
        assert headers["Content-Type"] == "image/png"
        assert headers["X-Step"] == "2"
        assert body == hub.store.latest("flow").data

    def test_frame_404_for_unknown_stream(self, served_hub):
        _hub, _bus, server = served_hub
        status, _headers, body = _get(server, "/frame/nope")
        assert status == 404
        assert "nope" in json.loads(body)["error"]

    def test_replay_is_a_valid_apng_of_the_ring(self, served_hub):
        hub, _bus, server = served_hub
        status, headers, body = _get(server, "/replay/flow?delay_ms=50")
        assert status == 200
        assert headers["Content-Type"] == "image/apng"
        assert headers["X-Frames"] == "3"
        info = apng_info(body)
        assert info["frames"] == 3
        assert (info["width"], info["height"]) == (6, 6)

    def test_steer_round_trip(self, served_hub):
        _hub, bus, server = served_hub
        status, doc = _post(server, "/steer",
                            {"kind": "isovalue", "value": 0.3, "client": "t"})
        assert status == 200 and doc["ok"] is True and doc["pending"] == 1
        cmds = bus.drain()
        assert len(cmds) == 1
        assert (cmds[0].kind, cmds[0].value, cmds[0].client) == \
            ("isovalue", 0.3, "t")

    def test_steer_rejects_bad_kind(self, served_hub):
        _hub, _bus, server = served_hub
        status, doc = _post(server, "/steer", {"kind": "warp"})
        assert status == 400
        assert "bad steer payload" in doc["error"]

    def test_steer_without_bus_is_404(self):
        server = HttpFrameServer(FrameHub())
        server.start()
        try:
            status, doc = _post(server, "/steer", {"kind": "stop"})
            assert status == 404
            assert "steering not enabled" in doc["error"]
        finally:
            assert server.stop()

    def test_unknown_route_is_404(self, served_hub):
        _hub, _bus, server = served_hub
        status, _headers, _body = _get(server, "/teapot")
        assert status == 404


class TestMultipartStream:
    def _read_part(self, resp):
        """Read one multipart part: boundary, headers, payload."""
        line = resp.fp.readline()
        while line in (b"\r\n", b"\n"):            # inter-part padding
            line = resp.fp.readline()
        assert line.rstrip() == b"--repro-frame"
        headers = {}
        while True:
            line = resp.fp.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip()] = value.strip()
        return headers, resp.fp.read(int(headers["Content-Length"]))

    def test_stream_delivers_published_frames(self, served_hub):
        hub, _bus, server = served_hub
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request("GET", "/stream/flow?depth=8")
            resp = conn.getresponse()
            assert resp.status == 200
            assert "multipart/x-mixed-replace" in resp.getheader("Content-Type")
            # part 1 seeds with the current latest frame (step 2) ...
            headers, payload = self._read_part(resp)
            assert headers["X-Step"] == "2"
            assert payload == hub.store.latest("flow").data
            # ... then live publishes flow through
            published = hub.publish("flow", step=3, time=0.3, data=_png(9))
            headers, payload = self._read_part(resp)
            assert headers["X-Step"] == "3"
            assert payload == published.data
        finally:
            conn.close()

    def test_hub_full_maps_to_503(self):
        hub = FrameHub(max_clients=0)
        server = HttpFrameServer(hub)
        server.start()
        try:
            status, _headers, body = _get(server, "/stream/flow")
            assert status == 503
            assert "max_clients" in json.loads(body)["error"]
        finally:
            assert server.stop()

    def test_stream_session_is_reaped_on_disconnect(self, served_hub):
        import time

        hub, _bus, server = served_hub
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        conn.request("GET", "/stream/flow")
        resp = conn.getresponse()
        self._read_part(resp)                      # handshake completed
        assert hub.clients == 1
        resp.close()                               # client walks away
        conn.close()
        # the server notices on the next failed write and frees the slot
        deadline = time.monotonic() + 10
        step = 90
        while hub.clients and time.monotonic() < deadline:
            hub.publish("flow", step=step, time=9.9, data=_png(step))
            step += 1
            time.sleep(0.05)
        assert hub.clients == 0


class TestLifecycle:
    def test_stop_is_idempotent(self):
        server = HttpFrameServer(FrameHub())
        server.start()
        assert server.stop()
        assert server.stop()                       # second stop: no-op True

    def test_double_start_rejected(self):
        server = HttpFrameServer(FrameHub())
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            assert server.stop()

    def test_url_reports_bound_port(self):
        server = HttpFrameServer(FrameHub())
        port = server.start()
        try:
            assert server.url == f"http://127.0.0.1:{port}"
            assert port > 0
        finally:
            assert server.stop()
