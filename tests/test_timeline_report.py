"""Tests for timelines/Gantt and the consolidated report builder."""

import pytest

from repro.machine.timeline import Span, Timeline


class TestTimeline:
    def test_from_breakdown_serializes(self):
        tl = Timeline.from_breakdown(
            {"solve": 10.0, "io": 2.0}, order=["solve", "io"]
        )
        assert tl.total == 12.0
        assert tl.spans[0] == Span("solve", 0.0, 10.0)
        assert tl.spans[1] == Span("io", 10.0, 2.0)

    def test_default_order_largest_first(self):
        tl = Timeline.from_breakdown({"a": 1.0, "b": 5.0})
        assert tl.spans[0].category == "b"

    def test_zero_durations_skipped(self):
        tl = Timeline.from_breakdown({"a": 1.0, "b": 0.0})
        assert [s.category for s in tl.spans] == ["a"]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Timeline.from_breakdown({"a": -1.0})

    def test_share(self):
        tl = Timeline.from_breakdown({"a": 3.0, "b": 1.0})
        assert tl.share("a") == pytest.approx(0.75)
        assert tl.share("zz") == 0.0

    def test_render_proportions(self):
        tl = Timeline.from_breakdown({"big": 9.0, "small": 1.0})
        out = tl.render(width=50)
        big_line, small_line = out.splitlines()[0], out.splitlines()[1]
        assert big_line.count("#") > 5 * small_line.count("#")
        assert "90.0%" in big_line
        assert "total" in out

    def test_render_empty(self):
        assert "(empty" in Timeline().render()

    def test_render_tiny_width_rejected(self):
        with pytest.raises(ValueError):
            Timeline.from_breakdown({"a": 1.0}).render(width=3)

    def test_small_span_always_visible(self):
        tl = Timeline.from_breakdown({"huge": 1000.0, "blip": 0.01})
        out = tl.render(width=40)
        blip_line = [l for l in out.splitlines() if l.startswith("blip")][0]
        assert "#" in blip_line


class TestReport:
    def test_build_report_quick(self, tmp_path):
        """The full Section-4 report builds and contains every artifact."""
        from repro.bench.report import build_report

        report = build_report(quick=True)
        for marker in (
            "Figure 2", "Figure 3", "Storage economy", "Figure 5",
            "Figure 6", "spends its time", "Ablation",
        ):
            assert marker in report
        # tables actually rendered (header separators present)
        assert report.count("-+-") >= 6
