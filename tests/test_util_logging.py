"""Tests for rank-aware logging."""

import io
import logging

from repro.parallel import ThreadCommunicator
from repro.util.logging import get_logger


class _FakeComm:
    def __init__(self, rank, size):
        self.rank = rank
        self.size = size


class TestGetLogger:
    def test_rank_zero_emits(self):
        stream = io.StringIO()
        log = get_logger("t0", _FakeComm(0, 4), stream=stream)
        log.info("hello")
        out = stream.getvalue()
        assert "hello" in out
        assert "[t0 0/4]" in out

    def test_nonzero_rank_muted(self):
        stream = io.StringIO()
        log = get_logger("t1", _FakeComm(2, 4), stream=stream)
        log.info("quiet")
        assert stream.getvalue() == ""

    def test_all_ranks_env_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_ALL_RANKS", "1")
        stream = io.StringIO()
        log = get_logger("t2", _FakeComm(3, 4), stream=stream)
        log.info("loud")
        assert "[t2 3/4]" in stream.getvalue()

    def test_no_comm_emits(self):
        stream = io.StringIO()
        log = get_logger("t3", stream=stream)
        log.warning("solo")
        assert "solo" in stream.getvalue()

    def test_level_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "ERROR")
        stream = io.StringIO()
        log = get_logger("t4", stream=stream)
        log.info("suppressed")
        log.error("shown")
        out = stream.getvalue()
        assert "suppressed" not in out
        assert "shown" in out

    def test_explicit_level_wins(self):
        stream = io.StringIO()
        log = get_logger("t5", level=logging.DEBUG, stream=stream)
        log.debug("dbg")
        assert "dbg" in stream.getvalue()

    def test_no_duplicate_handlers_on_refetch(self):
        stream = io.StringIO()
        get_logger("t6", stream=stream)
        log = get_logger("t6", stream=stream)
        log.info("once")
        assert stream.getvalue().count("once") == 1

    def test_refetch_is_idempotent_handler_count(self):
        stream = io.StringIO()
        for _ in range(5):
            log = get_logger("t7", stream=stream)
        assert len(log.handlers) == 1

    def test_concurrent_ranks_share_one_handler(self):
        import threading

        stream = io.StringIO()
        barrier = threading.Barrier(8)
        errors = []

        def body(rank):
            try:
                barrier.wait()
                for _ in range(20):
                    log = get_logger("t8", _FakeComm(0, 4), stream=stream)
                    log.info("msg-%d", rank)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=body, args=(r,)) for r in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        log = get_logger("t8", _FakeComm(0, 4), stream=stream)
        # racing refetches must never stack handlers...
        assert len(log.handlers) == 1
        # ...and every message must appear exactly once
        out = stream.getvalue()
        for rank in range(8):
            assert out.count(f"msg-{rank}") == 20
