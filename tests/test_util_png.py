"""Tests for the PNG encoder/decoder."""

import numpy as np
import pytest

from repro.util.png import decode_png, encode_png, write_png


def _random_image(rng, h, w, c):
    img = rng.integers(0, 256, size=(h, w, c), dtype=np.uint8)
    return img[:, :, 0] if c == 1 else img


class TestEncode:
    def test_signature(self, rng):
        data = encode_png(_random_image(rng, 4, 4, 3))
        assert data[:8] == b"\x89PNG\r\n\x1a\n"
        assert data.endswith(b"IEND" + data[-4:])

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            encode_png(np.zeros((4, 4, 3)))

    def test_rejects_bad_channels(self):
        with pytest.raises(ValueError):
            encode_png(np.zeros((4, 4, 2), dtype=np.uint8))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            encode_png(np.zeros((0, 4, 3), dtype=np.uint8))

    def test_smooth_compresses_better_than_noise(self, rng):
        noise = _random_image(rng, 64, 64, 3)
        smooth = np.tile(np.arange(64, dtype=np.uint8)[None, :, None], (64, 1, 3))
        assert len(encode_png(smooth)) < len(encode_png(noise))


class TestRoundTrip:
    @pytest.mark.parametrize("channels", [1, 3, 4])
    def test_random(self, rng, channels):
        img = _random_image(rng, 13, 17, channels)
        out = decode_png(encode_png(img))
        np.testing.assert_array_equal(out, img)

    def test_single_pixel(self):
        img = np.array([[[255, 0, 128]]], dtype=np.uint8)
        np.testing.assert_array_equal(decode_png(encode_png(img)), img)

    def test_gradient(self):
        g = np.linspace(0, 255, 32).astype(np.uint8)
        img = np.stack([np.tile(g, (32, 1))] * 3, axis=2)
        np.testing.assert_array_equal(decode_png(encode_png(img)), img)

    def test_grayscale_shape(self, rng):
        img = _random_image(rng, 8, 8, 1)
        out = decode_png(encode_png(img))
        assert out.shape == (8, 8)


class TestWritePng:
    def test_returns_bytes_written(self, tmp_path, rng):
        img = _random_image(rng, 8, 8, 3)
        path = tmp_path / "out.png"
        n = write_png(path, img)
        assert path.stat().st_size == n

    def test_file_decodes(self, tmp_path, rng):
        img = _random_image(rng, 8, 8, 3)
        path = tmp_path / "out.png"
        write_png(path, img)
        np.testing.assert_array_equal(decode_png(path.read_bytes()), img)


class TestDecodeErrors:
    def test_not_png(self):
        with pytest.raises(ValueError):
            decode_png(b"definitely not a png")
