"""Tests for repro.util.sizes."""

import pytest

from repro.util.sizes import GIB, KIB, MIB, TIB, format_bytes, parse_bytes


class TestFormatBytes:
    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2048) == "2.00 KiB"

    def test_mib(self):
        assert format_bytes(6.5 * MIB) == "6.50 MiB"

    def test_gib(self):
        assert format_bytes(19 * GIB) == "19.00 GiB"

    def test_tib(self):
        assert format_bytes(1.5 * TIB) == "1.50 TiB"

    def test_precision(self):
        assert format_bytes(1536, precision=1) == "1.5 KiB"

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    def test_boundary_exactly_one_kib(self):
        assert format_bytes(KIB) == "1.00 KiB"

    def test_just_under_kib_is_bytes(self):
        assert format_bytes(KIB - 1) == "1023 B"


class TestParseBytes:
    def test_plain_number(self):
        assert parse_bytes("512") == 512

    def test_decimal_units_are_powers_of_1000(self):
        assert parse_bytes("19 GB") == 19 * 1000**3

    def test_binary_units_are_powers_of_1024(self):
        assert parse_bytes("19 GiB") == 19 * GIB

    def test_fractional(self):
        assert parse_bytes("6.5MB") == int(6.5 * 1000**2)

    def test_case_insensitive(self):
        assert parse_bytes("2kib") == 2 * KIB

    def test_short_suffix(self):
        assert parse_bytes("4k") == 4 * KIB

    def test_whitespace_tolerated(self):
        assert parse_bytes("  3  MiB ") == 3 * MIB

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_bytes("lots of bytes")

    def test_unknown_unit_raises(self):
        with pytest.raises(ValueError):
            parse_bytes("5 parsecs")

    def test_roundtrip_with_format(self):
        # format -> parse returns the original for exact binary sizes
        assert parse_bytes(format_bytes(7 * MIB)) == 7 * MIB
