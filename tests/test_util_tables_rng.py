"""Tests for Table rendering and RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.util.tables import Table


class TestTable:
    def test_render_contains_title_and_cells(self):
        t = Table(["ranks", "time [s]"], title="Fig. 2")
        t.add_row([280, 123.456])
        out = t.render()
        assert "Fig. 2" in out
        assert "ranks" in out
        assert "280" in out
        assert "123.456" in out

    def test_float_formatting(self):
        t = Table(["x"], float_format="{:.1f}")
        t.add_row([1.26])
        assert "1.3" in t.render()

    def test_row_length_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_as_dicts(self):
        t = Table(["a", "b"])
        t.add_row([1, 2])
        assert t.as_dicts() == [{"a": 1, "b": 2}]

    def test_empty_table_renders(self):
        t = Table(["only"])
        out = t.render()
        assert "only" in out

    def test_column_alignment(self):
        t = Table(["name", "v"])
        t.add_row(["a-very-long-name", 1])
        t.add_row(["b", 22])
        lines = t.render().splitlines()
        # all data lines equal width
        assert len(lines[-1]) == len(lines[-2])


class TestMakeRng:
    def test_deterministic(self):
        assert make_rng(7).random() == make_rng(7).random()

    def test_streams_differ(self):
        assert make_rng(7, 0).random() != make_rng(7, 1).random()

    def test_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_nested_streams(self):
        a = make_rng(3, 1, 2).random()
        b = make_rng(3, 1, 3).random()
        assert a != b

    def test_negative_seed_raises(self):
        with pytest.raises(ValueError):
            make_rng(-1)

    def test_returns_generator(self):
        assert isinstance(make_rng(0), np.random.Generator)
