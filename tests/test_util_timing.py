"""Tests for repro.util.timing."""

import math
import time

import numpy as np
import pytest

from repro.util.timing import StopWatch, Timer, TimingStats


class TestTimingStats:
    def test_empty(self):
        s = TimingStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.std == 0.0

    def test_empty_min_max_are_zero(self):
        # regression: these used to report +inf/-inf sentinels
        s = TimingStats()
        assert s.min == 0.0
        assert s.max == 0.0

    def test_merge_of_empties_stays_zero(self):
        a, b = TimingStats(), TimingStats()
        a.merge(b)
        assert a.min == 0.0
        assert a.max == 0.0
        a.add(3.0)
        a.merge(TimingStats())
        assert a.min == 3.0
        assert a.max == 3.0

    def test_single_sample(self):
        s = TimingStats()
        s.add(2.5)
        assert s.count == 1
        assert s.mean == 2.5
        assert s.min == 2.5
        assert s.max == 2.5
        assert s.variance == 0.0

    def test_matches_numpy(self):
        samples = [0.1, 0.5, 0.9, 1.7, 0.3]
        s = TimingStats()
        for x in samples:
            s.add(x)
        assert s.mean == pytest.approx(np.mean(samples))
        assert s.std == pytest.approx(np.std(samples, ddof=1))
        assert s.total == pytest.approx(sum(samples))

    def test_merge_matches_single_stream(self):
        a_samples = [1.0, 2.0, 3.0]
        b_samples = [10.0, 20.0]
        a, b, ref = TimingStats(), TimingStats(), TimingStats()
        for x in a_samples:
            a.add(x)
            ref.add(x)
        for x in b_samples:
            b.add(x)
            ref.add(x)
        a.merge(b)
        assert a.count == ref.count
        assert a.mean == pytest.approx(ref.mean)
        assert a.variance == pytest.approx(ref.variance)
        assert a.min == ref.min and a.max == ref.max

    def test_merge_into_empty(self):
        a, b = TimingStats(), TimingStats()
        b.add(4.0)
        a.merge(b)
        assert a.count == 1 and a.mean == 4.0

    def test_merge_empty_other(self):
        a, b = TimingStats(), TimingStats()
        a.add(1.0)
        a.merge(b)
        assert a.count == 1

    def test_as_dict_keys(self):
        s = TimingStats()
        s.add(1.0)
        d = s.as_dict()
        assert set(d) == {"count", "total", "mean", "min", "max", "std"}


class TestTimer:
    def test_measures_time(self):
        t = Timer().start()
        time.sleep(0.01)
        elapsed = t.stop()
        assert elapsed >= 0.009

    def test_double_start_raises(self):
        t = Timer().start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_accumulates(self):
        t = Timer()
        t.start(); t.stop()
        first = t.elapsed
        t.start(); t.stop()
        assert t.elapsed >= first

    def test_reset(self):
        t = Timer().start()
        t.stop()
        t.reset()
        assert t.elapsed == 0.0 and not t.running


class TestStopWatch:
    def test_phase_context(self):
        sw = StopWatch()
        with sw.phase("a"):
            pass
        assert sw.stats("a").count == 1
        assert sw.total("a") >= 0.0

    def test_phase_records_exceptions_too(self):
        sw = StopWatch()
        with pytest.raises(ValueError):
            with sw.phase("x"):
                raise ValueError("boom")
        assert sw.stats("x").count == 1

    def test_unknown_phase_total_is_zero(self):
        assert StopWatch().total("never") == 0.0

    def test_merge(self):
        a, b = StopWatch(), StopWatch()
        a.add_sample("s", 1.0)
        b.add_sample("s", 3.0)
        b.add_sample("t", 2.0)
        a.merge(b)
        assert a.stats("s").count == 2
        assert a.total("t") == 2.0

    def test_as_dict(self):
        sw = StopWatch()
        sw.add_sample("p", 0.5)
        assert math.isclose(sw.as_dict()["p"]["total"], 0.5)
