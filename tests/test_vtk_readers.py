"""Round-trip tests for the VTK XML readers."""

import numpy as np
import pytest

from repro.vtkdata import (
    DataArray,
    ImageData,
    UnstructuredGrid,
    VTKReadError,
    read_vti,
    read_vtm,
    read_vtu,
    write_vti,
    write_vtm,
    write_vtu,
)
from repro.vtkdata.arrays import CELL


def make_grid(rng, n_cells=4):
    points = rng.normal(size=(n_cells * 8, 3))
    cells = np.arange(n_cells * 8).reshape(n_cells, 8)
    g = UnstructuredGrid(points, cells)
    g.add_array(DataArray("pressure", rng.normal(size=n_cells * 8)))
    g.add_array(DataArray("velocity", rng.normal(size=(n_cells * 8, 3))))
    g.add_array(DataArray("owner", np.arange(n_cells), association=CELL))
    return g


class TestVtuRoundTrip:
    @pytest.mark.parametrize("encoding", ["ascii", "appended"])
    def test_full_roundtrip(self, tmp_path, rng, encoding):
        grid = make_grid(rng)
        path = tmp_path / "g.vtu"
        write_vtu(path, grid, encoding)
        out = read_vtu(path)
        atol = 1e-6 if encoding == "ascii" else 0.0
        np.testing.assert_allclose(out.points, grid.points, atol=atol)
        np.testing.assert_array_equal(out.cells, grid.cells)
        np.testing.assert_allclose(
            out.point_data["pressure"].values,
            grid.point_data["pressure"].values, atol=atol,
        )
        assert out.point_data["velocity"].num_components == 3
        np.testing.assert_array_equal(
            out.cell_data["owner"].values, grid.cell_data["owner"].values
        )

    def test_appended_exact(self, tmp_path, rng):
        grid = make_grid(rng)
        path = tmp_path / "g.vtu"
        write_vtu(path, grid, "appended")
        out = read_vtu(path)
        np.testing.assert_array_equal(out.points, grid.points)

    def test_wrong_type_rejected(self, tmp_path):
        img = ImageData((2, 2, 2))
        path = tmp_path / "i.vti"
        write_vti(path, img)
        with pytest.raises(VTKReadError):
            read_vtu(path)


class TestVtiRoundTrip:
    @pytest.mark.parametrize("encoding", ["ascii", "appended"])
    def test_roundtrip(self, tmp_path, rng, encoding):
        img = ImageData((3, 4, 5), origin=(1, 2, 3), spacing=(0.5, 0.25, 0.125))
        img.add_array(DataArray("t", rng.normal(size=img.num_points)))
        path = tmp_path / "img.vti"
        write_vti(path, img, encoding)
        out = read_vti(path)
        assert out.dims == img.dims
        assert out.origin == img.origin
        assert out.spacing == img.spacing
        atol = 1e-6 if encoding == "ascii" else 0.0
        np.testing.assert_allclose(
            out.point_data["t"].values, img.point_data["t"].values, atol=atol
        )

    def test_volume_reshape_survives(self, tmp_path):
        img = ImageData((2, 3, 4))
        img.add_array(DataArray("v", np.arange(24.0)))
        path = tmp_path / "v.vti"
        write_vti(path, img)
        out = read_vti(path)
        np.testing.assert_array_equal(out.as_volume("v"), img.as_volume("v"))


class TestVtmRoundTrip:
    def test_roundtrip_with_gaps(self, tmp_path):
        path = tmp_path / "mb.vtm"
        write_vtm(path, ["a.vtu", None, "c.vtu"])
        assert read_vtm(path) == ["a.vtu", None, "c.vtu"]


class TestEndpointOutputParses:
    def test_posthoc_io_files_load(self, tmp_path, comm, tiny_solver):
        """Everything VTKPosthocIO writes must parse back."""
        from repro.insitu import NekDataAdaptor
        from repro.sensei.analyses import VTKPosthocIO

        tiny_solver.run(1)
        adaptor = NekDataAdaptor(tiny_solver)
        adaptor.set_data_time_step(1)
        io = VTKPosthocIO(comm, tmp_path, arrays=("pressure", "velocity_x"))
        io.execute(adaptor)
        vtm = next(tmp_path.glob("*.vtm"))
        entries = read_vtm(vtm)
        loaded = [read_vtu(tmp_path / e) for e in entries if e]
        assert len(loaded) == 1
        grid = loaded[0]
        assert grid.num_points == tiny_solver.local_gridpoints()
        np.testing.assert_array_equal(
            grid.point_data["pressure"].values, tiny_solver.p.ravel()
        )
