"""Tests for the VTK-like data model and XML writers."""

import numpy as np
import pytest

from repro.vtkdata import (
    DataArray,
    ImageData,
    MultiBlockDataSet,
    UnstructuredGrid,
    write_vti,
    write_vtm,
    write_vtu,
)
from repro.vtkdata.arrays import CELL, POINT


def unit_hex_grid():
    points = np.array(
        [
            [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
            [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1],
        ],
        dtype=float,
    )
    cells = np.array([[0, 1, 2, 3, 4, 5, 6, 7]])
    return UnstructuredGrid(points, cells)


class TestDataArray:
    def test_scalar(self):
        a = DataArray("p", np.zeros(5))
        assert a.num_tuples == 5
        assert a.num_components == 1

    def test_vector(self):
        a = DataArray("vel", np.zeros((5, 3)))
        assert a.num_components == 3

    def test_bad_association(self):
        with pytest.raises(ValueError):
            DataArray("x", np.zeros(3), association="edge")

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            DataArray("x", np.zeros((2, 2, 2)))

    def test_range_scalar(self):
        a = DataArray("p", np.array([1.0, -2.0, 3.0]))
        assert a.range() == (-2.0, 3.0)

    def test_range_vector_uses_magnitude(self):
        a = DataArray("v", np.array([[3.0, 4.0], [0.0, 1.0]]))
        assert a.range() == (1.0, 5.0)

    def test_range_empty(self):
        assert DataArray("p", np.zeros(0)).range() == (0.0, 0.0)


class TestUnstructuredGrid:
    def test_counts(self):
        g = unit_hex_grid()
        assert g.num_points == 8
        assert g.num_cells == 1

    def test_bad_points_shape(self):
        with pytest.raises(ValueError):
            UnstructuredGrid(np.zeros((3, 2)), np.zeros((1, 8), dtype=int))

    def test_bad_connectivity(self):
        points = np.zeros((4, 3))
        cells = np.array([[0, 1, 2, 3, 4, 5, 6, 7]])  # refs nonexistent points
        with pytest.raises(ValueError):
            UnstructuredGrid(points, cells)

    def test_add_point_array(self):
        g = unit_hex_grid()
        g.add_array(DataArray("p", np.arange(8.0)))
        assert "p" in g.point_data

    def test_add_cell_array(self):
        g = unit_hex_grid()
        g.add_array(DataArray("rank", np.zeros(1), association=CELL))
        assert "rank" in g.cell_data

    def test_wrong_tuple_count_raises(self):
        g = unit_hex_grid()
        with pytest.raises(ValueError):
            g.add_array(DataArray("p", np.zeros(5)))

    def test_bounds(self):
        b = unit_hex_grid().bounds()
        np.testing.assert_array_equal(b, [[0, 1], [0, 1], [0, 1]])

    def test_nbytes_counts_everything(self):
        g = unit_hex_grid()
        base = g.nbytes
        g.add_array(DataArray("p", np.zeros(8)))
        assert g.nbytes == base + 64


class TestImageData:
    def test_basic(self):
        img = ImageData((3, 4, 5), origin=(1, 2, 3), spacing=(0.1, 0.2, 0.3))
        assert img.num_points == 60
        assert img.num_cells == 2 * 3 * 4

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            ImageData((0, 2, 2))

    def test_bad_spacing(self):
        with pytest.raises(ValueError):
            ImageData((2, 2, 2), spacing=(0, 1, 1))

    def test_as_volume_shape(self):
        img = ImageData((2, 3, 4))
        img.add_array(DataArray("p", np.arange(24.0)))
        vol = img.as_volume("p")
        assert vol.shape == (4, 3, 2)
        # x fastest in the flat layout
        assert vol[0, 0, 1] == 1.0
        assert vol[0, 1, 0] == 2.0
        assert vol[1, 0, 0] == 6.0

    def test_rejects_cell_arrays(self):
        img = ImageData((2, 2, 2))
        with pytest.raises(ValueError):
            img.add_array(DataArray("c", np.zeros(1), association=CELL))

    def test_wrong_size(self):
        img = ImageData((2, 2, 2))
        with pytest.raises(ValueError):
            img.add_array(DataArray("p", np.zeros(7)))


class TestMultiBlock:
    def test_set_and_get(self):
        mb = MultiBlockDataSet()
        mb.set_block(2, "grid")
        assert mb.num_blocks == 3
        assert mb.get_block(2) == "grid"
        assert mb.get_block(0) is None

    def test_local_blocks(self):
        mb = MultiBlockDataSet()
        mb.set_block(0, unit_hex_grid())
        mb.set_block(3, None)
        assert len(mb.local_blocks()) == 1

    def test_nbytes(self):
        mb = MultiBlockDataSet()
        mb.set_block(0, unit_hex_grid())
        assert mb.nbytes == unit_hex_grid().nbytes


class TestWriters:
    def _grid_with_data(self):
        g = unit_hex_grid()
        g.add_array(DataArray("pressure", np.arange(8.0)))
        g.add_array(DataArray("velocity", np.ones((8, 3))))
        g.add_array(DataArray("owner", np.array([2]), association=CELL))
        return g

    @pytest.mark.parametrize("encoding", ["ascii", "appended"])
    def test_vtu_structure(self, tmp_path, encoding):
        path = tmp_path / "g.vtu"
        nbytes = write_vtu(path, self._grid_with_data(), encoding)
        raw = path.read_bytes()
        assert len(raw) == nbytes
        assert b"<VTKFile" in raw
        assert b"UnstructuredGrid" in raw
        assert b'Name="pressure"' in raw
        assert b'NumberOfComponents="3"' in raw
        assert b"connectivity" in raw

    def test_vtu_ascii_contains_values(self, tmp_path):
        path = tmp_path / "g.vtu"
        write_vtu(path, self._grid_with_data(), "ascii")
        text = path.read_text()
        assert "0 1 2 3 4 5 6 7" in text  # connectivity / pressure values

    def test_vtu_appended_has_raw_marker(self, tmp_path):
        path = tmp_path / "g.vtu"
        write_vtu(path, self._grid_with_data(), "appended")
        assert b'<AppendedData encoding="raw">' in path.read_bytes()

    def test_vtu_appended_smaller_than_ascii_at_size(self, tmp_path):
        rng = np.random.default_rng(0)
        n = 20
        # a 20^3-ish point cloud worth of hexes: one slab of cells
        points = rng.normal(size=(n * 8, 3))
        cells = np.arange(n * 8).reshape(n, 8)
        g = UnstructuredGrid(points, cells)
        g.add_array(DataArray("p", rng.normal(size=n * 8)))
        a = write_vtu(tmp_path / "a.vtu", g, "ascii")
        b = write_vtu(tmp_path / "b.vtu", g, "appended")
        # full-precision ascii of random doubles is bigger than raw
        # once payload dominates the XML envelope
        assert b < a

    def test_bad_encoding(self, tmp_path):
        with pytest.raises(ValueError):
            write_vtu(tmp_path / "x.vtu", unit_hex_grid(), "base91")

    @pytest.mark.parametrize("encoding", ["ascii", "appended"])
    def test_vti(self, tmp_path, encoding):
        img = ImageData((2, 2, 2), origin=(0, 0, 0), spacing=(1, 1, 1))
        img.add_array(DataArray("t", np.arange(8.0)))
        path = tmp_path / "img.vti"
        n = write_vti(path, img, encoding)
        raw = path.read_bytes()
        assert len(raw) == n
        assert b'WholeExtent="0 1 0 1 0 1"' in raw

    def test_vtm(self, tmp_path):
        path = tmp_path / "set.vtm"
        n = write_vtm(path, ["b0.vtu", None, "b2.vtu"])
        raw = path.read_bytes()
        assert len(raw) == n
        assert b'index="0" file="b0.vtu"' in raw
        assert b'<DataSet index="1"/>' in raw
